"""Secure Scientific Service Mesh (S3M) provisioning API model.

§3.1/§4.5: in MSS the streaming service is provisioned on demand through the
S3M Streaming API.  A user presents a project-scoped, time-limited token;
S3M validates it against the project allocation and policy, orchestrates the
RabbitMQ cluster onto the requested number of DSNs, and returns an
FQDN-based AMQPS URL the clients connect to.

This is a control-plane component: it affects deployment feasibility and
setup latency, not the per-message data path.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Generator, Optional

from ..simkit import Environment, Monitor

__all__ = ["Token", "ProvisionRequest", "ProvisionResult", "S3MService"]

_token_ids = itertools.count(1)


@dataclass
class Token:
    """A project-scoped, time-limited access token."""

    token_id: int
    project: str
    issued_at: float
    lifetime_s: float
    scopes: tuple[str, ...] = ("streaming",)

    def expired(self, now: float) -> bool:
        return now > self.issued_at + self.lifetime_s

    def allows(self, scope: str) -> bool:
        return scope in self.scopes


@dataclass(frozen=True)
class ProvisionRequest:
    """Body of the ``provision_cluster`` call (§4.5)."""

    kind: str = "general"
    name: str = "rabbitmq"
    cpus: int = 12
    ram_gbs: int = 32
    nodes: int = 3
    max_msg_size: int = 536_870_912


@dataclass
class ProvisionResult:
    """What S3M returns: the FQDN URL plus the backing deployment handle."""

    url: str
    hostname: str
    port: int = 443
    scheme: str = "amqps"
    nodes: int = 3
    details: dict = field(default_factory=dict)


class S3MService:
    """The Streaming API endpoint of the OLCF Secure Scientific Service Mesh."""

    #: Token validation + Istio policy checks.
    auth_latency_s = 0.05
    #: Orchestrating pods/services/routes for one broker node.
    provision_latency_per_node_s = 2.0

    def __init__(self, env: Environment, *,
                 domain: str = "apps.olivine.ccs.ornl.gov",
                 allowed_projects: Optional[set[str]] = None) -> None:
        self.env = env
        self.domain = domain
        self.allowed_projects = allowed_projects if allowed_projects is not None else set()
        self.monitor = Monitor("s3m")
        self.tokens: dict[int, Token] = {}
        self.provisioned: list[ProvisionResult] = []

    # -- auth -----------------------------------------------------------------
    def issue_token(self, project: str, *, lifetime_s: float = 3600.0,
                    scopes: tuple[str, ...] = ("streaming",)) -> Token:
        if self.allowed_projects and project not in self.allowed_projects:
            raise PermissionError(f"project {project!r} has no allocation")
        token = Token(token_id=next(_token_ids), project=project,
                      issued_at=self.env.now, lifetime_s=lifetime_s, scopes=scopes)
        self.tokens[token.token_id] = token
        self.monitor.count("tokens_issued")
        return token

    def validate(self, token: Token, scope: str = "streaming") -> bool:
        known = self.tokens.get(token.token_id)
        if known is None or known is not token:
            return False
        if token.expired(self.env.now):
            return False
        return token.allows(scope)

    # -- provisioning -------------------------------------------------------------
    def provision_cluster(self, token: Token,
                          request: ProvisionRequest) -> Generator:
        """Simulation process: provision a streaming service deployment.

        Returns a :class:`ProvisionResult` with the FQDN URL, or raises
        :class:`PermissionError` when the token is invalid/expired.
        """
        yield self.env.timeout(self.auth_latency_s)
        if not self.validate(token, "streaming"):
            self.monitor.count("rejected_requests")
            raise PermissionError("invalid or expired token")
        yield self.env.timeout(self.provision_latency_per_node_s * request.nodes)
        hostname = f"{request.name}.{token.project}.{self.domain}"
        result = ProvisionResult(
            url=f"amqps://{hostname}:443",
            hostname=hostname,
            nodes=request.nodes,
            details={
                "kind": request.kind,
                "cpus": request.cpus,
                "ram_gbs": request.ram_gbs,
                "max_msg_size": request.max_msg_size,
            },
        )
        self.provisioned.append(result)
        self.monitor.count("clusters_provisioned")
        return result
