"""A minimal OpenShift/Kubernetes platform model (Olivine).

Only the platform behaviours that shape the paper's three deployments are
modelled:

* a cluster of worker nodes (the DSNs) onto which *pods* are scheduled,
  with **pod anti-affinity** so the three RabbitMQ server pods land on three
  different DSNs (§4.3),
* **NodePort services** that expose a pod's ports on its host's IP in the
  30000–32767 range (used by DTS and by the PRS proof-of-concept),
* an **ingress controller** (running on dedicated ingress nodes, not on the
  DSNs) that terminates FQDN-based routes for MSS, and
* a **namespace**/resource-request bookkeeping layer so deployments can be
  validated (CPU/memory requests vs. node capacity).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from ..simkit import Environment, Monitor, Resource
from ..netsim import NodePortAllocator
from ..netsim.dns import Endpoint, RouteController
from ..netsim.message import Message
from ..netsim.node import NetworkNode
from ..netsim.tls import NULL_TLS, TLSProfile

__all__ = ["PodSpec", "Pod", "NodePortService", "IngressController", "OpenShiftCluster"]


@dataclass(frozen=True)
class PodSpec:
    """Resource requests and image metadata for one pod."""

    name: str
    app: str
    cpus: float = 1.0
    memory_bytes: float = 1024 ** 3
    ports: tuple[int, ...] = ()
    #: Pods of the same anti-affinity group never share a node (§4.3).
    anti_affinity_group: str = ""


@dataclass
class Pod:
    """A scheduled pod bound to a worker node."""

    spec: PodSpec
    node: NetworkNode
    namespace: str
    phase: str = "Running"

    @property
    def name(self) -> str:
        return self.spec.name


@dataclass
class NodePortService:
    """A Service of type NodePort exposing pod ports on the host IP."""

    name: str
    pod: Pod
    port_map: dict[int, int] = field(default_factory=dict)  # nodePort -> targetPort

    def endpoint(self, target_port: int, scheme: str = "amqp") -> Endpoint:
        for node_port, target in self.port_map.items():
            if target == target_port:
                return Endpoint(self.pod.node.name, node_port, scheme)
        raise KeyError(f"no NodePort mapping for target port {target_port}")

    @property
    def node_ports(self) -> list[int]:
        return sorted(self.port_map)


class IngressController:
    """HAProxy-style OpenShift router terminating FQDN routes.

    The ingress is a :class:`Traversable` data-path element: every MSS
    message crosses it, paying its per-message routing cost and TLS
    termination cost, subject to its bounded concurrency — this is the main
    source of the MSS overhead and of its scaling collapse at high consumer
    counts.
    """

    def __init__(self, env: Environment, name: str, host: NetworkNode, *,
                 tls: TLSProfile = NULL_TLS,
                 route_controller: Optional[RouteController] = None,
                 max_inflight: int = 64) -> None:
        self.env = env
        self.name = name
        self.host = host
        self.tls = tls
        self.route_controller = route_controller or RouteController(f"{name}-routes")
        self.monitor = Monitor(f"ingress:{name}")
        # Per-message instruments, resolved by name exactly once.
        self._messages_counter = self.monitor.counter("messages")
        self._delay_series = self.monitor.timeseries("delay")
        self._inflight = Resource(env, capacity=max_inflight)

    def add_route(self, hostname: str, backends: list[Endpoint]) -> None:
        self.route_controller.add_route(hostname, backends)

    def traverse(self, message: Message) -> Generator:
        arrived = self.env.now
        with self._inflight.request() as slot:
            yield slot
            yield from self.host.traverse(message, tls=self.tls)
        self._messages_counter.value += float(message.multiplicity)
        self._delay_series.record(arrived, self.env.now - arrived)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<IngressController {self.name} host={self.host.name}>"


class OpenShiftCluster:
    """The Olivine OpenShift cluster hosting the streaming service."""

    def __init__(self, env: Environment, name: str, *,
                 worker_nodes: list[NetworkNode],
                 ingress: Optional[IngressController] = None,
                 nodeports: Optional[NodePortAllocator] = None) -> None:
        if not worker_nodes:
            raise ValueError("an OpenShift cluster needs at least one worker node")
        self.env = env
        self.name = name
        self.worker_nodes = list(worker_nodes)
        self.ingress = ingress
        self.nodeports = nodeports or NodePortAllocator()
        self.namespaces: dict[str, list[Pod]] = {}
        self.services: dict[str, NodePortService] = {}
        self.monitor = Monitor(f"openshift:{name}")
        #: CPU requests already granted per node name.
        self._cpu_requests: dict[str, float] = {n.name: 0.0 for n in worker_nodes}
        self._memory_requests: dict[str, float] = {n.name: 0.0 for n in worker_nodes}

    # -- scheduling -----------------------------------------------------------
    def create_namespace(self, namespace: str) -> None:
        self.namespaces.setdefault(namespace, [])

    def _anti_affinity_conflict(self, namespace: str, spec: PodSpec,
                                node: NetworkNode) -> bool:
        if not spec.anti_affinity_group:
            return False
        for pod in self.namespaces.get(namespace, []):
            if (pod.spec.anti_affinity_group == spec.anti_affinity_group
                    and pod.node.name == node.name):
                return True
        return False

    def _fits(self, spec: PodSpec, node: NetworkNode) -> bool:
        cpu_ok = self._cpu_requests[node.name] + spec.cpus <= node.spec.cores
        mem_ok = (self._memory_requests[node.name] + spec.memory_bytes
                  <= node.spec.memory_bytes)
        return cpu_ok and mem_ok

    def schedule_pod(self, namespace: str, spec: PodSpec) -> Pod:
        """Place a pod on a worker node honouring requests and anti-affinity."""
        self.create_namespace(namespace)
        for node in self.worker_nodes:
            if self._anti_affinity_conflict(namespace, spec, node):
                continue
            if not self._fits(spec, node):
                continue
            pod = Pod(spec=spec, node=node, namespace=namespace)
            self.namespaces[namespace].append(pod)
            self._cpu_requests[node.name] += spec.cpus
            self._memory_requests[node.name] += spec.memory_bytes
            self.monitor.count("pods_scheduled")
            return pod
        raise RuntimeError(
            f"unschedulable pod {spec.name!r}: no node satisfies requests "
            f"and anti-affinity in namespace {namespace!r}")

    def pods(self, namespace: str) -> list[Pod]:
        return list(self.namespaces.get(namespace, []))

    # -- services -----------------------------------------------------------
    def expose_nodeport(self, service_name: str, pod: Pod,
                        target_ports: list[int], *,
                        preferred_ports: Optional[list[int]] = None) -> NodePortService:
        """Create a NodePort service for a pod's ports."""
        if service_name in self.services:
            raise ValueError(f"service {service_name!r} already exists")
        port_map: dict[int, int] = {}
        preferred = list(preferred_ports or [])
        for index, target in enumerate(target_ports):
            want = preferred[index] if index < len(preferred) else None
            node_port = self.nodeports.allocate(service_name, preferred=want)
            port_map[node_port] = target
        service = NodePortService(service_name, pod, port_map)
        self.services[service_name] = service
        self.monitor.count("nodeport_services")
        return service

    def add_ingress_route(self, hostname: str, backends: list[Endpoint]) -> None:
        if self.ingress is None:
            raise RuntimeError("this cluster has no ingress controller")
        self.ingress.add_route(hostname, backends)

    # -- reporting -----------------------------------------------------------
    def describe(self) -> dict:
        return {
            "name": self.name,
            "workers": [n.name for n in self.worker_nodes],
            "namespaces": {ns: [p.name for p in pods]
                           for ns, pods in self.namespaces.items()},
            "services": {name: svc.node_ports for name, svc in self.services.items()},
            "has_ingress": self.ingress is not None,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        # Integer counts are order-insensitive; cosmetic repr only.
        total = sum(len(p) for p in self.namespaces.values())  # repro: allow[D004]
        return f"<OpenShiftCluster {self.name} workers={len(self.worker_nodes)} pods={total}>"
