"""Compute cluster model: the Andes nodes hosting producers and consumers.

§5.2: 33 Andes nodes were used — 16 for producers, 16 for consumers and one
for the coordinator.  Producers/consumers are placed round-robin across
their node pool, and may be launched either as an MPI job (all ranks start
together after a launch barrier) or as independent processes (non-MPI, as
Deleria does), which affects start-up skew only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..simkit import Environment
from ..netsim.network import Network
from ..netsim.node import NetworkNode, NodeSpec
from .specs import ANDES_SPEC

__all__ = ["Placement", "ComputeCluster", "JobLauncher"]


@dataclass(frozen=True)
class Placement:
    """Where one logical rank (producer or consumer) runs."""

    rank: int
    role: str
    node_name: str
    launch_delay_s: float


class ComputeCluster:
    """A pool of compute nodes (Andes) registered on the shared network."""

    def __init__(self, env: Environment, name: str, network: Network, *,
                 node_count: int = 33,
                 spec: Optional[NodeSpec] = None,
                 node_prefix: str = "andes") -> None:
        if node_count <= 0:
            raise ValueError("node_count must be positive")
        self.env = env
        self.name = name
        self.network = network
        self.spec = spec or ANDES_SPEC
        self.node_prefix = node_prefix
        self.nodes: list[NetworkNode] = [
            network.add_node(f"{node_prefix}{i+1}", self.spec, role="compute")
            for i in range(node_count)
        ]

    @property
    def node_names(self) -> list[str]:
        return [node.name for node in self.nodes]

    def node(self, index: int) -> NetworkNode:
        return self.nodes[index % len(self.nodes)]

    def partition(self, producers: int, consumers: int,
                  coordinator: bool = True) -> dict[str, list[NetworkNode]]:
        """Split the node pool like the paper: 16 P / 16 C / 1 coordinator."""
        needed = 2 + (1 if coordinator else 0)
        if len(self.nodes) < needed:
            raise ValueError("not enough nodes to partition")
        reserve = 1 if coordinator else 0
        usable = self.nodes[:len(self.nodes) - reserve]
        half = max(1, len(usable) // 2)
        pools = {
            "producers": usable[:half],
            "consumers": usable[half:] or usable[:half],
        }
        if coordinator:
            pools["coordinator"] = [self.nodes[-1]]
        return pools


class JobLauncher:
    """Places ranks on nodes and models MPI vs. non-MPI start-up skew."""

    #: One-time cost of wiring up an MPI job (mpiexec + PMI exchange).
    mpi_launch_overhead_s = 0.25
    #: Per-rank skew when ranks are started as independent processes.
    non_mpi_stagger_s = 0.002

    def __init__(self, cluster: ComputeCluster) -> None:
        self.cluster = cluster

    def place(self, role: str, count: int, pool: list[NetworkNode], *,
              use_mpi: bool) -> list[Placement]:
        """Assign ``count`` ranks of ``role`` round-robin over ``pool``."""
        if count <= 0:
            raise ValueError("count must be positive")
        if not pool:
            raise ValueError("empty node pool")
        placements = []
        for rank in range(count):
            node = pool[rank % len(pool)]
            if use_mpi:
                delay = self.mpi_launch_overhead_s
            else:
                delay = self.non_mpi_stagger_s * rank
            placements.append(Placement(rank=rank, role=role,
                                        node_name=node.name,
                                        launch_delay_s=delay))
        return placements

    def ranks_per_node(self, placements: list[Placement]) -> dict[str, int]:
        counts: dict[str, int] = {}
        for placement in placements:
            counts[placement.node_name] = counts.get(placement.node_name, 0) + 1
        return counts
