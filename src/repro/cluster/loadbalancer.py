"""Hardware load balancer model for the MSS architecture.

§4.5: "the load balancer is dedicated hardware located outside the OpenShift
cluster.  It forwards traffic to the cluster's OpenShift ingress controller".
Producers and consumers connect to the FQDN that terminates here (port 443).

The load balancer is a :class:`Traversable` data-path stage: it distributes
incoming connections over its backends, charges a per-message forwarding
cost on its host node, and bounds the number of messages it forwards
concurrently — the shared-frontend contention that makes MSS cap out beyond
~8 consumers in the paper.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..simkit import Environment, Monitor, Resource
from ..netsim.dns import Endpoint
from ..netsim.message import Message
from ..netsim.node import NetworkNode
from ..netsim.tls import NULL_TLS, TLSProfile

__all__ = ["HardwareLoadBalancer"]


class HardwareLoadBalancer:
    """Facility-managed L4 load balancer fronting the OpenShift ingress."""

    def __init__(self, env: Environment, name: str, host: NetworkNode, *,
                 tls: TLSProfile = NULL_TLS,
                 max_inflight: int = 96,
                 algorithm: str = "round-robin") -> None:
        self.env = env
        self.name = name
        self.host = host
        self.tls = tls
        self.algorithm = algorithm
        self.monitor = Monitor(f"lb:{name}")
        # Per-message instruments, resolved by name exactly once.
        self._messages_counter = self.monitor.counter("messages")
        self._bytes_counter = self.monitor.counter("bytes")
        self._delay_series = self.monitor.timeseries("delay")
        self._inflight = Resource(env, capacity=max_inflight)
        self._backends: list[Endpoint] = []
        self._cursor = 0
        self.connections_assigned = 0

    # -- backend management ------------------------------------------------------
    def add_backend(self, endpoint: Endpoint) -> None:
        self._backends.append(endpoint)

    @property
    def backends(self) -> list[Endpoint]:
        return list(self._backends)

    def next_backend(self) -> Endpoint:
        """Pick the backend for a new client connection."""
        if not self._backends:
            raise RuntimeError(f"load balancer {self.name!r} has no backends")
        if self.algorithm == "round-robin":
            endpoint = self._backends[self._cursor % len(self._backends)]
            self._cursor += 1
        else:  # "first-available" fallback
            endpoint = self._backends[0]
        self.connections_assigned += 1
        return endpoint

    # -- data path ------------------------------------------------------------
    def traverse(self, message: Message) -> Generator:
        arrived = self.env.now
        with self._inflight.request() as slot:
            yield slot
            yield from self.host.traverse(message, tls=self.tls)
        self._messages_counter.value += float(message.multiplicity)
        self._bytes_counter.value += message.wire_bytes * message.multiplicity
        self._delay_series.record(arrived, self.env.now - arrived)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<HardwareLoadBalancer {self.name} backends={len(self._backends)}>"
