"""Hardware specifications of the hosts used in the paper's deployment.

§4.1: each Data Streaming Node (DSN) has two 32-core 2.70 GHz AMD EPYC 9334
processors and 512 GiB of RAM, with 100 Gbps adapters currently limited to
1 Gbps.  §5.2: each Andes compute node has two 16-core 3.0 GHz AMD EPYC 7302
processors and 256 GiB of RAM, connected to the DSNs via 1 Gbps Ethernet.
"""

from __future__ import annotations

from ..netsim.node import NodeSpec
from ..netsim import units

__all__ = [
    "DSN_SPEC",
    "ANDES_SPEC",
    "LOAD_BALANCER_SPEC",
    "INGRESS_SPEC",
    "GATEWAY_SPEC",
    "DEFAULT_LINK_BANDWIDTH",
    "DSN_FULL_BANDWIDTH",
]

#: The 1 Gbps limitation discussed in §4.1 / §6.
DEFAULT_LINK_BANDWIDTH = units.gbps(1)

#: The nominal 100 Gbps adapters (used by the link-speed ablation).
DSN_FULL_BANDWIDTH = units.gbps(100)

#: Data Streaming Node: 64 cores, 512 GiB.  RabbitMQ pods get 12 CPUs each,
#: so the effective concurrency for a broker pod is limited accordingly.
DSN_SPEC = NodeSpec(
    cores=64,
    memory_bytes=512 * units.GIB,
    per_message_seconds=25e-6,
    per_byte_seconds=2.0e-10,
    concurrency=12,
)

#: Andes compute node: 32 cores, 256 GiB.
ANDES_SPEC = NodeSpec(
    cores=32,
    memory_bytes=256 * units.GIB,
    per_message_seconds=15e-6,
    per_byte_seconds=1.5e-10,
    concurrency=8,
)

#: Dedicated hardware load balancer in front of the OpenShift cluster (§4.5).
#: L4 forwarding: cheap per message, moderate per byte.
LOAD_BALANCER_SPEC = NodeSpec(
    cores=16,
    memory_bytes=64 * units.GIB,
    per_message_seconds=50e-6,
    per_byte_seconds=2.0e-9,
    concurrency=4,
)

#: OpenShift ingress controller node (runs on separate ingress nodes, §4.5).
#: L7 route termination + TLS re-encryption: this is the capacity that makes
#: MSS cap out early in the paper, so it is deliberately the narrowest
#: middleware element (~2.4 Gb/s of proxying capacity shared by every MSS
#: flow in both directions).
INGRESS_SPEC = NodeSpec(
    cores=16,
    memory_bytes=64 * units.GIB,
    per_message_seconds=100e-6,
    per_byte_seconds=1.0e-8,
    concurrency=2,
)

#: SciStream gateway node hosting the on-demand proxies.
GATEWAY_SPEC = NodeSpec(
    cores=32,
    memory_bytes=256 * units.GIB,
    per_message_seconds=20e-6,
    per_byte_seconds=2.0e-10,
    concurrency=16,
)
