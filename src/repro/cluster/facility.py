"""Facilities, security domains and the wide-area network between them.

A :class:`Facility` groups the hosts of one administrative/security domain
(an experimental facility such as SLAC or FRIB, or an HPC facility such as
OLCF) together with its firewall and NAT gateway.  A :class:`WideAreaNetwork`
joins facility border nodes with higher-latency links.

The paper's evaluation emulates cross-facility streaming inside one site
("producers and consumers reside within the same HPC cluster"), so the
default testbed keeps WAN latency equal to the LAN latency; true multi-site
latencies can be dialled in for what-if studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..simkit import Environment
from ..netsim import Firewall, NATGateway, Network, NodePortAllocator
from ..netsim.node import NetworkNode, NodeSpec
from ..netsim import units

__all__ = ["Facility", "WideAreaNetwork"]


class Facility:
    """One administrative security domain and the hosts inside it."""

    def __init__(self, env: Environment, name: str, network: Network, *,
                 description: str = "") -> None:
        self.env = env
        self.name = name
        self.network = network
        self.description = description
        self.firewall = Firewall(f"{name}-firewall")
        self.nat = NATGateway(f"{name}-nat")
        self.nodeports = NodePortAllocator()
        self._members: list[str] = []
        self._border: Optional[str] = None

    # -- membership -----------------------------------------------------------
    def add_host(self, name: str, spec: Optional[NodeSpec] = None, *,
                 role: str = "host") -> NetworkNode:
        """Create a host inside this facility (registered on the shared network)."""
        node = self.network.add_node(name, spec, role=role)
        self._members.append(name)
        return node

    def adopt_host(self, name: str) -> None:
        """Record an already-created network node as belonging to this facility."""
        if name not in self.network.nodes:
            raise KeyError(f"unknown node {name!r}")
        if name not in self._members:
            self._members.append(name)

    @property
    def hosts(self) -> list[str]:
        return list(self._members)

    def contains(self, node_name: str) -> bool:
        return node_name in self._members

    # -- border / WAN ------------------------------------------------------------
    def set_border(self, node_name: str) -> None:
        if not self.contains(node_name):
            raise ValueError(f"{node_name!r} is not a member of facility {self.name!r}")
        self._border = node_name

    @property
    def border(self) -> str:
        if self._border is None:
            raise RuntimeError(f"facility {self.name!r} has no border node")
        return self._border

    # -- security posture ------------------------------------------------------------
    def open_ingress(self, source_cidr: str, host: str, port: int, *,
                     description: str = "") -> None:
        """Open a firewall pinhole for inbound traffic to a member host."""
        if not self.contains(host):
            raise ValueError(f"{host!r} is not a member of facility {self.name!r}")
        self.firewall.allow(source_cidr, host, port, description=description)

    def permits_ingress(self, source: str, host: str, port: int) -> bool:
        return self.firewall.permits(source, host, port)

    def administrative_burden(self) -> dict:
        """Counts used for the deployment-feasibility comparison (§2, §6)."""
        return {
            "firewall_rules": self.firewall.rule_count,
            "nat_mappings": self.nat.mapping_count,
            "nodeports": len(self.nodeports),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Facility {self.name} hosts={len(self._members)}>"


@dataclass
class WideAreaNetwork:
    """WAN segments joining facility border nodes."""

    env: Environment
    network: Network
    #: Default ESnet-like one-way latency between facilities (seconds).  The
    #: paper's single-site emulation uses the LAN latency instead.
    latency_s: float = 0.0005
    bandwidth_bps: float = units.gbps(1)
    jitter_s: float = 0.0
    segments: list[tuple[str, str]] = field(default_factory=list)

    def join(self, facility_a: Facility, facility_b: Facility, *,
             bandwidth_bps: Optional[float] = None,
             latency_s: Optional[float] = None,
             jitter_s: Optional[float] = None,
             rng=None) -> None:
        """Connect the two facilities' border nodes with a duplex WAN link."""
        a, b = facility_a.border, facility_b.border
        self.network.connect(
            a, b,
            bandwidth_bps=bandwidth_bps if bandwidth_bps is not None else self.bandwidth_bps,
            latency_s=latency_s if latency_s is not None else self.latency_s,
            jitter_s=jitter_s if jitter_s is not None else self.jitter_s,
            rng=rng,
        )
        self.segments.append((a, b))

    def crosses_wan(self, src_facility: Facility, dst_facility: Facility) -> bool:
        return src_facility is not dst_facility
