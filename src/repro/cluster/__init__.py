"""Facility/platform substrate: facilities, OpenShift, DSNs, load balancer,
compute cluster and the S3M provisioning API.
"""

from .compute import ComputeCluster, JobLauncher, Placement
from .facility import Facility, WideAreaNetwork
from .loadbalancer import HardwareLoadBalancer
from .openshift import (
    IngressController,
    NodePortService,
    OpenShiftCluster,
    Pod,
    PodSpec,
)
from .s3m import ProvisionRequest, ProvisionResult, S3MService, Token
from .specs import (
    ANDES_SPEC,
    DEFAULT_LINK_BANDWIDTH,
    DSN_FULL_BANDWIDTH,
    DSN_SPEC,
    GATEWAY_SPEC,
    INGRESS_SPEC,
    LOAD_BALANCER_SPEC,
)

__all__ = [
    "ComputeCluster",
    "JobLauncher",
    "Placement",
    "Facility",
    "WideAreaNetwork",
    "HardwareLoadBalancer",
    "OpenShiftCluster",
    "IngressController",
    "NodePortService",
    "Pod",
    "PodSpec",
    "S3MService",
    "Token",
    "ProvisionRequest",
    "ProvisionResult",
    "ANDES_SPEC",
    "DSN_SPEC",
    "GATEWAY_SPEC",
    "INGRESS_SPEC",
    "LOAD_BALANCER_SPEC",
    "DEFAULT_LINK_BANDWIDTH",
    "DSN_FULL_BANDWIDTH",
]
