"""Measurement reduction: throughput, RTT distributions, overhead, export."""

from .export import format_table, format_value, to_csv, write_csv
from .overhead import OverheadResult, overhead_factor, overhead_table
from .rtt import RTTResult, compute_rtt
from .stats import (
    SummaryStats,
    as_float_array,
    empirical_cdf,
    percentile,
    summarize,
    weighted_percentile,
)
from .throughput import ThroughputResult, compute_throughput

__all__ = [
    "SummaryStats",
    "summarize",
    "percentile",
    "empirical_cdf",
    "weighted_percentile",
    "as_float_array",
    "ThroughputResult",
    "compute_throughput",
    "RTTResult",
    "compute_rtt",
    "OverheadResult",
    "overhead_factor",
    "overhead_table",
    "format_table",
    "format_value",
    "to_csv",
    "write_csv",
]
