"""Measurement reduction: throughput, RTT distributions, overhead, export."""

from .export import format_table, format_value, to_csv, write_csv
from .overhead import OverheadResult, overhead_factor, overhead_table
from .rtt import RTTResult, compute_rtt
from .stats import SummaryStats, empirical_cdf, percentile, summarize
from .throughput import ThroughputResult, compute_throughput

__all__ = [
    "SummaryStats",
    "summarize",
    "percentile",
    "empirical_cdf",
    "ThroughputResult",
    "compute_throughput",
    "RTTResult",
    "compute_rtt",
    "OverheadResult",
    "overhead_factor",
    "overhead_table",
    "format_table",
    "format_value",
    "to_csv",
    "write_csv",
]
