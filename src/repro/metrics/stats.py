"""Basic statistics helpers shared by the metric calculators."""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = ["SummaryStats", "summarize", "empirical_cdf", "percentile",
           "weighted_percentile", "as_float_array"]


@dataclass(frozen=True)
class SummaryStats:
    """Five-number-plus summary of a sample."""

    count: int
    mean: float
    median: float
    minimum: float
    maximum: float
    p10: float
    p90: float
    p99: float
    std: float

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "median": self.median,
            "min": self.minimum,
            "max": self.maximum,
            "p10": self.p10,
            "p90": self.p90,
            "p99": self.p99,
            "std": self.std,
        }


def as_float_array(values: Iterable[float], *, copy: bool = False) -> np.ndarray:
    """``values`` as a float64 ndarray, avoiding copies where possible.

    ``array('d')`` sample buffers (the metrics hot path) convert through the
    buffer protocol: a zero-copy read-only view by default, or an owned copy
    with ``copy=True`` for results that outlive the source buffer.
    """
    if isinstance(values, np.ndarray):
        converted = values.astype(float, copy=False)
        if copy and converted is values:
            return values.copy()
        return converted
    if isinstance(values, array) and values.typecode == "d":
        if copy:
            return np.array(values, dtype=float)
        return np.frombuffer(values, dtype=float)
    if isinstance(values, (list, tuple)):
        return np.asarray(values, dtype=float)
    return np.fromiter(values, dtype=float)


_as_array = as_float_array


def summarize(values: Iterable[float],
              weights: "Iterable[float] | None" = None) -> SummaryStats:
    """Summary statistics of a sample (NaNs for an empty sample).

    With ``weights`` (multiplicity counts from aggregate-client runs) each
    sample ``x[i]`` counts as ``weights[i]`` observations: the mean, std and
    percentiles are computed over the expanded logical sample without ever
    materialising it.  The unweighted path is untouched, so runs without
    populations produce bit-identical statistics to earlier versions.
    """
    array = _as_array(values)
    if weights is not None:
        return _weighted_summarize(array, _as_array(weights))
    if array.size == 0:
        nan = float("nan")
        return SummaryStats(0, nan, nan, nan, nan, nan, nan, nan, nan)
    minimum = float(np.min(array))
    maximum = float(np.max(array))
    return SummaryStats(
        count=int(array.size),
        # Pairwise summation can land 1 ULP outside the sample range;
        # clamp so min <= mean <= max always holds.
        mean=float(min(max(np.mean(array), minimum), maximum)),
        median=float(np.median(array)),
        minimum=minimum,
        maximum=maximum,
        p10=float(np.percentile(array, 10)),
        p90=float(np.percentile(array, 90)),
        p99=float(np.percentile(array, 99)),
        std=float(np.std(array)),
    )


def _weighted_summarize(array: np.ndarray, weights: np.ndarray) -> SummaryStats:
    if array.size != weights.size:
        raise ValueError(f"weights length {weights.size} does not match "
                         f"sample length {array.size}")
    if array.size == 0:
        nan = float("nan")
        return SummaryStats(0, nan, nan, nan, nan, nan, nan, nan, nan)
    # Sort once; all reductions below run in the sorted (pinned) order so
    # the floating-point summation order is deterministic across runs.
    order = np.argsort(array, kind="stable")
    sorted_values = array[order]
    sorted_weights = weights[order]
    total = float(np.sum(sorted_weights))
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    minimum = float(sorted_values[0])
    maximum = float(sorted_values[-1])
    mean = float(np.dot(sorted_weights, sorted_values) / total)
    mean = float(min(max(mean, minimum), maximum))
    deviations = sorted_values - mean
    variance = float(np.dot(sorted_weights, deviations * deviations) / total)
    cumulative = np.cumsum(sorted_weights)

    def wpct(q: float) -> float:
        # Smallest sample whose cumulative weight reaches q% of the total —
        # the inverse-CDF percentile over the expanded logical sample.
        target = total * (q / 100.0)
        idx = int(np.searchsorted(cumulative, target, side="left"))
        return float(sorted_values[min(idx, sorted_values.size - 1)])

    return SummaryStats(
        count=int(round(total)),
        mean=mean,
        median=wpct(50),
        minimum=minimum,
        maximum=maximum,
        p10=wpct(10),
        p90=wpct(90),
        p99=wpct(99),
        std=float(np.sqrt(max(variance, 0.0))),
    )


def percentile(values: Iterable[float], q: float) -> float:
    array = _as_array(values)
    if array.size == 0:
        return float("nan")
    return float(np.percentile(array, q))


def weighted_percentile(values: Iterable[float], weights: Iterable[float],
                        q: float) -> float:
    """Inverse-CDF percentile of a multiplicity-weighted sample."""
    array = _as_array(values)
    warray = _as_array(weights)
    if array.size == 0:
        return float("nan")
    if array.size != warray.size:
        raise ValueError(f"weights length {warray.size} does not match "
                         f"sample length {array.size}")
    order = np.argsort(array, kind="stable")
    sorted_values = array[order]
    cumulative = np.cumsum(warray[order])
    total = float(cumulative[-1])
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    idx = int(np.searchsorted(cumulative, total * (q / 100.0), side="left"))
    return float(sorted_values[min(idx, sorted_values.size - 1)])


def empirical_cdf(values: Iterable[float],
                  points: int = 200,
                  weights: "Iterable[float] | None" = None,
                  ) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of a sample, optionally down-sampled to ``points``.

    Returns ``(x, p)`` arrays where ``p[i]`` is the fraction of samples
    ``<= x[i]``; both arrays are monotonically non-decreasing and ``p`` ends
    at 1.0 (as in the paper's Figures 5 and 8).  With ``weights`` the
    fractions are of the expanded logical sample (each ``x[i]`` standing for
    ``weights[i]`` observations); the unweighted path is byte-identical to
    earlier versions.
    """
    array = _as_array(values)
    if weights is None:
        array = np.sort(array)
        if array.size == 0:
            return np.array([]), np.array([])
        probs = np.arange(1, array.size + 1) / array.size
    else:
        warray = _as_array(weights)
        if array.size != warray.size:
            raise ValueError(f"weights length {warray.size} does not match "
                             f"sample length {array.size}")
        if array.size == 0:
            return np.array([]), np.array([])
        order = np.argsort(array, kind="stable")
        array = array[order]
        cumulative = np.cumsum(warray[order])
        probs = cumulative / cumulative[-1]
    if points and array.size > points:
        idx = np.unique(np.linspace(0, array.size - 1, points).astype(int))
        array, probs = array[idx], probs[idx]
    return array, probs
