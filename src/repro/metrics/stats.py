"""Basic statistics helpers shared by the metric calculators."""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = ["SummaryStats", "summarize", "empirical_cdf", "percentile",
           "as_float_array"]


@dataclass(frozen=True)
class SummaryStats:
    """Five-number-plus summary of a sample."""

    count: int
    mean: float
    median: float
    minimum: float
    maximum: float
    p10: float
    p90: float
    p99: float
    std: float

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "median": self.median,
            "min": self.minimum,
            "max": self.maximum,
            "p10": self.p10,
            "p90": self.p90,
            "p99": self.p99,
            "std": self.std,
        }


def as_float_array(values: Iterable[float], *, copy: bool = False) -> np.ndarray:
    """``values`` as a float64 ndarray, avoiding copies where possible.

    ``array('d')`` sample buffers (the metrics hot path) convert through the
    buffer protocol: a zero-copy read-only view by default, or an owned copy
    with ``copy=True`` for results that outlive the source buffer.
    """
    if isinstance(values, np.ndarray):
        converted = values.astype(float, copy=False)
        if copy and converted is values:
            return values.copy()
        return converted
    if isinstance(values, array) and values.typecode == "d":
        if copy:
            return np.array(values, dtype=float)
        return np.frombuffer(values, dtype=float)
    if isinstance(values, (list, tuple)):
        return np.asarray(values, dtype=float)
    return np.fromiter(values, dtype=float)


_as_array = as_float_array


def summarize(values: Iterable[float]) -> SummaryStats:
    """Summary statistics of a sample (NaNs for an empty sample)."""
    array = _as_array(values)
    if array.size == 0:
        nan = float("nan")
        return SummaryStats(0, nan, nan, nan, nan, nan, nan, nan, nan)
    minimum = float(np.min(array))
    maximum = float(np.max(array))
    return SummaryStats(
        count=int(array.size),
        # Pairwise summation can land 1 ULP outside the sample range;
        # clamp so min <= mean <= max always holds.
        mean=float(min(max(np.mean(array), minimum), maximum)),
        median=float(np.median(array)),
        minimum=minimum,
        maximum=maximum,
        p10=float(np.percentile(array, 10)),
        p90=float(np.percentile(array, 90)),
        p99=float(np.percentile(array, 99)),
        std=float(np.std(array)),
    )


def percentile(values: Iterable[float], q: float) -> float:
    array = _as_array(values)
    if array.size == 0:
        return float("nan")
    return float(np.percentile(array, q))


def empirical_cdf(values: Iterable[float],
                  points: int = 200) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of a sample, optionally down-sampled to ``points``.

    Returns ``(x, p)`` arrays where ``p[i]`` is the fraction of samples
    ``<= x[i]``; both arrays are monotonically non-decreasing and ``p`` ends
    at 1.0 (as in the paper's Figures 5 and 8).
    """
    array = np.sort(_as_array(values))
    if array.size == 0:
        return np.array([]), np.array([])
    probs = np.arange(1, array.size + 1) / array.size
    if points and array.size > points:
        idx = np.unique(np.linspace(0, array.size - 1, points).astype(int))
        array, probs = array[idx], probs[idx]
    return array, probs
