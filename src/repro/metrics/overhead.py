"""Streaming overhead relative to the DTS baseline.

§5.2: "from the measured metrics, we calculate the streaming overhead of
the other two architectures relative to DTS, since DTS serves as a baseline
with direct connectivity and no intermediate proxies."  For throughput
(higher is better) the overhead factor is ``baseline / other``; for RTT
(lower is better) it is ``other / baseline``.  A factor of 1.0 means parity
with DTS; the paper reports up to 2.5× (work sharing) and 6.9× (MSS with
feedback).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

__all__ = ["OverheadResult", "overhead_factor", "overhead_table"]


@dataclass(frozen=True)
class OverheadResult:
    """Overhead of one architecture vs. the baseline for one metric."""

    architecture: str
    baseline: str
    metric: str
    baseline_value: float
    value: float
    factor: float

    def as_dict(self) -> dict:
        return {
            "architecture": self.architecture,
            "baseline": self.baseline,
            "metric": self.metric,
            "baseline_value": self.baseline_value,
            "value": self.value,
            "overhead_factor": self.factor,
        }


def overhead_factor(baseline_value: float, value: float, *,
                    higher_is_better: bool) -> float:
    """Overhead factor of ``value`` relative to ``baseline_value``.

    Returns ``nan`` when either value is non-positive or missing.
    """
    if baseline_value is None or value is None:
        return float("nan")
    if baseline_value <= 0 or value <= 0:
        return float("nan")
    if higher_is_better:
        return baseline_value / value
    return value / baseline_value


def overhead_table(values: Mapping[str, float], *, baseline: str,
                   metric: str, higher_is_better: bool) -> list[OverheadResult]:
    """Overhead of every architecture in ``values`` against ``baseline``."""
    if baseline not in values:
        raise KeyError(f"baseline {baseline!r} missing from values")
    base = values[baseline]
    results = []
    for architecture, value in values.items():
        if architecture == baseline:
            continue
        results.append(OverheadResult(
            architecture=architecture,
            baseline=baseline,
            metric=metric,
            baseline_value=base,
            value=value,
            factor=overhead_factor(base, value, higher_is_better=higher_is_better),
        ))
    return results
