"""Round-trip-time statistics (Figures 5, 6, 7b and 8).

§5.2: "RTT is the time it takes for a message to travel from a producer to
a consumer and for the corresponding reply to return to the producer."  The
harness records one RTT sample per reply received; this module reduces the
samples to the median (Figure 6 / 7b) and the empirical CDF (Figure 5 / 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from .stats import SummaryStats, as_float_array, empirical_cdf, summarize

__all__ = ["RTTResult", "compute_rtt"]


@dataclass(frozen=True)
class RTTResult:
    """RTT distribution summary for one experiment run.

    ``weights`` is ``None`` for discrete-client runs; aggregate-client runs
    carry one multiplicity weight per sample, and every statistic is over
    the expanded logical sample (each sample counted ``weights[i]`` times).
    """

    summary: SummaryStats
    cdf_x: np.ndarray = field(repr=False)
    cdf_p: np.ndarray = field(repr=False)
    samples: np.ndarray = field(repr=False)
    weights: "np.ndarray | None" = field(default=None, repr=False)

    @property
    def median_s(self) -> float:
        return self.summary.median

    @property
    def count(self) -> int:
        return self.summary.count

    def fraction_under(self, threshold_s: float) -> float:
        """Fraction of messages with RTT below ``threshold_s`` (CDF lookup)."""
        if self.samples.size == 0:
            return float("nan")
        if self.weights is not None:
            under = np.dot(self.weights, self.samples <= threshold_s)
            return float(under / np.sum(self.weights))
        return float(np.mean(self.samples <= threshold_s))

    def as_dict(self) -> dict:
        payload = self.summary.as_dict()
        payload["median_s"] = self.median_s
        return payload


def compute_rtt(samples: Iterable[float], *, cdf_points: int = 200,
                weights: "Iterable[float] | None" = None) -> RTTResult:
    """Reduce raw RTT samples to the summary + CDF used by the figures."""
    # The result retains the samples, so take an owned copy of the source
    # buffer (coordinators hand in live array('d') columns).
    array = as_float_array(samples, copy=True)
    warray = None
    if weights is not None:
        warray = as_float_array(weights, copy=True)
    x, p = empirical_cdf(array, points=cdf_points, weights=warray)
    return RTTResult(summary=summarize(array, warray), cdf_x=x, cdf_p=p,
                     samples=array, weights=warray)
