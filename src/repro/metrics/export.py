"""Result formatting: ASCII tables and CSV export for figures and tables."""

from __future__ import annotations

import csv
import io
import math
from typing import Iterable, Mapping, Optional, Sequence

__all__ = ["format_table", "to_csv", "format_value", "write_csv"]


def format_value(value, *, precision: int = 3) -> str:
    """Human-friendly rendering of one cell."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if math.isnan(value):
            return "n/a"
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) < 0.001:
            return f"{value:.2e}"
        return f"{value:.{precision}g}"
    return str(value)


def format_table(rows: Sequence[Mapping], *, columns: Optional[Sequence[str]] = None,
                 title: str = "", precision: int = 3) -> str:
    """Render a list of dict rows as a fixed-width ASCII table."""
    if not rows:
        return f"{title}\n(no data)" if title else "(no data)"
    cols = list(columns) if columns else list(rows[0].keys())
    rendered = [[format_value(row.get(col), precision=precision) for col in cols]
                for row in rows]
    widths = [max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(cols)]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(col.ljust(widths[i]) for i, col in enumerate(cols))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def to_csv(rows: Sequence[Mapping], *, columns: Optional[Sequence[str]] = None) -> str:
    """Render rows as CSV text."""
    if not rows:
        return ""
    cols = list(columns) if columns else list(rows[0].keys())
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=cols, extrasaction="ignore")
    writer.writeheader()
    for row in rows:
        writer.writerow({col: row.get(col, "") for col in cols})
    return buffer.getvalue()


def write_csv(path, rows: Sequence[Mapping], *,
              columns: Optional[Sequence[str]] = None) -> None:
    """Write rows to a CSV file."""
    text = to_csv(rows, columns=columns)
    with open(path, "w", newline="") as handle:
        handle.write(text)
