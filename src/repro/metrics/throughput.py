"""Aggregate consumer throughput (the paper's Figure 4 / Figure 7a metric).

§5.2: "Throughput refers to the aggregate message rate (messages per
second) from all consumers involved in each experiment."  We measure it as
the total number of messages consumed divided by the span between the first
publish and the last consume of the measurement phase; a Gb/s companion
number is derived from the consumed payload bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..netsim import units

__all__ = ["ThroughputResult", "compute_throughput"]


@dataclass(frozen=True)
class ThroughputResult:
    """Aggregate throughput over one experiment run."""

    messages: int
    bytes: float
    duration_s: float
    msgs_per_s: float
    gbits_per_s: float

    def as_dict(self) -> dict:
        return {
            "messages": self.messages,
            "bytes": self.bytes,
            "duration_s": self.duration_s,
            "msgs_per_s": self.msgs_per_s,
            "gbits_per_s": self.gbits_per_s,
        }


def compute_throughput(*, messages: int, payload_bytes: float,
                       first_publish_s: float,
                       last_consume_s: float) -> ThroughputResult:
    """Compute aggregate consumer throughput for one run."""
    if messages < 0 or payload_bytes < 0:
        raise ValueError("counts must be non-negative")
    duration = max(0.0, last_consume_s - first_publish_s)
    if messages == 0 or duration <= 0.0:
        return ThroughputResult(messages, payload_bytes, duration, 0.0, 0.0)
    msgs_per_s = messages / duration
    gbits_per_s = units.bits(payload_bytes) / duration / 1e9
    return ThroughputResult(messages, payload_bytes, duration, msgs_per_s, gbits_per_s)
