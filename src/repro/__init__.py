"""repro — reproduction of *From Edge to HPC: Investigating Cross-Facility
Data Streaming Architectures* (INDIS / SC 2025).

The package is organised bottom-up:

* :mod:`repro.simkit` — discrete-event simulation engine.
* :mod:`repro.netsim` — network substrate (links, nodes, TLS, NAT, DNS).
* :mod:`repro.cluster` — facility substrate (OpenShift, DSNs, load balancer,
  compute nodes).
* :mod:`repro.amqp` — RabbitMQ-like streaming service.
* :mod:`repro.scistream` — SciStream-like memory-to-memory proxy toolkit.
* :mod:`repro.architectures` — the paper's DTS / PRS / MSS architectures.
* :mod:`repro.workloads` — Table 1 workloads (Dstream, Lstream, Generic).
* :mod:`repro.patterns` — work sharing, work sharing with feedback,
  broadcast and gather.
* :mod:`repro.harness` — StreamSim-equivalent experiment driver.
* :mod:`repro.metrics` — throughput / RTT / overhead statistics.
* :mod:`repro.core` — the comparative-study API and the Figure 4–8 /
  Table 1 data generators.

Most users only need :func:`repro.core.run_experiment`,
:func:`repro.core.compare_architectures` and the ``figure*``/``table*``
helpers in :mod:`repro.core.figures`.
"""

from ._version import __version__

__all__ = ["__version__"]
