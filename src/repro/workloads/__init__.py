"""Table 1 workloads: Dstream (Deleria/GRETA), Lstream (LCLS) and Generic."""

from .deleria import DELERIA_EVENT_BYTES, DELERIA_EVENTS_PER_MESSAGE, DSTREAM
from .generator import MessageBlueprint, WorkloadGenerator
from .generic import GENERIC
from .lcls import LSTREAM
from .population import ClientPopulation, PopulationSpec
from .spec import WorkloadSpec

__all__ = [
    "WorkloadSpec",
    "WorkloadGenerator",
    "MessageBlueprint",
    "ClientPopulation",
    "PopulationSpec",
    "DSTREAM",
    "LSTREAM",
    "GENERIC",
    "DELERIA_EVENT_BYTES",
    "DELERIA_EVENTS_PER_MESSAGE",
    "WORKLOADS",
    "get_workload",
]

#: Registry of the Table 1 workloads by name.
WORKLOADS = {
    "Dstream": DSTREAM,
    "Lstream": LSTREAM,
    "Generic": GENERIC,
}


def get_workload(name: str) -> WorkloadSpec:
    """Look up a Table 1 workload by its name (case-insensitive)."""
    for key, spec in WORKLOADS.items():
        if key.lower() == name.lower():
            return spec
    raise KeyError(f"unknown workload {name!r}; expected one of {sorted(WORKLOADS)}")
