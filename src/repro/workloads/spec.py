"""Workload specifications (the rows of Table 1).

A :class:`WorkloadSpec` captures the data-streaming characteristics the
paper tabulates for each workload: payload size and format, how events are
packaged into messages, the sustained data rate of the source, and whether
producers/consumers are launched with MPI.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..netsim import units

__all__ = ["WorkloadSpec"]


@dataclass(frozen=True)
class WorkloadSpec:
    """Streaming characteristics of one workload (one column of Table 1)."""

    name: str
    #: Bytes of application payload per message.
    payload_bytes: float
    #: Payload encoding ("binary", "hdf5", "json").
    payload_format: str = "binary"
    #: What a payload element represents ("events", "variables").
    payload_element: str = "events"
    #: Number of events batched into one message (1 = one item per message).
    events_per_message: int = 1
    #: Bytes per event (payload_bytes / events_per_message when batched).
    event_bytes: float = 0.0
    #: Sustained source data rate in bits per second.
    data_rate_bps: float = units.gbps(1)
    #: Whether producers are launched as an MPI job.
    mpi_producers: bool = False
    #: Whether consumers are launched as an MPI job.
    mpi_consumers: bool = False
    #: Payload bytes of a reply in request/reply (feedback, gather) patterns.
    reply_bytes: float = 0.0
    #: Whether the number of events per message varies (Deleria) or is fixed.
    variable_events: bool = False
    #: Prose description for documentation/tables.
    description: str = ""
    #: Extra metadata (detector name, provenance).
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.payload_bytes <= 0:
            raise ValueError(
                f"payload_bytes must be positive, got {self.payload_bytes}")
        if self.events_per_message < 1:
            raise ValueError(f"events_per_message must be >= 1, "
                             f"got {self.events_per_message}")
        if self.data_rate_bps <= 0:
            raise ValueError(
                f"data_rate_bps must be positive, got {self.data_rate_bps}")
        if self.event_bytes < 0:
            raise ValueError(
                f"event_bytes must be non-negative, got {self.event_bytes}")
        if self.reply_bytes < 0:
            raise ValueError(
                f"reply_bytes must be non-negative, got {self.reply_bytes}")

    @property
    def effective_event_bytes(self) -> float:
        """Bytes per event (derived when not given explicitly)."""
        if self.event_bytes:
            return self.event_bytes
        return self.payload_bytes / self.events_per_message

    @property
    def effective_reply_bytes(self) -> float:
        """Reply payload size; defaults to the request payload size."""
        return self.reply_bytes if self.reply_bytes else self.payload_bytes

    def messages_per_second_at_rate(self) -> float:
        """Message rate needed to sustain the nominal data rate."""
        return self.data_rate_bps / units.bits(self.payload_bytes)

    def producer_interval(self, num_producers: int) -> float:
        """Per-producer inter-message gap to sustain the nominal data rate."""
        if num_producers < 1:
            raise ValueError(
                f"num_producers must be >= 1, got {num_producers}")
        aggregate = self.messages_per_second_at_rate()
        return num_producers / aggregate

    def table_row(self) -> dict:
        """The Table 1 row for this workload (human-readable units)."""
        return {
            "workload": self.name,
            "payload_size": units.pretty_size(self.payload_bytes),
            "payload_format": self.payload_format.upper()
            if self.payload_format == "hdf5" else self.payload_format.capitalize(),
            "payload_element": self.payload_element.capitalize(),
            "data_packaging": (f"{self.events_per_message} events/msg"
                               if self.events_per_message > 1 else "One item/msg"),
            "data_rate": f"{self.data_rate_bps / 1e9:.0f} Gbps",
            "production_parallelism": ("Parallel (MPI-based)" if self.mpi_producers
                                       else "Parallel (non-MPI)"),
            "consumption_parallelism": ("Parallel (MPI-based)" if self.mpi_consumers
                                        else "Parallel (non-MPI)"),
        }
