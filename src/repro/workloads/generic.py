"""The generic streaming workload.

The third workload of Table 1 is "a generic scenario with arbitrarily
defined streaming characteristics": 4 MiB binary messages carrying one
variable each, 25 Gbps, MPI-launched producers and consumers.  It is used
for the broadcast and gather pattern (§5.5), where its large payload makes
the 1 Gbps consumer links saturate quickly.
"""

from __future__ import annotations

from ..netsim import units
from .spec import WorkloadSpec

__all__ = ["GENERIC"]

#: The generic workload of Table 1.
GENERIC = WorkloadSpec(
    name="Generic",
    payload_bytes=units.mib(4),
    payload_format="binary",
    payload_element="variables",
    events_per_message=1,
    data_rate_bps=units.gbps(25),
    mpi_producers=True,
    mpi_consumers=True,
    # Gather replies carry the full 4 MiB item back to the single producer;
    # this is what creates the paper's "single-producer bottleneck" where all
    # three architectures' RTTs converge as consumers scale (§5.5).
    description=(
        "Generic streaming scenario: 4 MiB binary messages, one variable per "
        "message, 25 Gbps, MPI-based parallel producers and consumers."
    ),
)
