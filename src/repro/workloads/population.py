"""Aggregate-client populations: O(populations) instead of O(clients).

Simulating a million discrete producers means a million simkit processes, a
million RNG streams and a million per-message bookkeeping passes.  But the
paper's workloads are *statistically identical* within a role: every Deleria
producer draws from the same blueprint distribution and paces to the same
rate.  A :class:`ClientPopulation` exploits that: ONE simkit process emits
aggregate messages that each carry a ``multiplicity`` weight of K — "this
message stands for the K messages the K identical clients sent here" — and
every resource cost and counter along the path (link serialization, node
CPU, broker overhead, queue slots, metric columns) scales by that weight.

The simulation cost of an experiment is then O(populations), independent of
K, while byte/message accounting, backpressure and the weighted metric
reductions still reflect the full client fleet.

Contract: a population of size 1 is **bit-identical** to a discrete client.
Every scaled quantity uses IEEE-exact forms (``x * 1``, ``+= 1.0``), the
population draws no extra random numbers unless gap jitter is enabled, and
the weighted statistics path only activates when a weight differs from 1 —
so the sha256 golden digests of the determinism matrix are reproduced
unchanged with the population machinery in the loop.

The consumer-side counterpart needs no separate class: consumers receive
the aggregate messages and the weight-aware delivery path (prefetch credit
in aggregate units, per-delivery processing scaled by multiplicity, logical
ack accounting) makes one consumer process stand in for the fleet's
consumption work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from ..simkit import BatchedUniform
from .generator import MessageBlueprint, WorkloadGenerator

__all__ = ["PopulationSpec", "ClientPopulation"]


@dataclass(frozen=True)
class PopulationSpec:
    """How many clients one aggregate endpoint stands for, and how they pace.

    ``gap_jitter_fraction`` desynchronises the population's aggregate sends:
    each inter-send gap is drawn uniformly from
    ``[gap * (1 - f), gap * (1 + f)]`` through a :class:`BatchedUniform`
    stream.  The default of 0 draws nothing, which is what keeps size-1
    populations bit-identical to discrete clients.
    """

    #: Number of statistically identical clients this population stands for.
    size: int = 1
    #: Fractional uniform jitter applied to rate-limited send gaps (0 = none).
    gap_jitter_fraction: float = 0.0
    #: Batch size for the jitter RNG's vectorised refills.
    batch: int = 512

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError(f"population size must be >= 1, got {self.size}")
        if not 0.0 <= self.gap_jitter_fraction < 1.0:
            raise ValueError(
                f"gap_jitter_fraction must be in [0, 1), got "
                f"{self.gap_jitter_fraction}")
        if self.batch < 1:
            raise ValueError(f"batch must be >= 1, got {self.batch}")


class ClientPopulation:
    """K statistically identical clients driven by one workload generator.

    Duck-types the :class:`WorkloadGenerator` surface the producer app uses
    (``next_blueprint`` / ``send_interval`` / ``reply_payload_bytes``) and
    adds a ``multiplicity`` the app stamps onto every message it creates.
    """

    def __init__(self, generator: WorkloadGenerator,
                 spec: Optional[PopulationSpec] = None, *,
                 jitter_rng: Union[np.random.Generator, BatchedUniform,
                                   None] = None) -> None:
        self.generator = generator
        self.spec = spec or PopulationSpec()
        self._jitter: Optional[BatchedUniform] = None
        if self.spec.gap_jitter_fraction > 0.0:
            if jitter_rng is None:
                raise ValueError(
                    "gap_jitter_fraction > 0 requires a jitter_rng")
            if isinstance(jitter_rng, BatchedUniform):
                self._jitter = jitter_rng
            else:
                self._jitter = BatchedUniform(jitter_rng, batch=self.spec.batch)

    @property
    def multiplicity(self) -> int:
        """Weight carried by every message this population emits."""
        return self.spec.size

    # -- WorkloadGenerator surface ------------------------------------------
    def next_blueprint(self) -> MessageBlueprint:
        """The representative blueprint for the population's next send."""
        return self.generator.next_blueprint()

    def send_interval(self) -> float:
        """Gap between aggregate sends (one representative client's pace).

        The population sends at ONE client's cadence — each aggregate
        message already stands for all K per-client messages of that step —
        optionally jittered to desynchronise the fleet.
        """
        gap = self.generator.send_interval()
        if gap > 0.0 and self._jitter is not None:
            fraction = self.spec.gap_jitter_fraction
            gap = float(self._jitter.uniform(gap * (1.0 - fraction),
                                             gap * (1.0 + fraction)))
        return gap

    def reply_payload_bytes(self) -> float:
        return self.generator.reply_payload_bytes()

    @property
    def messages_generated(self) -> int:
        return self.generator.messages_generated

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<ClientPopulation size={self.spec.size} "
                f"workload={self.generator.spec.name}>")
