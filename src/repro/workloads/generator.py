"""Workload generators: turn a :class:`WorkloadSpec` into concrete messages.

A :class:`WorkloadGenerator` produces per-message descriptions (payload
size, event count, headers) for one producer, reproducing the packaging
rules of §5.1: Deleria batches a (nominally variable, evaluation-fixed)
number of 2 KiB events per message, LCLS wraps one HDF5 payload per
message, the generic workload sends one 4 MiB variable per message.
Optionally the generator paces messages to the workload's nominal data rate
(experiment-steering mode); throughput experiments push as fast as the
streaming service allows (the paper's default).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..simkit.rand import RandomStreams
from .spec import WorkloadSpec

__all__ = ["MessageBlueprint", "WorkloadGenerator"]


@dataclass(frozen=True)
class MessageBlueprint:
    """What one generated message should look like."""

    sequence: int
    payload_bytes: float
    event_count: int
    payload_format: str
    headers: dict

    @property
    def is_control(self) -> bool:
        return bool(self.headers.get("control", False))


class WorkloadGenerator:
    """Generates message blueprints for one producer."""

    def __init__(self, spec: WorkloadSpec, *,
                 rng: Optional[np.random.Generator] = None,
                 streams: Optional[RandomStreams] = None,
                 vary_events: bool = False,
                 rate_limited: bool = False,
                 num_producers: int = 1) -> None:
        self.spec = spec
        if rng is not None and streams is not None:
            raise ValueError(
                "pass either rng= or streams=, not both: an explicit rng "
                "already carries its derived seed")
        if streams is not None:
            rng = streams.stream("workload", spec.name)
        #: Whether to vary the events/message count (Deleria's natural mode);
        #: the paper's evaluation fixes it for consistency, so default False.
        self.vary_events = vary_events and spec.variable_events
        if self.vary_events and rng is None:
            # The old `rng or default_rng(0)` fallback silently collapsed
            # every varying generator onto one hard-coded stream — producers
            # drew identical batch sizes and parallel placement reshuffled
            # draws between them.  Varying generators must say where their
            # randomness comes from.
            raise ValueError(
                "vary_events=True needs a seeded stream: pass "
                "rng=streams.stream('workload', rank) or streams=RandomStreams")
        self.rng = rng
        self.rate_limited = rate_limited
        self.num_producers = max(1, int(num_producers))
        self._sequence = 0

    # -- message shaping -----------------------------------------------------------
    def next_blueprint(self) -> MessageBlueprint:
        """Describe the next message this producer should send."""
        spec = self.spec
        if self.vary_events and spec.events_per_message > 1:
            # Vary the batch between half and double the nominal count.
            low = max(1, spec.events_per_message // 2)
            high = spec.events_per_message * 2
            event_count = int(self.rng.integers(low, high + 1))
            payload = event_count * spec.effective_event_bytes
        else:
            event_count = spec.events_per_message
            payload = spec.payload_bytes
        blueprint = MessageBlueprint(
            sequence=self._sequence,
            payload_bytes=float(payload),
            event_count=event_count,
            payload_format=spec.payload_format,
            headers={"workload": spec.name, "sequence": self._sequence},
        )
        self._sequence += 1
        return blueprint

    def reply_payload_bytes(self) -> float:
        """Payload size consumers use when replying to a message."""
        return self.spec.effective_reply_bytes

    # -- pacing -----------------------------------------------------------
    def send_interval(self) -> float:
        """Gap the producer should wait between messages (0 = full speed)."""
        if not self.rate_limited:
            return 0.0
        return self.spec.producer_interval(self.num_producers)

    @property
    def messages_generated(self) -> int:
        return self._sequence

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<WorkloadGenerator {self.spec.name} generated={self._sequence} "
                f"rate_limited={self.rate_limited}>")
