"""The LCLS / LCLStream workload (Lstream).

The Linac Coherent Light Source at SLAC streams X-ray detector data to HPC
for rapid analysis between experiment runs; the LCLStream pilot trains AI
models (hit classification, Bragg-peak segmentation, image reconstruction)
on streamed detector data.  §5.1/Table 1: ≈1 MiB HDF5-formatted payloads,
≈30 Gbps sustained over 1–100 minutes, MPI-launched producers and
consumers, messages pushed to consumers round-robin.
"""

from __future__ import annotations

from ..netsim import units
from .spec import WorkloadSpec

__all__ = ["LSTREAM"]

#: The Lstream workload of Table 1.
LSTREAM = WorkloadSpec(
    name="Lstream",
    payload_bytes=units.mib(1),
    payload_format="hdf5",
    payload_element="events",
    events_per_message=1,
    data_rate_bps=units.gbps(30),
    mpi_producers=True,
    mpi_consumers=True,
    variable_events=True,
    description=(
        "LCLS/LCLStream X-ray detector stream: ≈1 MiB HDF5 messages at a "
        "steady ≈30 Gbps, MPI-based parallel producers and consumers."
    ),
    metadata={
        "facility": "SLAC National Accelerator Laboratory",
        "instrument": "LCLS / LCLS-II",
        "lcls2_target_rate": "100 GB/s",
        "duration_minutes": (1, 100),
    },
)
