"""The Deleria / GRETA workload (Dstream).

GRETA (Gamma-Ray Energy Tracking Array) streams gamma-ray events from FRIB
over ESnet to hundreds of analysis processes; its workflow software,
Deleria, batches multiple experimental events per message (compressed
binary; control messages are JSON) and sustains up to 32 Gbps / 500K events
per second.  Producers and consumers are independent processes (non-MPI):
consumers pull event batches from a forward buffer and push processed
events to an event builder.

§5.1 fixes the per-event payload to 2 KiB and the batch to eight events per
message, i.e. 16 KiB messages, which is what :data:`DSTREAM` encodes.
"""

from __future__ import annotations

from ..netsim import units
from .spec import WorkloadSpec

__all__ = ["DSTREAM", "DELERIA_EVENT_BYTES", "DELERIA_EVENTS_PER_MESSAGE"]

#: Fixed per-event payload used in the evaluation (§5.1).
DELERIA_EVENT_BYTES = units.kib(2)

#: Fixed number of events batched into each message (§5.1).
DELERIA_EVENTS_PER_MESSAGE = 8

#: The Dstream workload of Table 1.
DSTREAM = WorkloadSpec(
    name="Dstream",
    payload_bytes=DELERIA_EVENT_BYTES * DELERIA_EVENTS_PER_MESSAGE,
    payload_format="binary",
    payload_element="events",
    events_per_message=DELERIA_EVENTS_PER_MESSAGE,
    event_bytes=DELERIA_EVENT_BYTES,
    data_rate_bps=units.gbps(32),
    mpi_producers=False,
    mpi_consumers=False,
    variable_events=True,
    description=(
        "GRETA/Deleria gamma-ray event stream: KiB-range compressed binary "
        "messages, each batching multiple detector events; up to 32 Gbps "
        "sustained; non-MPI parallel producers and consumers."
    ),
    metadata={
        "facility": "FRIB (Michigan State University)",
        "detector": "GRETA",
        "workflow": "Deleria",
        "events_per_second": 500_000,
        "emulated_detectors": 120,
        "emulated_rate_gbps": 35,
    },
)
