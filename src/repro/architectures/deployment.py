"""Deployment-feasibility model for the three architectures.

§2 and §6 of the paper compare the architectures along qualitative axes —
network complexity, administrative burden, security exposure, scalability of
the deployment model, and user experience.  This module turns those axes
into a structured :class:`DeploymentReport` each architecture fills from the
objects it actually created (firewall pinholes opened, NodePorts allocated,
DNS entries registered, control-plane steps executed), so the comparison
table in :mod:`repro.core.tables` is derived from the deployment rather than
hard-coded prose.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["DeploymentReport", "FEASIBILITY_AXES"]

#: Axes reported in the qualitative comparison (Table "architecture
#: comparison" in repro.core.tables).
FEASIBILITY_AXES = (
    "data_path_hops",
    "firewall_rules",
    "nodeports_exposed",
    "dns_entries",
    "admin_steps",
    "user_steps",
    "security_exposure",
    "multi_user_scalability",
)


@dataclass
class DeploymentReport:
    """Feasibility/operational summary of one deployed architecture."""

    architecture: str
    #: Number of link traversals producer → broker → consumer (one message).
    data_path_hops: int = 0
    #: Firewall pinholes that had to be opened for this deployment.
    firewall_rules: int = 0
    #: Node-level ports exposed outside the cluster.
    nodeports_exposed: int = 0
    #: Public DNS/FQDN entries required.
    dns_entries: int = 0
    #: Administrator actions per deployment (port assignment, iptables, ...).
    admin_steps: int = 0
    #: User-facing configuration steps (certificates, URLs, tokens, ...).
    user_steps: int = 0
    #: Qualitative security exposure: higher = more surface exposed.
    #: (node-level exposure > gateway proxies > managed FQDN ingress)
    security_exposure: int = 0
    #: 1–5 rating of how well the deployment model scales to many users.
    multi_user_scalability: int = 1
    #: Where TLS terminates on the data path.
    tls_placement: str = ""
    #: How NAT/firewall traversal is achieved.
    nat_traversal: str = ""
    #: Free-form notes (paper-grounded caveats).
    notes: list[str] = field(default_factory=list)

    def as_row(self) -> dict:
        """Flatten into a row for the comparison table."""
        row = {"architecture": self.architecture}
        for axis in FEASIBILITY_AXES:
            row[axis] = getattr(self, axis)
        row["tls_placement"] = self.tls_placement
        row["nat_traversal"] = self.nat_traversal
        return row

    def operational_burden(self) -> int:
        """Aggregate count of configuration artefacts an operator must manage."""
        return (self.firewall_rules + self.nodeports_exposed + self.dns_entries
                + self.admin_steps)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{self.architecture}: hops={self.data_path_hops}, "
                f"burden={self.operational_burden()}, "
                f"multi-user scalability={self.multi_user_scalability}/5")
