"""Direct Streaming (DTS).

The streaming service is exposed through node-level NodePorts on the DSNs
(§2.1, §4.3): the Bitnami Helm chart deploys the three RabbitMQ server pods
with anti-affinity, opens NodePorts 30672 (AMQP) / 30671 (AMQPS), and both
producers and consumers connect directly to ``<node-IP>:<NodePort>`` with
TLS (AMQPS) end to end.

Data path (per message)::

    producer ──1 Gbps──> core switch ──1 Gbps──> DSN/broker
    DSN/broker ──1 Gbps──> core switch ──1 Gbps──> consumer

This is the minimal-hop reference architecture the paper uses as the
baseline for overhead computation.  Its price is operational: every
deployment needs node-exposed ports, firewall pinholes per DSN and
(optionally) DNS entries, which is why it "scales poorly" across users.
"""

from __future__ import annotations

from typing import Generator

from ..amqp import Broker
from ..netsim.connection import Traversable
from ..netsim.tls import DEFAULT_TLS, TLSProfile
from .base import StreamingArchitecture
from .deployment import DeploymentReport
from .testbed import Testbed

__all__ = ["DTSArchitecture"]

#: NodePorts the paper opens for the RabbitMQ service (§4.3).
AMQP_NODEPORT = 30672
AMQPS_NODEPORT = 30671


class DTSArchitecture(StreamingArchitecture):
    """Direct Streaming: node-exposed access, AMQPS end to end."""

    name = "DTS"
    label = "DTS"

    #: Helm-chart install / pod start-up time charged once at deploy.
    helm_install_latency_s = 5.0

    def __init__(self, testbed: Testbed, *, use_tls: bool = True, **kwargs) -> None:
        super().__init__(testbed, **kwargs)
        self.use_tls = use_tls
        self.nodeport_services = []
        self.endpoints_exposed: list[str] = []

    # -- control plane ------------------------------------------------------------
    def deploy(self) -> Generator:
        """Install the RabbitMQ Helm chart and expose NodePorts + pinholes."""
        yield self.env.timeout(self.helm_install_latency_s)
        openshift = self.testbed.openshift
        facility = self.testbed.hpc_facility
        for index, pod in enumerate(self.testbed.rabbitmq_pods):
            service = openshift.expose_nodeport(
                f"rabbitmq-dts-{index}", pod, [5672, 5671],
                preferred_ports=[AMQP_NODEPORT + 100 * index,
                                 AMQPS_NODEPORT + 100 * index])
            self.nodeport_services.append(service)
            # Each exposed node needs an explicit firewall pinhole for the
            # producer-side network (and one for the AMQPS port).
            for node_port in service.node_ports:
                facility.open_ingress("198.51.100.0/24", pod.node.name, node_port,
                                      description=f"DTS {pod.name} NodePort")
                self.endpoints_exposed.append(f"{pod.node.name}:{node_port}")
        self.deployed = True
        return self

    # -- data plane ------------------------------------------------------------
    def _broker_tls(self) -> dict[str, TLSProfile]:
        if not self.use_tls:
            return {}
        return {dsn: DEFAULT_TLS for dsn in self.testbed.dsn_names}

    def producer_publish_stages(self, host: str, broker: Broker) -> list[Traversable]:
        return self.route_stages([host, "olcf-core", broker.host.name],
                                 tls_at=self._broker_tls())

    def producer_delivery_stages(self, broker: Broker, host: str) -> list[Traversable]:
        return self.route_stages([broker.host.name, "olcf-core", host],
                                 tls_at=self._broker_tls())

    def consumer_delivery_stages(self, broker: Broker, host: str) -> list[Traversable]:
        return self.route_stages([broker.host.name, "olcf-core", host],
                                 tls_at=self._broker_tls())

    def consumer_publish_stages(self, host: str, broker: Broker) -> list[Traversable]:
        return self.route_stages([host, "olcf-core", broker.host.name],
                                 tls_at=self._broker_tls())

    def connection_tls(self) -> list[TLSProfile]:
        return [DEFAULT_TLS] if self.use_tls else []

    # -- feasibility ------------------------------------------------------------
    def deployment_report(self) -> DeploymentReport:
        facility = self.testbed.hpc_facility
        nodeports = sum(len(svc.node_ports) for svc in self.nodeport_services)
        report = DeploymentReport(
            architecture=self.label,
            data_path_hops=self.data_path_hop_count(),
            firewall_rules=facility.firewall.rule_count,
            nodeports_exposed=nodeports,
            dns_entries=0,
            # Manual steps per deployment: port assignment, firewall/iptables
            # update and certificate handling for each exposed DSN (§2.1).
            admin_steps=2 * len(self.testbed.dsn_nodes) + 1,
            user_steps=len(self.endpoints_exposed),
            security_exposure=3,
            multi_user_scalability=1,
            tls_placement="end-to-end AMQPS (client to broker)" if self.use_tls
            else "none",
            nat_traversal="node-exposed ports via DNAT; requires direct connectivity",
            notes=[
                "viable only between sites with direct connectivity / peered subnets",
                "each new deployment demands manual port assignment and firewall updates",
            ],
        )
        return report
