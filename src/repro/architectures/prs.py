"""Proxied Streaming (PRS) built on the SciStream toolkit.

§2.2/§4.4: producers reach the streaming service through a pair of
on-demand proxies (S2DS) launched by the producer-side and consumer-side
control servers (S2CS) on two gateway DSNs; the two proxies are joined by a
TLS overlay tunnel (Stunnel or HAProxy).  Consumers are inside the HPC
facility and connect to the RabbitMQ NodePorts directly, exactly as in DTS
(Figure 3b).  AMQP is used *without* TLS because the tunnel already
provides encryption and authentication.

Data paths (per message)::

    publish : producer → core → producer-proxy → [tunnel] → consumer-proxy
              → core → DSN/broker
    deliver to consumer : DSN/broker → core → consumer          (direct)
    deliver to producer : DSN/broker → core → consumer-proxy → [tunnel]
              → producer-proxy → core → producer                (replies)

Tuning options mirror the paper: the tunnel proxy type (``stunnel`` /
``haproxy`` / ``nginx``) and the number of parallel connections between the
applications and their proxies (``num_connections``).  Stunnel supports at
most 16 simultaneous connections, so attaching more producers raises
:class:`~repro.architectures.base.DeploymentError` — the paper's missing
32/64-consumer data points.
"""

from __future__ import annotations

from typing import Generator

from ..amqp import Broker
from ..netsim.connection import Traversable
from ..netsim.tls import MUTUAL_TLS, TLSProfile
from ..scistream import S2CS, S2UC, ProxyError, StreamingSession
from .base import ClientEndpoints, DeploymentError, StreamingArchitecture
from .deployment import DeploymentReport
from .testbed import Testbed

__all__ = ["PRSArchitecture"]


class PRSArchitecture(StreamingArchitecture):
    """Proxied Streaming via SciStream on-demand proxies."""

    name = "PRS"

    def __init__(self, testbed: Testbed, *, proxy_type: str = "haproxy",
                 num_connections: int = 1, **kwargs) -> None:
        super().__init__(testbed, **kwargs)
        self.proxy_type = proxy_type.lower()
        self.num_connections = int(num_connections)
        if self.num_connections < 1:
            raise ValueError("num_connections must be >= 1")
        display_names = {"haproxy": "HAProxy", "stunnel": "Stunnel", "nginx": "Nginx"}
        suffix = display_names.get(self.proxy_type, self.proxy_type.capitalize())
        if self.num_connections > 1:
            self.label = f"PRS({suffix},{self.num_connections}conns)"
        else:
            self.label = f"PRS({suffix})"
        self.session: StreamingSession | None = None
        self.producer_s2cs: S2CS | None = None
        self.consumer_s2cs: S2CS | None = None
        self.s2uc = S2UC(self.env)

    # -- control plane ------------------------------------------------------------
    def deploy(self) -> Generator:
        """Run the SciStream inbound/outbound request flow (§4.4)."""
        testbed = self.testbed
        self.producer_s2cs = S2CS(self.env, "prod-s2cs", testbed.producer_gateway,
                                  side="producer", server_cert="prod-s2cs.crt",
                                  default_bandwidth_bps=testbed.config.link_bandwidth_bps)
        self.consumer_s2cs = S2CS(self.env, "cons-s2cs", testbed.consumer_gateway,
                                  side="consumer", server_cert="cons-s2cs.crt",
                                  default_bandwidth_bps=testbed.config.link_bandwidth_bps)
        # The proof-of-concept exposes each S2CS via a NodePort (§4.4) and
        # needs one firewall pinhole per gateway for the tunnel/control ports.
        facility = testbed.hpc_facility
        facility.nodeports.allocate("prod-s2cs", preferred=30500)
        facility.nodeports.allocate("cons-s2cs", preferred=30600)
        facility.open_ingress("198.51.100.0/24", "gw-prod", 30500,
                              description="PRS producer-side S2CS/S2DS")
        facility.open_ingress("198.51.100.0/24", "gw-cons", 30600,
                              description="PRS consumer-side S2CS/S2DS")

        self.session = yield from self.s2uc.establish_session(
            producer_s2cs=self.producer_s2cs,
            consumer_s2cs=self.consumer_s2cs,
            remote_ip="10.1.1.100",
            target_ports=(5672,),
            num_connections=self.num_connections,
            proxy_type=self.proxy_type,
        )
        self.deployed = True
        return self

    # -- data plane ------------------------------------------------------------
    @property
    def producer_proxy(self):
        if self.session is None:
            raise DeploymentError(f"{self.label}: session not established")
        return self.session.producer_proxy

    @property
    def consumer_proxy(self):
        if self.session is None:
            raise DeploymentError(f"{self.label}: session not established")
        return self.session.consumer_proxy

    def attach_producer(self, host: str, name: str) -> ClientEndpoints:
        """Attach a producer, reserving tunnel connections on both proxies."""
        self._require_deployed()
        try:
            self.producer_proxy.register_connections(self.num_connections)
            self.consumer_proxy.register_connections(self.num_connections)
        except ProxyError as exc:
            raise DeploymentError(
                f"{self.label}: cannot attach producer {name!r}: {exc}") from exc
        return super().attach_producer(host, name)

    def producer_publish_stages(self, host: str, broker: Broker) -> list[Traversable]:
        return self.route_stages(
            [host, "olcf-core", "gw-prod", "gw-cons", "olcf-core", broker.host.name],
            wrappers={"gw-prod": self.producer_proxy, "gw-cons": self.consumer_proxy})

    def producer_delivery_stages(self, broker: Broker, host: str) -> list[Traversable]:
        return self.route_stages(
            [broker.host.name, "olcf-core", "gw-cons", "gw-prod", "olcf-core", host],
            wrappers={"gw-prod": self.producer_proxy, "gw-cons": self.consumer_proxy})

    def consumer_delivery_stages(self, broker: Broker, host: str) -> list[Traversable]:
        # Consumers live inside the facility and use node-exposed access.
        return self.route_stages([broker.host.name, "olcf-core", host])

    def consumer_publish_stages(self, host: str, broker: Broker) -> list[Traversable]:
        return self.route_stages([host, "olcf-core", broker.host.name])

    def connection_tls(self) -> list[TLSProfile]:
        return [MUTUAL_TLS]

    def consumer_connection_tls(self) -> list[TLSProfile]:
        # Plain AMQP inside the facility: no client TLS handshake.
        return []

    # -- feasibility ------------------------------------------------------------
    def deployment_report(self) -> DeploymentReport:
        facility = self.testbed.hpc_facility
        report = DeploymentReport(
            architecture=self.label,
            data_path_hops=self.data_path_hop_count(),
            firewall_rules=facility.firewall.rule_count,
            nodeports_exposed=len(facility.nodeports.allocated_ports("prod-s2cs"))
            + len(facility.nodeports.allocated_ports("cons-s2cs")),
            dns_entries=0,
            # Pre-authorise the gateway endpoints once; per-session setup is
            # automated by the S2UC control flow.
            admin_steps=2,
            user_steps=3,  # certificates + inbound request + outbound request
            security_exposure=2,
            multi_user_scalability=3,
            tls_placement="mTLS on the overlay tunnel; plain AMQP inside facilities",
            nat_traversal="pre-authorised gateway proxies traverse NAT/firewalls",
            notes=[
                f"tunnel proxy: {self.proxy_type} x{self.num_connections} connections",
                "OLCF external access is restricted to HTTPS/443, so custom proxy "
                "ports need extra firewall policy (§6)",
                "hostname-based routing is not supported by SciStream's port/UID "
                "addressing (§6)",
            ],
        )
        if self.proxy_type == "stunnel":
            report.notes.append("stunnel supports at most 16 simultaneous connections")
        return report
