"""The emulated ACE testbed shared by every architecture.

Builds the infrastructure of §4/§5.2 once, so the three architectures only
differ in how they wire clients onto it:

* an **HPC facility** (OLCF) containing

  - the *Olivine* OpenShift cluster whose workers are three Data Streaming
    Nodes (DSN1–3) running one RabbitMQ server pod each (anti-affinity),
  - two gateway DSNs hosting the SciStream control/data servers (PRS),
  - a hardware load balancer and an ingress node (MSS),
  - the *Andes* compute cluster: 16 producer nodes, 16 consumer nodes and a
    coordinator node,
  - a core Ethernet switch; every host ↔ switch link is 1 Gbps (the §4.1 /
    §6 limitation), configurable for the 100 Gbps ablation;

* an **experimental facility** placeholder whose border is the producer
  side — in the paper's emulation producers actually run on Andes, so the
  "WAN" crossing collapses onto the same switch, but the facility objects
  still carry the firewall/NAT state used for feasibility accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..simkit import BatchedUniform, Environment, RandomStreams
from ..netsim import DNSRegistry, Network
from ..netsim import units
from ..amqp import AckPolicy, Broker, BrokerCluster, QueuePolicy
from ..cluster import (
    ComputeCluster,
    Facility,
    HardwareLoadBalancer,
    IngressController,
    JobLauncher,
    OpenShiftCluster,
    PodSpec,
    S3MService,
    WideAreaNetwork,
)
from ..cluster.specs import (
    ANDES_SPEC,
    DEFAULT_LINK_BANDWIDTH,
    DSN_SPEC,
    GATEWAY_SPEC,
    INGRESS_SPEC,
    LOAD_BALANCER_SPEC,
)
from ..netsim.node import NodeSpec
from ..netsim.tls import DEFAULT_TLS

__all__ = ["TestbedConfig", "Testbed"]


#: High-capacity Ethernet switch: cheap per message, effectively never the
#: bottleneck (the 1 Gbps access links are).
SWITCH_SPEC = NodeSpec(cores=64, memory_bytes=8 * units.GIB,
                       per_message_seconds=2e-6, per_byte_seconds=2.0e-11,
                       concurrency=64)


@dataclass
class TestbedConfig:
    """Knobs for building the emulated ACE testbed."""

    # Not a pytest test class despite the name.
    __test__ = False

    #: Compute-node pools (the paper uses 16 + 16 + 1 coordinator).
    producer_nodes: int = 16
    consumer_nodes: int = 16
    #: Number of DSNs hosting RabbitMQ server pods.
    dsn_count: int = 3
    #: Access-link bandwidth for compute (Andes) hosts (1 Gbps in the paper).
    link_bandwidth_bps: float = DEFAULT_LINK_BANDWIDTH
    #: Bandwidth of the infrastructure links (DSNs, LB, ingress).  The paper
    #: quotes 1 Gbps effective interfaces, but its absolute message rates
    #: imply a higher effective service-side capacity; 2 Gbps keeps the DTS
    #: saturation point near the paper's (see EXPERIMENTS.md).
    backbone_bandwidth_bps: float = 2 * DEFAULT_LINK_BANDWIDTH
    #: Bandwidth of the SciStream gateway links and the overlay tunnel
    #: segment.  The proxies run on a single pair of gateway DSNs, so their
    #: links stay at the 1 Gbps access rate — this is what makes PRS plateau
    #: while DTS keeps scaling, as in Figure 4.
    gateway_bandwidth_bps: float = DEFAULT_LINK_BANDWIDTH
    #: One-way propagation latency of a LAN hop.
    link_latency_s: float = 0.0002
    #: Uniform jitter bound added per hop.
    link_jitter_s: float = 0.00005
    #: Emulated WAN latency (paper's emulation keeps everything on one LAN).
    wan_latency_s: float = 0.0002
    #: Queue bound for the shared work queues.
    queue_max_length: int = 50_000
    #: Acknowledgement/prefetch settings (§5.2: batch acks).
    ack_policy: AckPolicy = field(default_factory=lambda: AckPolicy(
        consumer_batch=10, publisher_batch=50, prefetch_count=100))
    #: Root seed for all derived random streams.
    seed: int = 1

    def __post_init__(self) -> None:
        if self.producer_nodes < 1 or self.consumer_nodes < 1:
            raise ValueError("node pools must be non-empty")
        if self.dsn_count < 1:
            raise ValueError("dsn_count must be >= 1")
        if self.link_bandwidth_bps <= 0:
            raise ValueError("link bandwidth must be positive")
        if self.backbone_bandwidth_bps <= 0:
            raise ValueError("backbone bandwidth must be positive")
        if self.gateway_bandwidth_bps <= 0:
            raise ValueError("gateway bandwidth must be positive")

    def with_link_bandwidth(self, bandwidth_bps: float, *,
                            backbone_factor: float = 2.0,
                            gateway_factor: float = 1.0) -> "TestbedConfig":
        """Copy of this config with every link tier rescaled coherently.

        This is how the §6 "what would 100 Gbps interfaces buy" ablation is
        driven: the access links move to ``bandwidth_bps`` and the backbone
        and gateway tiers keep their default ratios to it (2x and 1x), so a
        bandwidth sweep changes the operating point, not the topology shape.
        """
        return replace(self,
                       link_bandwidth_bps=bandwidth_bps,
                       backbone_bandwidth_bps=backbone_factor * bandwidth_bps,
                       gateway_bandwidth_bps=gateway_factor * bandwidth_bps)


class Testbed:
    """The emulated OLCF ACE infrastructure."""

    # Not a pytest test class despite the name.
    __test__ = False

    def __init__(self, env: Environment,
                 config: Optional[TestbedConfig] = None) -> None:
        self.env = env
        self.config = config or TestbedConfig()
        self.streams = RandomStreams(self.config.seed)
        self.network = Network(env, "ace")
        self.dns = DNSRegistry(env)

        cfg = self.config
        # All links share one jitter stream; the batching wrapper keeps the
        # draw order (and the values) identical to scalar uniform() calls.
        jitter_rng = BatchedUniform(self.streams.stream("link-jitter"))

        # --- facilities -----------------------------------------------------
        self.hpc_facility = Facility(env, "olcf", self.network,
                                     description="Oak Ridge Leadership Computing Facility")
        self.exp_facility = Facility(env, "experimental", self.network,
                                     description="Experimental facility (emulated on Andes)")

        # --- core switch ------------------------------------------------------
        self.core_switch = self.hpc_facility.add_host("olcf-core", SWITCH_SPEC,
                                                       role="switch")

        def attach(name: str, *, backbone: bool = False) -> None:
            bandwidth = (cfg.backbone_bandwidth_bps if backbone
                         else cfg.link_bandwidth_bps)
            self.network.connect(name, "olcf-core",
                                 bandwidth_bps=bandwidth,
                                 latency_s=cfg.link_latency_s,
                                 jitter_s=cfg.link_jitter_s,
                                 rng=jitter_rng)

        # --- DSNs + RabbitMQ broker cluster -------------------------------------
        self.dsn_nodes = []
        brokers = []
        for i in range(cfg.dsn_count):
            name = f"dsn{i+1}"
            node = self.hpc_facility.add_host(name, DSN_SPEC, role="dsn")
            attach(name, backbone=True)
            self.dsn_nodes.append(node)
            brokers.append(Broker(env, f"rmqs{i+1}", node))
        self.broker_cluster = BrokerCluster(env, "rabbitmq", brokers, self.network)

        # --- SciStream gateway DSNs (PRS) ------------------------------------------
        self.producer_gateway = self.hpc_facility.add_host("gw-prod", GATEWAY_SPEC,
                                                           role="gateway")
        self.consumer_gateway = self.hpc_facility.add_host("gw-cons", GATEWAY_SPEC,
                                                           role="gateway")
        for gateway in ("gw-prod", "gw-cons"):
            self.network.connect(gateway, "olcf-core",
                                 bandwidth_bps=cfg.gateway_bandwidth_bps,
                                 latency_s=cfg.link_latency_s,
                                 jitter_s=cfg.link_jitter_s,
                                 rng=jitter_rng)
        # Dedicated overlay-tunnel segment between the two gateways.
        self.network.connect("gw-prod", "gw-cons",
                             bandwidth_bps=cfg.gateway_bandwidth_bps,
                             latency_s=cfg.wan_latency_s,
                             jitter_s=cfg.link_jitter_s,
                             rng=jitter_rng)

        # --- MSS front end: hardware LB + ingress node -------------------------------
        lb_host = self.hpc_facility.add_host("lb1", LOAD_BALANCER_SPEC, role="lb")
        ingress_host = self.hpc_facility.add_host("ingress1", INGRESS_SPEC,
                                                  role="ingress")
        attach("lb1", backbone=True)
        attach("ingress1", backbone=True)
        self.network.connect("lb1", "ingress1",
                             bandwidth_bps=cfg.backbone_bandwidth_bps,
                             latency_s=cfg.link_latency_s,
                             jitter_s=cfg.link_jitter_s,
                             rng=jitter_rng)
        self.load_balancer = HardwareLoadBalancer(env, "olcf-lb", lb_host,
                                                  tls=DEFAULT_TLS)
        self.ingress = IngressController(env, "olivine-router", ingress_host,
                                         tls=DEFAULT_TLS)

        # --- OpenShift cluster over the DSNs -----------------------------------------
        self.openshift = OpenShiftCluster(
            env, "olivine",
            worker_nodes=self.dsn_nodes,
            ingress=self.ingress,
            nodeports=self.hpc_facility.nodeports,
        )
        self.rabbitmq_pods = []
        for i in range(cfg.dsn_count):
            pod = self.openshift.schedule_pod("abc123", PodSpec(
                name=f"rabbitmq-{i}", app="rabbitmq", cpus=12,
                memory_bytes=32 * units.GIB, ports=(5672, 5671),
                anti_affinity_group="rabbitmq"))
            self.rabbitmq_pods.append(pod)

        # --- S3M control plane (MSS provisioning) --------------------------------------
        self.s3m = S3MService(env, allowed_projects={"abc123"})

        # --- Andes compute cluster ------------------------------------------------------
        total_nodes = cfg.producer_nodes + cfg.consumer_nodes + 1
        self.andes = ComputeCluster(env, "andes", self.network,
                                    node_count=total_nodes, spec=ANDES_SPEC)
        for node in self.andes.nodes:
            attach(node.name)
            self.hpc_facility.adopt_host(node.name)
        self.producer_pool = self.andes.nodes[:cfg.producer_nodes]
        self.consumer_pool = self.andes.nodes[cfg.producer_nodes:
                                              cfg.producer_nodes + cfg.consumer_nodes]
        self.coordinator_node = self.andes.nodes[-1]
        self.launcher = JobLauncher(self.andes)

        # The experimental facility is emulated: its border is the producer
        # side of the core switch (no distinct WAN hop by default).
        self.exp_facility.adopt_host(self.producer_pool[0].name)
        self.exp_facility.set_border(self.producer_pool[0].name)
        self.hpc_facility.set_border("olcf-core")
        self.wan = WideAreaNetwork(env, self.network,
                                   latency_s=cfg.wan_latency_s,
                                   bandwidth_bps=cfg.link_bandwidth_bps)

    # -- convenience accessors -------------------------------------------------
    @property
    def dsn_names(self) -> list[str]:
        return [node.name for node in self.dsn_nodes]

    def producer_host(self, rank: int) -> str:
        return self.producer_pool[rank % len(self.producer_pool)].name

    def consumer_host(self, rank: int) -> str:
        return self.consumer_pool[rank % len(self.consumer_pool)].name

    def broker_host_name(self, broker: Broker) -> str:
        return broker.host.name

    def declare_work_queue(self, name: str, *, is_control: bool = False):
        """Declare a bounded classic queue with the testbed's default policy."""
        policy = QueuePolicy(max_length=self.config.queue_max_length)
        return self.broker_cluster.declare_queue(name, policy=policy,
                                                 is_control=is_control)

    def describe(self) -> dict:
        return {
            "network": self.network.describe(),
            "dsns": self.dsn_names,
            "producer_nodes": [n.name for n in self.producer_pool],
            "consumer_nodes": [n.name for n in self.consumer_pool],
            "coordinator": self.coordinator_node.name,
            "openshift": self.openshift.describe(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<Testbed dsns={len(self.dsn_nodes)} "
                f"producers={len(self.producer_pool)} "
                f"consumers={len(self.consumer_pool)}>")
