"""Network-Layer Forwarding (NLF) — a future-work extension architecture.

§6 ("Other streaming architectures") sketches streaming architectures that
forward at the network layer with reduced delivery guarantees: the EJFAT
FPGA-accelerated UDP load balancer and OLCF's Project Banana Pepper (routers
configured as NAT gateways that selectively forward traffic to a set of
compute nodes).

This module provides a simplified model of that idea so the repository can
run the "what if we forward below the application layer?" ablation: the
forwarder is a fast router host that rewrites/forwards frames with a very
small per-message cost and **no TLS and no broker-side reliability** on the
forwarded hop.  The streaming service is still reached (the paper's framing
keeps RabbitMQ as the service), but through a hop that is much cheaper than
a proxy, load balancer or ingress.
"""

from __future__ import annotations

from typing import Generator

from ..amqp import Broker
from ..netsim.connection import Traversable
from ..netsim.node import NodeSpec
from ..netsim.tls import TLSProfile
from ..netsim import units
from .base import StreamingArchitecture
from .deployment import DeploymentReport
from .testbed import Testbed

__all__ = ["NLFArchitecture"]

#: A hardware router forwarding at line rate: tiny per-message cost.
ROUTER_SPEC = NodeSpec(cores=8, memory_bytes=16 * units.GIB,
                       per_message_seconds=3e-6, per_byte_seconds=2.5e-11,
                       concurrency=32)


class NLFArchitecture(StreamingArchitecture):
    """Network-layer forwarding through a NAT-gateway router (extension)."""

    name = "NLF"
    label = "NLF"

    #: Router/NAT rule configuration time at deploy.
    router_config_latency_s = 1.0

    def __init__(self, testbed: Testbed, **kwargs) -> None:
        super().__init__(testbed, **kwargs)
        self.router_name = "nlf-router"

    def deploy(self) -> Generator:
        yield self.env.timeout(self.router_config_latency_s)
        cfg = self.testbed.config
        if self.router_name not in self.network.nodes:
            self.testbed.hpc_facility.add_host(self.router_name, ROUTER_SPEC,
                                               role="router")
            self.network.connect(self.router_name, "olcf-core",
                                 bandwidth_bps=cfg.link_bandwidth_bps,
                                 latency_s=cfg.link_latency_s,
                                 jitter_s=cfg.link_jitter_s)
            # One NAT mapping per DSN, maintained by network engineering.
            for index, dsn in enumerate(self.testbed.dsn_names):
                self.testbed.hpc_facility.nat.add_mapping(
                    "198.51.100.10", 20000 + index, dsn, 5672)
        self.deployed = True
        return self

    # -- data plane ------------------------------------------------------------
    def producer_publish_stages(self, host: str, broker: Broker) -> list[Traversable]:
        return self.route_stages(
            [host, "olcf-core", self.router_name, "olcf-core", broker.host.name])

    def producer_delivery_stages(self, broker: Broker, host: str) -> list[Traversable]:
        return self.route_stages(
            [broker.host.name, "olcf-core", self.router_name, "olcf-core", host])

    def consumer_delivery_stages(self, broker: Broker, host: str) -> list[Traversable]:
        return self.route_stages([broker.host.name, "olcf-core", host])

    def consumer_publish_stages(self, host: str, broker: Broker) -> list[Traversable]:
        return self.route_stages([host, "olcf-core", broker.host.name])

    def connection_tls(self) -> list[TLSProfile]:
        return []

    # -- feasibility ------------------------------------------------------------
    def deployment_report(self) -> DeploymentReport:
        return DeploymentReport(
            architecture=self.label,
            data_path_hops=self.data_path_hop_count(),
            firewall_rules=0,
            nodeports_exposed=0,
            dns_entries=0,
            admin_steps=1 + len(self.testbed.dsn_names),  # router + NAT rules
            user_steps=1,
            security_exposure=2,
            multi_user_scalability=2,
            tls_placement="none on the forwarded hop (reduced guarantees)",
            nat_traversal="router configured as a selective NAT gateway",
            notes=[
                "models the EJFAT / Project Banana Pepper network-layer approach (§6)",
                "message-delivery guarantees are weaker than application-layer forwarding",
            ],
        )
