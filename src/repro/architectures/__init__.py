"""The paper's cross-facility data streaming architectures.

:class:`DTSArchitecture`, :class:`PRSArchitecture` and :class:`MSSArchitecture`
implement §2/§4 of the paper on top of the shared :class:`Testbed`;
:class:`NLFArchitecture` is the §6 network-layer-forwarding extension.
"""

from .base import ClientEndpoints, DeploymentError, StreamingArchitecture
from .deployment import FEASIBILITY_AXES, DeploymentReport
from .dts import DTSArchitecture
from .mss import MSSArchitecture
from .nlf import NLFArchitecture
from .prs import PRSArchitecture
from .testbed import Testbed, TestbedConfig

__all__ = [
    "StreamingArchitecture",
    "ClientEndpoints",
    "DeploymentError",
    "DeploymentReport",
    "FEASIBILITY_AXES",
    "Testbed",
    "TestbedConfig",
    "DTSArchitecture",
    "PRSArchitecture",
    "MSSArchitecture",
    "NLFArchitecture",
    "make_architecture",
    "ARCHITECTURES",
]

#: Registry of architecture factories keyed by the labels used in the
#: figures (e.g. "DTS", "PRS(HAProxy)", "PRS(Stunnel)",
#: "PRS(HAProxy,4conns)", "MSS").
ARCHITECTURES = {
    "DTS": lambda testbed, **kw: DTSArchitecture(testbed, **kw),
    "PRS(Stunnel)": lambda testbed, **kw: PRSArchitecture(
        testbed, proxy_type="stunnel", **kw),
    "PRS(HAProxy)": lambda testbed, **kw: PRSArchitecture(
        testbed, proxy_type="haproxy", **kw),
    "PRS(HAProxy,4conns)": lambda testbed, **kw: PRSArchitecture(
        testbed, proxy_type="haproxy", num_connections=4, **kw),
    "PRS(Nginx)": lambda testbed, **kw: PRSArchitecture(
        testbed, proxy_type="nginx", **kw),
    "MSS": lambda testbed, **kw: MSSArchitecture(testbed, **kw),
    "MSS(bypass)": lambda testbed, **kw: MSSArchitecture(
        testbed, bypass_lb_for_internal=True, **kw),
    "NLF": lambda testbed, **kw: NLFArchitecture(testbed, **kw),
}


def make_architecture(label: str, testbed: Testbed, **kwargs) -> StreamingArchitecture:
    """Instantiate an architecture by its figure label."""
    try:
        factory = ARCHITECTURES[label]
    except KeyError:
        raise ValueError(f"unknown architecture {label!r}; "
                         f"expected one of {sorted(ARCHITECTURES)}") from None
    return factory(testbed, **kwargs)
