"""Managed Service Streaming (MSS).

§2.3/§4.5: the facility's platform manages the data flow.  The RabbitMQ
cluster is provisioned on demand through the S3M Streaming API (token-based
auth), and clients connect to a stable FQDN on port 443.  The FQDN
terminates at a dedicated hardware load balancer outside the OpenShift
cluster, which forwards to the OpenShift ingress controller (running on
separate ingress nodes), which in turn routes to the RabbitMQ pods on the
DSNs.

Data path (per message)::

    client → core → load balancer → ingress → core → DSN/broker   (and back)

Every producer *and* consumer message crosses the LB + ingress in both
directions — the source of MSS's overhead and of its scaling collapse at
high consumer counts.  The §6 improvement of letting facility-internal
consumers bypass the load balancer is available as
``bypass_lb_for_internal=True`` and is exercised by an ablation benchmark.
"""

from __future__ import annotations

from typing import Generator

from ..amqp import Broker
from ..cluster import ProvisionRequest
from ..netsim.dns import Endpoint
from ..netsim.tls import DEFAULT_TLS, TLSProfile
from ..netsim.connection import Traversable
from .base import StreamingArchitecture
from .deployment import DeploymentReport
from .testbed import Testbed

__all__ = ["MSSArchitecture"]


class MSSArchitecture(StreamingArchitecture):
    """Managed Service Streaming: FQDN + load balancer + ingress."""

    name = "MSS"

    def __init__(self, testbed: Testbed, *,
                 bypass_lb_for_internal: bool = False, **kwargs) -> None:
        super().__init__(testbed, **kwargs)
        self.bypass_lb_for_internal = bypass_lb_for_internal
        self.label = "MSS(bypass)" if bypass_lb_for_internal else "MSS"
        self.hostname: str | None = None
        self.provision_result = None

    # -- control plane ------------------------------------------------------------
    def deploy(self) -> Generator:
        """Provision the cluster via S3M and publish the FQDN route (§4.5)."""
        testbed = self.testbed
        token = testbed.s3m.issue_token("abc123")
        request = ProvisionRequest(kind="general", name="rabbitmq", cpus=12,
                                   ram_gbs=32, nodes=len(testbed.dsn_nodes),
                                   max_msg_size=536_870_912)
        self.provision_result = yield from testbed.s3m.provision_cluster(token, request)
        self.hostname = self.provision_result.hostname

        backends = [Endpoint(node.name, 5672) for node in testbed.dsn_nodes]
        testbed.ingress.add_route(self.hostname, backends)
        testbed.load_balancer.add_backend(Endpoint("ingress1", 443, "https"))
        testbed.dns.register(self.hostname, Endpoint("lb1", 443, "amqps"))
        self.deployed = True
        return self

    # -- data plane ------------------------------------------------------------
    def _frontend_wrappers(self) -> dict[str, Traversable]:
        return {"lb1": self.testbed.load_balancer,
                "ingress1": self.testbed.ingress}

    def _via_frontend_to_broker(self, host: str, broker: Broker) -> list[Traversable]:
        return self.route_stages(
            [host, "olcf-core", "lb1", "ingress1", "olcf-core", broker.host.name],
            wrappers=self._frontend_wrappers())

    def _via_frontend_to_host(self, broker: Broker, host: str) -> list[Traversable]:
        return self.route_stages(
            [broker.host.name, "olcf-core", "ingress1", "lb1", "olcf-core", host],
            wrappers=self._frontend_wrappers())

    def producer_publish_stages(self, host: str, broker: Broker) -> list[Traversable]:
        return self._via_frontend_to_broker(host, broker)

    def producer_delivery_stages(self, broker: Broker, host: str) -> list[Traversable]:
        return self._via_frontend_to_host(broker, host)

    def consumer_delivery_stages(self, broker: Broker, host: str) -> list[Traversable]:
        if self.bypass_lb_for_internal:
            return self.route_stages([broker.host.name, "olcf-core", host],
                                     tls_at={broker.host.name: DEFAULT_TLS})
        return self._via_frontend_to_host(broker, host)

    def consumer_publish_stages(self, host: str, broker: Broker) -> list[Traversable]:
        if self.bypass_lb_for_internal:
            return self.route_stages([host, "olcf-core", broker.host.name],
                                     tls_at={broker.host.name: DEFAULT_TLS})
        return self._via_frontend_to_broker(host, broker)

    def connection_tls(self) -> list[TLSProfile]:
        return [DEFAULT_TLS]

    # -- feasibility ------------------------------------------------------------
    def deployment_report(self) -> DeploymentReport:
        report = DeploymentReport(
            architecture=self.label,
            data_path_hops=self.data_path_hop_count(),
            # No inbound pinholes: only outbound connectivity from the
            # producer site is required (§2.3).
            firewall_rules=0,
            nodeports_exposed=0,
            dns_entries=1,
            admin_steps=0,
            user_steps=2,  # obtain a token + call provision_cluster
            security_exposure=1,
            multi_user_scalability=5,
            tls_placement="TLS terminates at the facility ingress (FQDN:443)",
            nat_traversal="outbound-only connectivity; LB/ingress have routable IPs",
            notes=[
                "service provisioned on demand via the S3M Streaming API",
                "all traffic shares the managed LB + ingress front end",
            ],
        )
        if self.bypass_lb_for_internal:
            report.notes.append(
                "facility-internal consumers bypass the load balancer (§6 improvement)")
        return report
