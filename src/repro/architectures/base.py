"""Common machinery for the DTS / PRS / MSS architecture builders.

An architecture owns the *wiring* question: given the shared
:class:`~repro.architectures.testbed.Testbed`, what stages does a message
cross between a producer and the broker cluster, and between the broker
cluster and a consumer?  Each concrete architecture implements

* :meth:`StreamingArchitecture.deploy` — a simulation process that performs
  the control-plane setup the paper describes in §4 (Helm install and
  NodePorts for DTS, SciStream session establishment for PRS, S3M
  provisioning and route creation for MSS), and
* :meth:`StreamingArchitecture.attach_producer` /
  :meth:`StreamingArchitecture.attach_consumer` — build the
  publish/delivery :class:`~repro.netsim.connection.Connection` objects and
  the AMQP clients for one application endpoint.

Both attach methods return a :class:`ClientEndpoints` pair (a publisher and
a subscriber sharing the same broker assignment), because the feedback and
broadcast/gather patterns need producers that also consume (replies) and
consumers that also publish (replies/metrics).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Generator, Iterable, Optional

from ..simkit import Environment
from ..amqp import AckPolicy, Broker, ConsumerClient, ProducerClient
from ..netsim.connection import Connection, SecuredNode, Traversable
from ..netsim.tls import NULL_TLS, TLSProfile
from .deployment import DeploymentReport
from .testbed import Testbed

__all__ = ["DeploymentError", "ClientEndpoints", "StreamingArchitecture"]


class DeploymentError(RuntimeError):
    """Raised when an architecture cannot support the requested deployment
    (e.g. PRS over Stunnel with more than 16 connections, §5.3)."""


@dataclass
class ClientEndpoints:
    """The AMQP clients attached for one application endpoint (P or C)."""

    name: str
    host: str
    broker: Broker
    #: Client used to publish messages toward the streaming service.
    publisher: ProducerClient
    #: Client used to receive deliveries from the streaming service.
    subscriber: ConsumerClient


class StreamingArchitecture(abc.ABC):
    """Base class for the three cross-facility streaming architectures."""

    #: Short identifier used in results/figures ("DTS", "PRS", "MSS", ...).
    name: str = "base"
    #: Human-readable label (may include tuning options, e.g. proxy type).
    label: str = "base"

    def __init__(self, testbed: Testbed, *,
                 ack_policy: Optional[AckPolicy] = None) -> None:
        self.testbed = testbed
        self.env: Environment = testbed.env
        self.cluster = testbed.broker_cluster
        self.network = testbed.network
        self.ack_policy = ack_policy or testbed.config.ack_policy
        self.deployed = False
        self._endpoints: list[ClientEndpoints] = []

    # -- control plane ------------------------------------------------------------
    @abc.abstractmethod
    def deploy(self) -> Generator:
        """Simulation process performing the §4 deployment steps."""

    @abc.abstractmethod
    def deployment_report(self) -> DeploymentReport:
        """Feasibility/operational summary of this deployment."""

    # -- data plane wiring ------------------------------------------------------------
    @abc.abstractmethod
    def producer_publish_stages(self, host: str, broker: Broker) -> list[Traversable]:
        """Stages a message crosses from a producer host into ``broker``."""

    @abc.abstractmethod
    def producer_delivery_stages(self, broker: Broker, host: str) -> list[Traversable]:
        """Stages from ``broker`` back to a producer host (reply deliveries)."""

    @abc.abstractmethod
    def consumer_delivery_stages(self, broker: Broker, host: str) -> list[Traversable]:
        """Stages a delivery crosses from ``broker`` to a consumer host."""

    @abc.abstractmethod
    def consumer_publish_stages(self, host: str, broker: Broker) -> list[Traversable]:
        """Stages from a consumer host into ``broker`` (replies, gathers)."""

    @abc.abstractmethod
    def connection_tls(self) -> list[TLSProfile]:
        """TLS handshakes paid when a client connection is established."""

    def producer_connection_tls(self) -> list[TLSProfile]:
        """TLS handshakes for producer connections (defaults to the common set)."""
        return self.connection_tls()

    def consumer_connection_tls(self) -> list[TLSProfile]:
        """TLS handshakes for consumer connections (defaults to the common set)."""
        return self.connection_tls()

    # -- shared helpers ------------------------------------------------------------
    def route_stages(self, node_names: Iterable[str], *,
                     wrappers: Optional[dict[str, Traversable]] = None,
                     tls_at: Optional[dict[str, TLSProfile]] = None) -> list[Traversable]:
        """Build a stage list for a node path, inserting wrappers/TLS.

        ``node_names`` is the ordered list of hosts the path visits; links
        between consecutive hosts are taken from the testbed network.  A host
        present in ``wrappers`` is replaced by the given traversable (e.g. a
        proxy, the load balancer or the ingress controller); a host present
        in ``tls_at`` is wrapped in :class:`SecuredNode` with that profile.
        """
        wrappers = wrappers or {}
        tls_at = tls_at or {}
        names = list(node_names)
        stages: list[Traversable] = []
        for index, name in enumerate(names):
            if name in wrappers:
                stages.append(wrappers[name])
            else:
                node = self.network.get_node(name)
                profile = tls_at.get(name, NULL_TLS)
                if profile is NULL_TLS:
                    stages.append(node)
                else:
                    stages.append(SecuredNode(node, profile))
            if index + 1 < len(names):
                stages.append(self.network.link_between(name, names[index + 1]))
        return stages

    def _make_endpoints(self, name: str, host: str, *,
                        publish_stages: list[Traversable],
                        delivery_stages: list[Traversable],
                        broker: Broker,
                        tls_handshakes: Optional[list[TLSProfile]] = None) -> ClientEndpoints:
        handshakes = (tls_handshakes if tls_handshakes is not None
                      else self.connection_tls())
        publish_conn = Connection(
            self.env, f"{self.name}:{name}:publish", publish_stages,
            tls_handshakes=handshakes)
        delivery_conn = Connection(
            self.env, f"{self.name}:{name}:delivery", delivery_stages,
            tls_handshakes=handshakes)
        publisher = ProducerClient(self.env, f"{name}-pub", cluster=self.cluster,
                                   connection=publish_conn, broker=broker,
                                   ack_policy=self.ack_policy)
        subscriber = ConsumerClient(self.env, f"{name}-sub", cluster=self.cluster,
                                    connection=delivery_conn, broker=broker,
                                    ack_policy=self.ack_policy)
        endpoints = ClientEndpoints(name=name, host=host, broker=broker,
                                    publisher=publisher, subscriber=subscriber)
        self._endpoints.append(endpoints)
        return endpoints

    def _require_deployed(self) -> None:
        if not self.deployed:
            raise DeploymentError(
                f"{self.label}: deploy() must run before attaching clients")

    # -- public attach API ------------------------------------------------------------
    def attach_producer(self, host: str, name: str) -> ClientEndpoints:
        """Attach a producer application running on ``host``."""
        self._require_deployed()
        broker = self.cluster.assign_client_broker()
        return self._make_endpoints(
            name, host,
            publish_stages=self.producer_publish_stages(host, broker),
            delivery_stages=self.producer_delivery_stages(broker, host),
            broker=broker,
            tls_handshakes=self.producer_connection_tls())

    def attach_consumer(self, host: str, name: str) -> ClientEndpoints:
        """Attach a consumer application running on ``host``."""
        self._require_deployed()
        broker = self.cluster.assign_client_broker()
        return self._make_endpoints(
            name, host,
            publish_stages=self.consumer_publish_stages(host, broker),
            delivery_stages=self.consumer_delivery_stages(broker, host),
            broker=broker,
            tls_handshakes=self.consumer_connection_tls())

    # -- reporting ------------------------------------------------------------
    @property
    def endpoints(self) -> list[ClientEndpoints]:
        return list(self._endpoints)

    def data_path_hop_count(self) -> int:
        """Producer→broker→consumer link count for a representative pair."""
        broker = self.cluster.brokers[0]
        producer_host = self.testbed.producer_host(0)
        consumer_host = self.testbed.consumer_host(0)
        publish = self.producer_publish_stages(producer_host, broker)
        delivery = self.consumer_delivery_stages(broker, consumer_host)
        from ..netsim.link import Link
        return sum(1 for stage in publish + delivery if isinstance(stage, Link))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.label} deployed={self.deployed}>"
