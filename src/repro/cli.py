"""Command-line front end (the StreamSim-equivalent driver).

Examples::

    repro-streamsim table1
    repro-streamsim compare --workload Dstream --pattern work_sharing --consumers 4
    repro-streamsim experiment --architecture MSS --workload Lstream \
        --pattern work_sharing_feedback --consumers 8 --messages 50
    repro-streamsim figure fig4 --messages 20 --consumers 1 2 4 8 --jobs 4
    repro-streamsim sweep --workload Lstream --architectures DTS MSS \
        --consumers 1 2 4 8 --jobs 4 --cache sweep-cache
    repro-streamsim sensitivity --axis testbed.link_bandwidth_bps=1e9,10e9,100e9 \
        --axis testbed.dsn_count=1,3,5 --architectures DTS MSS --jobs 4
    repro-streamsim chaos --fault broker_kill_rate --rates 0 1 2 \
        --architectures DTS MSS --jobs 4
    repro-streamsim deployment
    repro-streamsim cache stats sweep-cache
    repro-streamsim cache gc sweep-cache --purge-quarantine
    repro-streamsim cache snapshot pre-refactor sweep-cache
    repro-streamsim lint --list-rules
    repro-streamsim lint --rule D003 --json

The ``cache`` family administers a sharded result-cache directory
(lifecycle management, no simulation): ``stats`` reports entries/bytes/
shards per code fingerprint plus the stale fraction and quarantined
files, ``gc`` evicts stale-fingerprint entries, ``compact`` rewrites
shards in sorted-key order (byte-identical entries), and ``snapshot`` /
``rollback`` / ``profiles`` manage named frozen copies of the shard set
under ``<cache>/.profiles/``.

Every experiment-running subcommand builds one execution
:class:`~repro.harness.session.Session` from a shared option block —
``--jobs N`` (fan points out over workers, bit-identical to serial for the
same seed), ``--backend serial|process|thread`` (named registry backends),
``--cache PATH`` (sharded JSON result cache reused across invocations;
entries written by older code are auto-invalidated unless ``--allow-stale``;
pre-sharding single-file caches migrate automatically), and ``--timeout S``
/ ``--retries N`` / ``--on-error raise|skip|record`` to bound each point's
wall-clock time and decide what a point that exhausts its attempts becomes.
Options left unset fall back to ``REPRO_JOBS``/``REPRO_BACKEND``/
``REPRO_CACHE``/... environment variables (see
:meth:`~repro.harness.session.Session.from_env`), so scripted and
interactive invocations configure execution the same way.  Every subcommand
prints an ASCII table; ``--csv PATH`` also writes the rows to a CSV file.
"""

from __future__ import annotations

import argparse
import os
import statistics
import sys
from typing import Optional, Sequence

from .analysis import configure_lint_parser, run_lint
from .core import (
    compare_architectures,
    deployment_comparison,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure_bandwidth_scaling,
    figure_chaos_degradation,
    table1_text,
)
from .core.study import PAPER_ARCHITECTURES
from .faults import FAULT_AXES, FaultPlan
from .harness import (
    ON_ERROR_MODES,
    PAPER_CONSUMER_COUNTS,
    ConsumerSweep,
    ExperimentConfig,
    ScenarioSet,
    Session,
    backend_names,
    scale_link_tiers,
    sensitivity_sweep,
)
from .metrics import format_table, write_csv

__all__ = ["main", "build_parser"]


def _positive_float(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError("must be a positive number")
    return value


def _non_negative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError("must be >= 0")
    return value


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def _axis_value(token: str):
    """One axis coordinate: int when it parses, then float, else string."""
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        return token


def _axis_spec(text: str) -> tuple[str, list]:
    """Parse one ``--axis PATH=V1,V2,...`` occurrence."""
    path, separator, values_text = text.partition("=")
    path = path.strip()
    tokens = [token.strip() for token in values_text.split(",")
              if token.strip()]
    if not separator or not path or not tokens:
        raise argparse.ArgumentTypeError(
            f"expected PATH=V1,V2,... (e.g. testbed.dsn_count=1,3,5), "
            f"got {text!r}")
    return path, [_axis_value(token) for token in tokens]


def _execution_options() -> argparse.ArgumentParser:
    """The shared execution-session option block, as an argparse *parent*.

    Every experiment-running subcommand inherits exactly these flags (one
    definition instead of per-subcommand copies), and
    :meth:`Session.from_args` turns the parsed namespace into a
    :class:`~repro.harness.session.Session` — options left at their default
    fall back to the ``REPRO_*`` environment variables.
    """
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group(
        "execution", "execution-session options (unset options fall back "
                     "to REPRO_JOBS / REPRO_BACKEND / REPRO_CACHE / "
                     "REPRO_TIMEOUT / REPRO_RETRIES / REPRO_ON_ERROR)")
    group.add_argument(
        "--jobs", type=_positive_int, default=None, metavar="N",
        help="run scenario points on N workers, N >= 1 (bit-identical to "
             "serial execution for the same seed)")
    group.add_argument(
        "--backend", choices=backend_names(), default=None,
        help="named execution backend from the registry (default: process "
             "pool when --jobs > 1, else serial; the serial backend runs "
             "one point at a time and ignores --jobs)")
    group.add_argument(
        "--cache", default=None, metavar="PATH",
        help="sharded JSON result cache directory; already-computed points "
             "are reused and fresh ones are persisted incrementally as "
             "they complete (old single-file caches are migrated)")
    group.add_argument(
        "--allow-stale", action="store_true",
        help="serve cache entries written by a different version of the "
             "repro source instead of recomputing them")
    group.add_argument(
        "--timeout", type=_positive_float, default=None, metavar="SECONDS",
        help="per-point wall-clock timeout; a point that exceeds it counts "
             "as a failure (and is retried if --retries > 0)")
    # None defaults are "not given" sentinels: an explicit `--retries 0` /
    # `--on-error raise` must override REPRO_RETRIES/REPRO_ON_ERROR rather
    # than being mistaken for the unset default.
    group.add_argument(
        "--retries", type=_non_negative_int, default=None, metavar="N",
        help="extra attempts per failed/timed-out point (default 0); "
             "retries re-derive their seeds from the config, so results "
             "match a clean run")
    group.add_argument(
        "--on-error", choices=ON_ERROR_MODES, default=None,
        dest="on_error",
        help="what a point that exhausts its attempts becomes: raise "
             "aborts the sweep (default), skip drops the point, record "
             "reports it as a failed row")
    return parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-streamsim",
        description="Cross-facility data streaming architecture simulator "
                    "(DTS / PRS / MSS reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)
    execution = _execution_options()

    sub.add_parser("table1", help="print Table 1 (workload characteristics)")

    deployment = sub.add_parser("deployment", parents=[execution],
                                help="print the architecture deployment comparison")
    deployment.add_argument("--architectures", nargs="+",
                            default=["DTS", "PRS(HAProxy)", "MSS"])

    compare = sub.add_parser("compare", parents=[execution],
                             help="compare architectures on one scenario")
    compare.add_argument("--workload", default="Dstream")
    compare.add_argument("--pattern", default="work_sharing")
    compare.add_argument("--consumers", type=int, default=4)
    compare.add_argument("--messages", type=int, default=30)
    compare.add_argument("--runs", type=int, default=1)
    compare.add_argument("--seed", type=int, default=1)
    compare.add_argument("--architectures", nargs="+",
                         default=list(PAPER_ARCHITECTURES))
    compare.add_argument("--csv", default=None)

    experiment = sub.add_parser("experiment", parents=[execution],
                                help="run a single experiment point")
    experiment.add_argument("--architecture", default="DTS")
    experiment.add_argument("--workload", default="Dstream")
    experiment.add_argument("--pattern", default="work_sharing")
    experiment.add_argument("--consumers", type=int, default=2)
    experiment.add_argument("--producers", type=int, default=None)
    experiment.add_argument("--messages", type=int, default=50)
    experiment.add_argument("--runs", type=int, default=1)
    experiment.add_argument("--seed", type=int, default=1)
    experiment.add_argument("--population", type=int, default=1,
                            help="logical clients each producer/consumer "
                                 "process stands for (aggregate-client "
                                 "model; 1 = discrete clients)")
    experiment.add_argument("--csv", default=None)

    figure = sub.add_parser("figure", parents=[execution],
                            help="regenerate one of the paper's figures "
                                 "(or the §6 bandwidth ablation)")
    figure.add_argument("name", choices=["fig4", "fig5", "fig6", "fig7",
                                         "fig8", "bandwidth"])
    figure.add_argument("--messages", type=int, default=15)
    figure.add_argument("--consumers", type=int, nargs="+", default=None,
                        help="consumer counts (fig4-8; default 1..64); for "
                             "the bandwidth figure a single count "
                             "(default 16)")
    figure.add_argument("--link-gbps", type=float, nargs="+",
                        default=[1.0, 10.0, 100.0], dest="link_gbps",
                        help="access-link speeds swept by the bandwidth "
                             "figure")
    figure.add_argument("--runs", type=int, default=1)
    figure.add_argument("--seed", type=int, default=1)
    figure.add_argument("--csv", default=None)

    sweep = sub.add_parser(
        "sweep", parents=[execution],
        help="consumer-count sweep over several architectures")
    sweep.add_argument("--workload", default="Dstream")
    sweep.add_argument("--pattern", default="work_sharing")
    sweep.add_argument("--architectures", nargs="+",
                       default=list(PAPER_ARCHITECTURES))
    sweep.add_argument("--consumers", type=int, nargs="+",
                       default=list(PAPER_CONSUMER_COUNTS))
    sweep.add_argument("--messages", type=int, default=20)
    sweep.add_argument("--runs", type=int, default=1)
    sweep.add_argument("--seed", type=int, default=1)
    sweep.add_argument("--population", type=int, default=1,
                       help="logical clients each producer/consumer process "
                            "stands for (aggregate-client model; 1 = "
                            "discrete clients)")
    sweep.add_argument("--metric", default="throughput_msgs_per_s",
                       help="result attribute reported per point")
    sweep.add_argument("--csv", default=None)

    sensitivity = sub.add_parser(
        "sensitivity", parents=[execution],
        help="sweep arbitrary config/testbed axes (dotted paths) around a "
             "base scenario")
    sensitivity.add_argument(
        "--axis", type=_axis_spec, action="append", default=[],
        metavar="PATH=V1,V2,...",
        help="one sweep axis: a dotted config path (e.g. "
             "testbed.link_bandwidth_bps=1e9,100e9, testbed.dsn_count=1,3,5, "
             "testbed.ack_policy.mode=batch,per_message) or the special "
             "coordinates architecture=... / consumers=...; repeatable")
    sensitivity.add_argument(
        "--architectures", nargs="+", default=None,
        help="shorthand for an architecture axis (runs the whole grid per "
             "architecture)")
    sensitivity.add_argument("--workload", default="Dstream")
    sensitivity.add_argument("--pattern", default="work_sharing")
    sensitivity.add_argument("--consumers", type=int, default=4,
                             help="base consumer count (sweep it via "
                                  "--axis consumers=...)")
    sensitivity.add_argument("--messages", type=int, default=20)
    sensitivity.add_argument("--runs", type=int, default=1)
    sensitivity.add_argument("--seed", type=int, default=1)
    sensitivity.add_argument(
        "--scale-backbone", action="store_true", dest="scale_backbone",
        help="rescale the backbone/gateway tiers along with a swept "
             "testbed.link_bandwidth_bps axis (the §6 ablation shape)")
    sensitivity.add_argument("--metric", default="throughput_msgs_per_s",
                             help="result attribute reported per point")
    sensitivity.add_argument("--csv", default=None)

    chaos = sub.add_parser(
        "chaos", parents=[execution],
        help="chaos sweep: throughput degradation vs fault rate, per "
             "architecture (deterministic fault injection)")
    chaos.add_argument(
        "--fault", choices=FAULT_AXES, default="broker_kill_rate",
        help="which fault axis to sweep (default: broker kills with "
             "queue failover)")
    chaos.add_argument(
        "--rates", type=float, nargs="+", default=[0.0, 1.0, 2.0],
        help="fault-axis values; the first is the degradation baseline "
             "(rate axes count expected events over the horizon; "
             "link_degradation/slow_consumer are levels)")
    chaos.add_argument("--architectures", nargs="+",
                       default=list(PAPER_ARCHITECTURES))
    chaos.add_argument("--workload", default="Dstream")
    chaos.add_argument("--consumers", type=int, default=4)
    chaos.add_argument("--messages", type=int, default=25)
    chaos.add_argument("--runs", type=int, default=1)
    chaos.add_argument("--seed", type=int, default=1)
    chaos.add_argument(
        "--horizon", type=_positive_float, default=None, metavar="SECONDS",
        help="fault-scheduling window after measurement start (default: "
             "the FaultPlan default, sized to the full-speed messaging "
             "window)")
    chaos.add_argument("--csv", default=None)

    bench = sub.add_parser(
        "bench",
        help="run the micro/end-to-end benchmark suite and record a "
             "BENCH_<n>.json snapshot")
    bench.add_argument(
        "--dir", default=".", metavar="PATH", dest="bench_dir",
        help="directory holding the BENCH_<n>.json trajectory (default: "
             "current directory)")
    bench.add_argument(
        "--rounds", type=_positive_int, default=5, metavar="N",
        help="timed rounds per bench (median/stdev reduce over them, "
             "after one untimed warmup round)")
    bench.add_argument(
        "--quick", action="store_true",
        help="one timed round per bench (smoke mode)")
    bench.add_argument(
        "--bench", action="append", default=None, metavar="NAME",
        dest="bench_names",
        help="run only this bench (repeatable; see --list)")
    bench.add_argument(
        "--list", action="store_true", dest="list_benches",
        help="list the registered bench names and exit")
    bench.add_argument(
        "--compare", action="store_true",
        help="diff the fresh run against the latest existing snapshot; "
             "exit 1 when any bench regressed beyond --threshold "
             "(no-op with a note when no snapshot exists yet)")
    bench.add_argument(
        "--threshold", type=_positive_float, default=0.2, metavar="FRACTION",
        help="allowed median regression per bench for --compare "
             "(0.2 = 20%% slower fails; default 0.2)")
    bench.add_argument(
        "--no-save", action="store_true", dest="no_save",
        help="do not write a new BENCH_<n>.json snapshot")
    bench.add_argument(
        "--profile", action="store_true",
        help="cProfile one full experiment point and print the hot spots "
             "instead of running the timed suite")
    bench.add_argument(
        "--profile-out", default=None, metavar="PATH", dest="profile_out",
        help="with --profile: also dump raw pstats data to PATH")

    cache = sub.add_parser(
        "cache",
        help="administer a sharded result cache (stats / gc / compact / "
             "snapshot / rollback / profiles)")
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)

    def cache_path(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "path", nargs="?", default=None,
            help="cache directory (default: $REPRO_CACHE)")

    stats = cache_sub.add_parser(
        "stats",
        help="entries/bytes/shards per code fingerprint, stale fraction, "
             "quarantined files, saved profiles")
    cache_path(stats)
    stats.add_argument("--csv", default=None,
                       help="also write the per-fingerprint rows to a CSV "
                            "file")

    gc = cache_sub.add_parser(
        "gc",
        help="evict stale-fingerprint entries and delete emptied shards")
    cache_path(gc)
    gc.add_argument("--purge-quarantine", action="store_true",
                    dest="purge_quarantine",
                    help="also delete quarantined .corrupt files")
    gc.add_argument("--dry-run", action="store_true", dest="dry_run",
                    help="report what would be evicted without writing")

    compact = cache_sub.add_parser(
        "compact",
        help="rewrite shards with sorted keys (surviving entries stay "
             "byte-identical) and clear leftover .tmp files")
    cache_path(compact)

    snapshot = cache_sub.add_parser(
        "snapshot",
        help="freeze the current shard set as a named profile "
             "(<cache>/.profiles/<name>/)")
    snapshot.add_argument("name", help="profile name")
    cache_path(snapshot)
    snapshot.add_argument("--force", action="store_true",
                          help="replace an existing profile of this name")

    rollback = cache_sub.add_parser(
        "rollback",
        help="restore a named profile's shard set (byte-identical; shards "
             "created since the snapshot are removed)")
    rollback.add_argument("name", help="profile name")
    cache_path(rollback)

    profiles = cache_sub.add_parser(
        "profiles", help="list the cache's saved profiles")
    cache_path(profiles)
    profiles.add_argument("--delete", default=None, metavar="NAME",
                          help="delete this profile instead of listing")

    configure_lint_parser(sub)

    return parser


def _emit(rows: list[dict], *, title: str, csv_path: Optional[str]) -> None:
    print(format_table(rows, title=title))
    if csv_path:
        write_csv(csv_path, rows)
        print(f"\n[wrote {len(rows)} rows to {csv_path}]")


def _report_failures(failures) -> None:
    if failures:
        print(format_table([failure.as_row() for failure in failures],
                           title=f"{len(failures)} failed point(s)"),
              file=sys.stderr)


def _cmd_compare(args: argparse.Namespace, session: Session) -> int:
    comparison = compare_architectures(
        workload=args.workload, pattern=args.pattern, consumers=args.consumers,
        architectures=args.architectures, messages_per_producer=args.messages,
        runs=args.runs, seed=args.seed, session=session)
    _emit(comparison.rows(),
          title=f"{args.workload} / {args.pattern} @ {args.consumers} consumers",
          csv_path=args.csv)
    _report_failures(comparison.failures)
    return 0


def _cmd_sweep(args: argparse.Namespace, session: Session) -> int:
    producers = 1 if args.pattern.startswith("broadcast") else args.consumers[0]
    base = ExperimentConfig(
        workload=args.workload, pattern=args.pattern,
        num_producers=producers, num_consumers=args.consumers[0],
        messages_per_producer=args.messages, runs=args.runs, seed=args.seed,
        population=args.population)
    sweep = ConsumerSweep(
        base, architectures=args.architectures, consumer_counts=args.consumers,
        equal_producers=not args.pattern.startswith("broadcast"))
    result = sweep.run(session=session)
    _emit(result.rows(args.metric),
          title=f"{args.workload} / {args.pattern} sweep "
                f"({', '.join(args.architectures)})",
          csv_path=args.csv)
    _report_failures(result.failures)
    return 0


def _cmd_experiment(args: argparse.Namespace, session: Session) -> int:
    producers = args.producers
    if producers is None:
        producers = 1 if args.pattern.startswith("broadcast") else args.consumers
    config = ExperimentConfig(
        architecture=args.architecture, workload=args.workload,
        pattern=args.pattern, num_producers=producers,
        num_consumers=args.consumers, messages_per_producer=args.messages,
        runs=args.runs, seed=args.seed, population=args.population)
    # One point through the same session machinery as every sweep, so a
    # single experiment honors --cache/--timeout/--retries too.
    outcomes = session.run(ScenarioSet().add_config(config))
    failed = [outcome for outcome in outcomes if not outcome.ok]
    if failed or not outcomes:
        for outcome in failed:
            print(f"experiment failed after {outcome.attempts} attempt(s):\n"
                  f"{outcome.error}", file=sys.stderr)
        if not outcomes:  # the point failed and --on-error skip dropped it
            print("experiment failed and was dropped by --on-error skip",
                  file=sys.stderr)
        return 1
    _emit([outcomes[0].result.as_row()], title="Experiment result",
          csv_path=args.csv)
    return 0


def _cmd_figure(args: argparse.Namespace, session: Session) -> int:
    shared = dict(runs=args.runs, seed=args.seed,
                  messages_per_producer=args.messages, session=session)
    if args.name == "bandwidth":
        consumers = args.consumers[0] if args.consumers else 16
        data = figure_bandwidth_scaling(consumers=consumers,
                                        speeds_gbps=args.link_gbps, **shared)
    else:
        generators = {"fig4": figure4, "fig5": figure5, "fig6": figure6,
                      "fig7": figure7, "fig8": figure8}
        consumer_counts = args.consumers or [1, 2, 4, 8, 16, 32, 64]
        data = generators[args.name](consumer_counts=consumer_counts,
                                     **shared)
    _emit(data.rows, title=data.description, csv_path=args.csv)
    for sweep in data.sweeps.values():
        _report_failures(sweep.failures)
    return 0


def _cmd_sensitivity(args: argparse.Namespace, session: Session) -> int:
    axes: dict = {}
    if args.architectures:
        axes["architecture"] = list(args.architectures)
    for path, values in args.axis:
        if path in axes:
            print(f"error: axis {path!r} given more than once "
                  f"(merge the values into one --axis)", file=sys.stderr)
            return 2
        axes[path] = values
    if not axes:
        print("error: no axes to sweep; pass --axis PATH=V1,V2,... "
              "(and/or --architectures)", file=sys.stderr)
        return 2
    transform = None
    if args.scale_backbone:
        overridden = {"testbed.backbone_bandwidth_bps",
                      "testbed.gateway_bandwidth_bps"} & set(axes)
        if overridden:
            # The transform would rewrite those tiers on every point,
            # silently reverting the swept values.
            print(f"error: --scale-backbone derives "
                  f"{', '.join(sorted(overridden))} from the access-link "
                  f"bandwidth; drop the axis or the flag", file=sys.stderr)
            return 2
        transform = scale_link_tiers
    producers = 1 if args.pattern.startswith("broadcast") else args.consumers
    base = ExperimentConfig(
        workload=args.workload, pattern=args.pattern,
        num_producers=producers, num_consumers=args.consumers,
        messages_per_producer=args.messages, runs=args.runs, seed=args.seed)
    try:
        sweep = sensitivity_sweep(
            base, axes,
            equal_producers=not args.pattern.startswith("broadcast"),
            transform=transform, session=session)
    except (ValueError, TypeError) as exc:
        # Unknown axis path, empty axis, or an axis value whose type the
        # config validators reject (e.g. testbed.dsn_count=three).
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _emit(sweep.rows(args.metric),
          title=f"{args.workload} / {args.pattern} sensitivity "
                f"({' x '.join(sweep.axis_names)})",
          csv_path=args.csv)
    _report_failures(sweep.failures)
    return 0


def _cmd_chaos(args: argparse.Namespace, session: Session) -> int:
    plan = FaultPlan() if args.horizon is None else FaultPlan(
        horizon_s=args.horizon)
    data = figure_chaos_degradation(
        fault_axis=args.fault, rates=args.rates,
        architectures=args.architectures, workload=args.workload,
        consumers=args.consumers, messages_per_producer=args.messages,
        runs=args.runs, seed=args.seed, plan=plan, session=session)
    _emit(data.rows, title=data.description, csv_path=args.csv)
    for sweep in data.sweeps.values():
        _report_failures(sweep.failures)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """Run the benchmark suite: time, snapshot, compare, or profile."""
    from .harness import bench as benchmod

    if args.list_benches:
        for name in benchmod.bench_names():
            print(name)
        return 0
    if args.profile:
        print(benchmod.profile_point(args.profile_out))
        if args.profile_out:
            print(f"[wrote raw profile stats to {args.profile_out}]")
        return 0

    rounds = 1 if args.quick else args.rounds
    try:
        report = benchmod.run_benches(
            args.bench_names, rounds=rounds,
            progress=lambda name: print(f"[bench] {name} ...",
                                        file=sys.stderr))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(format_table(report.rows(), precision=6,
                       title=f"benchmark suite ({rounds} round(s), "
                             f"repro {report.repro_version}, "
                             f"git {report.git_sha[:12]})"))

    exit_code = 0
    if args.compare:
        try:
            previous = benchmod.latest_snapshot(args.bench_dir)
        except ValueError as exc:
            # Truncated/corrupt snapshot: a clean diagnostic, not a
            # traceback (the trajectory is versioned — restore or delete).
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if previous is None:
            print(f"[bench] no BENCH_<n>.json in {args.bench_dir!r} yet; "
                  f"nothing to compare against")
        else:
            import platform as platform_mod

            index, snapshot = previous
            rows, regressions = benchmod.compare_reports(
                report.to_json_dict()["benches"], snapshot.get("benches", {}),
                threshold=args.threshold,
                current_calibration=report.calibration_s,
                previous_calibration=snapshot.get("calibration_s"))
            print()
            print(format_table(
                rows, precision=6,
                title=f"vs BENCH_{index}.json "
                      f"(threshold {args.threshold:.0%}, "
                      f"calibration-scaled, recorded by repro "
                      f"{snapshot.get('repro_version', '?')})"))
            ratios = [row["ratio"] for row in rows
                      if row.get("ratio") is not None]
            if len(ratios) >= 3:
                drift = statistics.median(ratios)
                print(f"[bench] suite drift x{drift:.2f} vs snapshot "
                      f"(machine state; per-bench gate is drift-"
                      f"normalised)")
                if drift > 1.0 + args.threshold:
                    print(f"[bench] warning: the whole suite is "
                          f">{args.threshold:.0%} slower than the snapshot "
                          f"— machine drift or a global regression; "
                          f"re-check on a quiet machine", file=sys.stderr)
            if regressions:
                # The spin-loop calibration normalizes CPU-speed drift but
                # not allocator/interpreter differences, so a snapshot from
                # another interpreter or OS only warns instead of failing.
                same_env = (
                    snapshot.get("python") in (None,
                                               platform_mod.python_version())
                    and snapshot.get("platform") in (None,
                                                     platform_mod.platform()))
                # Identify the baseline alongside every regression line so
                # a failing CI log says exactly which build/machine recorded
                # the numbers being compared against.
                snapshot_env = (
                    f"git {str(snapshot.get('git_sha') or 'unknown')[:12]}, "
                    f"{snapshot.get('platform') or 'unknown platform'}")
                if same_env:
                    for name in regressions:
                        print(f"[bench] regression: {name} "
                              f"(vs BENCH_{index}.json @ {snapshot_env})",
                              file=sys.stderr)
                    print(f"[bench] {len(regressions)} regression(s): "
                          f"{', '.join(regressions)}", file=sys.stderr)
                    exit_code = 1
                else:
                    print(f"[bench] {len(regressions)} apparent "
                          f"regression(s) ({', '.join(regressions)}) vs a "
                          f"snapshot from a different python/platform "
                          f"({snapshot.get('python')}, "
                          f"{snapshot.get('platform')}, @ {snapshot_env}); "
                          f"not failing — re-record with `make bench` on "
                          f"this machine", file=sys.stderr)

    if not args.no_save:
        if exit_code:
            # Never let a regressed run become the next baseline — saving
            # it would make the following compare pass against the slower
            # numbers and self-mask the regression.
            print("[bench] regression detected; snapshot NOT saved",
                  file=sys.stderr)
        else:
            path = report.save(args.bench_dir)
            print(f"\n[wrote snapshot {path}]")
    return exit_code


def _cmd_cache(args: argparse.Namespace) -> int:
    """Cache lifecycle administration (stats/gc/compact/profiles)."""
    from .harness import cache_admin

    path = args.path or os.environ.get("REPRO_CACHE", "").strip() or None
    if path is None:
        print("error: no cache path given (pass PATH or set REPRO_CACHE)",
              file=sys.stderr)
        return 2
    try:
        if args.cache_command == "stats":
            stats = cache_admin.collect_stats(path)
            if not os.path.isdir(path):
                print(f"[cache] no cache directory at {path!r} yet "
                      f"(run a sweep with --cache to create one)")
            rows = stats.rows()
            if rows:
                _emit(rows, title=f"result cache {path}", csv_path=args.csv)
            print(f"[cache] {stats.summary()}")
            return 0
        if args.cache_command == "gc":
            report = cache_admin.gc_cache(
                path, purge_quarantine=args.purge_quarantine,
                dry_run=args.dry_run)
            print(f"[cache gc] {report.summary()}")
            return 0
        if args.cache_command == "compact":
            print(f"[cache compact] {cache_admin.compact_cache(path).summary()}")
            return 0
        if args.cache_command == "snapshot":
            info = cache_admin.snapshot_cache(path, args.name,
                                              force=args.force)
            print(f"[cache snapshot] saved profile {info.name!r}: "
                  f"{info.entries} entries in {info.shards} shard(s) "
                  f"under {os.path.join(path, cache_admin.PROFILES_DIR)}")
            return 0
        if args.cache_command == "rollback":
            print(f"[cache rollback] "
                  f"{cache_admin.rollback_cache(path, args.name).summary()}")
            return 0
        if args.cache_command == "profiles":
            if args.delete is not None:
                cache_admin.delete_profile(path, args.delete)
                print(f"[cache profiles] deleted profile {args.delete!r}")
                return 0
            profiles = cache_admin.list_profiles(path)
            if not profiles:
                print(f"[cache profiles] no profiles saved under {path!r}")
                return 0
            print(format_table([profile.as_row() for profile in profiles],
                               title=f"profiles of {path}"))
            return 0
    except cache_admin.CacheAdminError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 1  # pragma: no cover - argparse enforces the subcommand set


def _cmd_deployment(args: argparse.Namespace, session: Session) -> int:
    reports = deployment_comparison(args.architectures, session=session)
    print(format_table([r.as_row() for r in reports.values()],
                       title="Architecture deployment comparison"))
    # Deployments return a plain mapping, so a failed architecture
    # (on_error=skip/record) is simply absent — name the casualties.
    missing = [label for label in dict.fromkeys(args.architectures)
               if label not in reports]
    if missing:
        print(f"[{len(missing)} deployment(s) failed and were omitted: "
              f"{', '.join(missing)}]", file=sys.stderr)
    return 0


_COMMANDS = {
    "deployment": _cmd_deployment,
    "compare": _cmd_compare,
    "experiment": _cmd_experiment,
    "figure": _cmd_figure,
    "sweep": _cmd_sweep,
    "sensitivity": _cmd_sensitivity,
    "chaos": _cmd_chaos,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "table1":
        print(table1_text())
        return 0
    if args.command == "bench":
        # Benches time fixed workloads; they deliberately bypass the
        # execution-session machinery (no --jobs/--cache flags).
        return _cmd_bench(args)
    if args.command == "cache":
        # Admin commands operate on the cache directory itself; building
        # an execution session (and its ResultCache, which evicts and
        # quarantines on open) would defeat read-only inspection.
        return _cmd_cache(args)
    if args.command == "lint":
        # Static analysis reads source files, never runs simulations —
        # no session, no cache, and its own exit-code contract (0/1/2).
        return run_lint(args)
    handler = _COMMANDS.get(args.command)
    if handler is None:
        return 1
    # One session per invocation: CLI flags overlay REPRO_* env vars, and
    # leaving the block flushes any dirty cache shards.
    try:
        session = Session.from_args(args)
    except ValueError as exc:
        # Bad REPRO_* values deserve the same clean diagnostic as bad
        # flags (which argparse already rejects at parse time).
        print(f"error: {exc}", file=sys.stderr)
        return 2
    with session:
        return handler(args, session)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
