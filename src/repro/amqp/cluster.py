"""A three-node RabbitMQ-style broker cluster.

The paper deploys the streaming service as a three-server RabbitMQ cluster
with one server pod per DSN (anti-affinity), for all three architectures
(§4.3–§4.5).  The cluster presents a single logical messaging namespace:

* exchange/queue *metadata* is known cluster-wide,
* every classic queue has a single **leader** broker that holds its messages
  (we place leaders round-robin across brokers, as the Bitnami chart does),
* a client is connected to one broker; publishing to / consuming from a
  queue whose leader lives on a *different* broker costs an extra
  inter-broker hop across the DSN-to-DSN links — exactly the intra-cluster
  traffic RabbitMQ generates.

The cluster therefore needs the :class:`~repro.netsim.network.Network` to
resolve inter-broker routes.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from ..simkit import Environment, Monitor
from ..netsim.message import Message
from ..netsim.network import Network
from .broker import Broker
from .exchange import ExchangeType
from .policies import DEFAULT_QUEUE_POLICY, OverflowPolicy, QueuePolicy
from .queue import ClassicQueue, ConsumerHandle, PublishOutcome

__all__ = ["BrokerCluster"]


class BrokerCluster:
    """Cluster façade over several :class:`Broker` instances."""

    #: Pause before a failed consumer-side delivery is requeued, so
    #: redelivery retries against a down broker are paced instead of
    #: spinning at link latency (fault-injection path only).
    relay_retry_backoff_s = 0.01

    def __init__(self, env: Environment, name: str, brokers: list[Broker],
                 network: Network, *,
                 monitor: Optional[Monitor] = None) -> None:
        if not brokers:
            raise ValueError("a cluster needs at least one broker")
        self.env = env
        self.name = name
        self.brokers = list(brokers)
        self.network = network
        self.monitor = monitor or Monitor(f"cluster:{name}")
        # Per-message instrument, resolved by name exactly once.
        self._publishes_counter = self.monitor.counter("publishes")
        #: queue name -> leader broker
        self._queue_leaders: dict[str, Broker] = {}
        self._placement_cursor = 0
        self._client_cursor = 0

    # -- membership -----------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self.brokers)

    def broker_by_name(self, name: str) -> Broker:
        for broker in self.brokers:
            if broker.name == name:
                return broker
        raise KeyError(f"unknown broker {name!r}")

    def assign_client_broker(self) -> Broker:
        """Round-robin assignment of client connections to brokers."""
        broker = self.brokers[self._client_cursor % len(self.brokers)]
        self._client_cursor += 1
        return broker

    # -- declarations -----------------------------------------------------------
    def declare_exchange(self, name: str,
                         type: ExchangeType = ExchangeType.DIRECT) -> None:
        for broker in self.brokers:
            broker.declare_exchange(name, type)

    def declare_queue(self, name: str, *,
                      policy: QueuePolicy = DEFAULT_QUEUE_POLICY,
                      is_control: bool = False,
                      leader: Optional[Broker] = None) -> ClassicQueue:
        """Declare a queue cluster-wide, placing its leader on one broker."""
        existing = self._queue_leaders.get(name)
        if existing is not None:
            return existing.queues[name]
        if leader is None:
            leader = self.brokers[self._placement_cursor % len(self.brokers)]
            self._placement_cursor += 1
        queue = leader.declare_queue(name, policy=policy, is_control=is_control)
        self._queue_leaders[name] = leader
        # Queue metadata is replicated cluster-wide: the default exchange on
        # every broker can route to the queue by name, exactly as RabbitMQ
        # resolves cluster-remote queues.
        for broker in self.brokers:
            broker.exchanges[""].bind(name, name)
        return queue

    def bind_queue(self, exchange_name: str, queue_name: str,
                   binding_key: str = "") -> None:
        """Bind cluster-wide: every broker knows the routing table."""
        leader = self.queue_leader(queue_name)
        for broker in self.brokers:
            exchange = broker.declare_exchange(
                exchange_name, broker.exchanges[exchange_name].type
                if exchange_name in broker.exchanges else ExchangeType.DIRECT)
            exchange.bind(queue_name, binding_key)
        # Ensure the leader actually has the queue object (it does by
        # construction); other brokers only hold metadata.
        assert queue_name in leader.queues

    def queue_leader(self, queue_name: str) -> Broker:
        try:
            return self._queue_leaders[queue_name]
        except KeyError:
            raise KeyError(f"unknown queue {queue_name!r}") from None

    def get_queue(self, queue_name: str) -> ClassicQueue:
        return self.queue_leader(queue_name).queues[queue_name]

    def queues(self) -> list[str]:
        return sorted(self._queue_leaders)

    # -- failure state -----------------------------------------------------
    def kill_broker(self, broker: "Broker | str") -> list[str]:
        """Take a broker down and fail its queues over to the survivors.

        Models replicated classic queues: each queue led by the victim is
        re-leadered round-robin onto the live brokers (sorted queue-name
        order, so failover is deterministic) and its messages move with it.
        With no survivors the queues stay on the dead broker and publishes
        fail until :meth:`revive_broker`.  Returns the re-leadered queue
        names.
        """
        if isinstance(broker, str):
            broker = self.broker_by_name(broker)
        if not broker.up:
            return []
        broker.fail()
        survivors = [b for b in self.brokers if b.up]
        moved: list[str] = []
        if survivors:
            led = sorted(name for name, leader in self._queue_leaders.items()
                         if leader is broker)
            for offset, name in enumerate(led):
                new_leader = survivors[offset % len(survivors)]
                new_leader.queues[name] = broker.queues.pop(name)
                self._queue_leaders[name] = new_leader
                moved.append(name)
            if moved:
                self.monitor.count("failovers", float(len(moved)))
        return moved

    def revive_broker(self, broker: "Broker | str") -> None:
        """Bring a failed broker back (queues do not fail back)."""
        if isinstance(broker, str):
            broker = self.broker_by_name(broker)
        broker.recover()

    def _record_down_publish(self, leader_queues: list[str],
                             multiplicity: int,
                             outcomes: list[PublishOutcome]) -> None:
        """Requeue-or-record semantics for a publish whose destination
        broker is down, keyed per destination queue's overflow policy:
        reject-publish queues nack (the producer backs off and
        republishes), drop-head queues — lossy by contract — record the
        loss and let the producer proceed.  The queue object is re-resolved
        here: the kill that downed the broker may already have failed the
        queue over to a survivor while the relay was in flight (the
        producer's retry then lands on the new leader)."""
        for queue_name in leader_queues:
            queue = self._queue_leaders[queue_name].queues[queue_name]
            if queue.policy.overflow is OverflowPolicy.DROP_HEAD:
                outcomes.append(PublishOutcome(True, "broker-down-dropped",
                                               queue_name))
                self.monitor.count("dropped_broker_down", float(multiplicity))
            else:
                outcomes.append(PublishOutcome(False, "broker-down",
                                               queue_name))
                self.monitor.count("rejected_broker_down", float(multiplicity))

    # -- data plane -----------------------------------------------------------
    def _relay(self, src: Broker, dst: Broker, message: Message) -> Generator:
        """Move a message across the inter-broker (DSN to DSN) network.

        Returns ``True`` when the message reached ``dst``; ``False`` when
        the destination broker was down on arrival (the bytes crossed the
        wire, then died with the node — the mid-relay loss case the caller
        must resolve per queue policy).
        """
        if src is dst:
            return True
        route = self.network.route(src.host.name, dst.host.name)
        for element in route.links:
            yield from element.traverse(message)
        if not dst.up:
            self.monitor.count("relay_failures", float(message.multiplicity))
            return False
        # The destination host spends CPU receiving the relayed message.
        yield from dst.host.traverse(message)
        self.monitor.count("interbroker_messages", float(message.multiplicity))
        self.monitor.count("interbroker_bytes",
                           message.wire_bytes * message.multiplicity)
        return True

    def publish(self, entry_broker: Broker, message: Message,
                exchange_name: str, routing_key: str) -> Generator:
        """Simulation process: publish via ``entry_broker``.

        Routes on the entry broker's (cluster-wide) routing table, relays the
        message to the leader of each destination queue when needed, and
        returns the list of :class:`PublishOutcome`.
        """
        multiplicity = message.multiplicity
        if not entry_broker.up:
            # The client's broker is down: the publish is refused outright
            # (a dead node cannot even consult its routing table).  The
            # non-empty nack makes the producer back off and republish.
            self.monitor.count("entry_broker_down", float(multiplicity))
            return [PublishOutcome(False, "broker-down", "")]
        queue_names = entry_broker.route(exchange_name, routing_key)
        outcomes: list[PublishOutcome] = []
        # Entry-broker routing cost scales with the logical message count
        # (exact at multiplicity 1).
        yield self.env.timeout(entry_broker.publish_overhead_s * multiplicity)
        if not queue_names:
            self.monitor.count("unroutable")
            return outcomes
        # Group destination queues by their leader broker: RabbitMQ replicates
        # a published message to a cluster peer once, not once per queue, so a
        # fanout over many queues on the same node costs one relay.
        by_leader: dict[Broker, list[str]] = {}
        for queue_name in queue_names:
            leader = self._queue_leaders.get(queue_name)
            if leader is None:
                outcomes.append(PublishOutcome(False, "no-queue", queue_name))
                continue
            by_leader.setdefault(leader, []).append(queue_name)
        for leader, leader_queues in by_leader.items():
            if not leader.up:
                # Known-down leader: no relay is attempted (cluster
                # membership is shared state), resolve per queue policy.
                self._record_down_publish(leader_queues, multiplicity,
                                          outcomes)
                continue
            if leader is not entry_broker:
                delivered = yield from self._relay(entry_broker, leader,
                                                   message)
                if not delivered:
                    # The leader died mid-relay: the copy is lost on the
                    # floor of the dead node, resolve per queue policy.
                    self._record_down_publish(leader_queues, multiplicity,
                                              outcomes)
                    continue
            for queue_name in leader_queues:
                # Re-resolved after the relay's yields: a kill-and-revive
                # during the traversal may have failed the queue over even
                # though the destination is up again on arrival.
                current = self._queue_leaders[queue_name]
                queue = current.queues[queue_name]
                if not queue.is_control and current.memory_pressure():
                    outcomes.append(PublishOutcome(False, "memory-watermark", queue_name))
                    current.monitor.count("blocked_publishes", float(multiplicity))
                    continue
                outcomes.append(queue.publish(message))
        self._publishes_counter.value += float(multiplicity)
        return outcomes

    def subscribe(self, queue_name: str, tag: str,
                  deliver: Callable[[Message], Generator], *,
                  consumer_broker: Optional[Broker] = None,
                  prefetch: int = 0) -> ConsumerHandle:
        """Attach a consumer to a queue, inserting the relay hop if needed.

        ``deliver`` is the client-layer generator that carries a message from
        the *consumer's* broker to the consumer application.  If the queue
        leader is a different broker, the cluster wraps it so the message
        first crosses the inter-broker network.
        """
        leader = self.queue_leader(queue_name)
        queue = leader.queues[queue_name]
        if consumer_broker is None:
            return queue.subscribe(tag, deliver, prefetch=prefetch)

        def deliver_with_relay(message: Message,
                               _queue_name: str = queue_name,
                               _consumer_broker: Broker = consumer_broker):
            # The leader is looked up per delivery, not captured at
            # subscribe time: failover may have moved the queue since.
            current_leader = self._queue_leaders[_queue_name]
            if current_leader is not _consumer_broker:
                delivered = yield from self._relay(current_leader,
                                                   _consumer_broker, message)
                if not delivered:
                    # The consumer's broker is down: pace the retry, then
                    # return the delivery to the queue so it is redelivered
                    # (to this consumer after recovery, or to a peer).
                    yield self.env.timeout(self.relay_retry_backoff_s)
                    tag_ = message.headers.get("delivery_tag")
                    if tag_ is not None:
                        # Re-resolve: failover may have moved the queue
                        # while the relay was in flight.
                        self.get_queue(_queue_name).nack_requeue(tag_)
                    return
            yield from deliver(message)

        return queue.subscribe(tag, deliver_with_relay, prefetch=prefetch)

    def ack(self, queue_name: str, delivery_tag: int, *, multiple: bool = False) -> int:
        return self.get_queue(queue_name).ack(delivery_tag, multiple=multiple)

    # -- reporting -----------------------------------------------------------
    def total_depth(self) -> int:
        return sum(broker.queues[q].depth
                   for q, broker in self._queue_leaders.items())

    def describe(self) -> dict:
        return {
            "name": self.name,
            "brokers": [b.name for b in self.brokers],
            "queues": {q: leader.name for q, leader in self._queue_leaders.items()},
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<BrokerCluster {self.name} size={self.size} queues={len(self._queue_leaders)}>"
