"""RabbitMQ-like streaming service substrate.

Implements the messaging behaviour the paper configures on its three-node
RabbitMQ cluster: AMQP-style exchanges and bindings, classic queues with
``reject-publish`` overflow, per-consumer prefetch, batch acknowledgements,
publisher confirms, broker memory budgets and inter-broker relays.
"""

from .broker import Broker
from .client import ConsumerClient, ProducerClient
from .cluster import BrokerCluster
from .exchange import Binding, Exchange, ExchangeType
from .policies import (
    ACK_MODES,
    DEFAULT_ACK_POLICY,
    DEFAULT_MEMORY_POLICY,
    DEFAULT_QUEUE_POLICY,
    AckPolicy,
    MemoryPolicy,
    OverflowPolicy,
    QueuePolicy,
)
from .queue import ClassicQueue, ConsumerHandle, PublishOutcome

__all__ = [
    "Broker",
    "BrokerCluster",
    "ProducerClient",
    "ConsumerClient",
    "Exchange",
    "ExchangeType",
    "Binding",
    "ClassicQueue",
    "ConsumerHandle",
    "PublishOutcome",
    "AckPolicy",
    "ACK_MODES",
    "MemoryPolicy",
    "OverflowPolicy",
    "QueuePolicy",
    "DEFAULT_ACK_POLICY",
    "DEFAULT_MEMORY_POLICY",
    "DEFAULT_QUEUE_POLICY",
]
