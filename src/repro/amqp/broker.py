"""A single RabbitMQ-like broker node.

A :class:`Broker` is the messaging software running on one Data Streaming
Node: it owns exchanges and the queues whose *leader* lives on this node,
routes published messages to queues, and enforces the node-level memory
budget (80 % of RAM for payload queues, 20 % for control queues, §5.2).

CPU cost for moving bytes in and out of the broker host is accounted on the
data path (the host :class:`~repro.netsim.node.NetworkNode` is a stage of
every producer/consumer connection); the broker adds only the bookkeeping
costs that are specific to the messaging layer (routing, queue index
updates, optional durability write).
"""

from __future__ import annotations

from typing import Generator, Optional

from ..simkit import Environment, Monitor
from ..netsim.message import Message
from ..netsim.node import NetworkNode
from .exchange import Exchange, ExchangeType
from .policies import (
    DEFAULT_MEMORY_POLICY,
    DEFAULT_QUEUE_POLICY,
    MemoryPolicy,
    QueuePolicy,
)
from .queue import ClassicQueue, PublishOutcome

__all__ = ["Broker"]


class Broker:
    """The messaging software instance hosted on one DSN."""

    #: Fixed routing/bookkeeping cost per publish operation (s).
    publish_overhead_s = 30e-6
    #: Extra cost per publish when the destination queue is durable (s).
    durability_overhead_s = 50e-6

    def __init__(self, env: Environment, name: str, host: NetworkNode, *,
                 memory_policy: MemoryPolicy = DEFAULT_MEMORY_POLICY,
                 monitor: Optional[Monitor] = None) -> None:
        self.env = env
        self.name = name
        self.host = host
        self.memory_policy = memory_policy
        self.monitor = monitor or Monitor(f"broker:{name}")
        # Per-message instrument, resolved by name exactly once.
        self._publishes_counter = self.monitor.counter("publishes")
        self.exchanges: dict[str, Exchange] = {}
        self.queues: dict[str, ClassicQueue] = {}
        #: Fault-injection state: a down broker accepts no publishes and
        #: loses relayed messages (see :meth:`fail` / :meth:`recover` and
        #: :mod:`repro.faults`).
        self.up = True
        # Default exchange ("") routes directly to the queue named by the key.
        self.declare_exchange("", ExchangeType.DIRECT)

    # -- declarations -----------------------------------------------------
    def declare_exchange(self, name: str,
                         type: ExchangeType = ExchangeType.DIRECT) -> Exchange:
        exchange = self.exchanges.get(name)
        if exchange is None:
            exchange = Exchange(name, type)
            self.exchanges[name] = exchange
        elif exchange.type is not type:
            raise ValueError(
                f"exchange {name!r} already declared as {exchange.type.value}")
        return exchange

    def declare_queue(self, name: str, *,
                      policy: QueuePolicy = DEFAULT_QUEUE_POLICY,
                      is_control: bool = False) -> ClassicQueue:
        queue = self.queues.get(name)
        if queue is None:
            queue = ClassicQueue(self.env, name, policy=policy,
                                 is_control=is_control)
            self.queues[name] = queue
            # The default exchange binds every queue by its own name.
            self.exchanges[""].bind(queue, name)
        return queue

    def bind_queue(self, exchange_name: str, queue_name: str,
                   binding_key: str = "") -> None:
        exchange = self.exchanges[exchange_name]
        queue = self.queues[queue_name]
        exchange.bind(queue, binding_key)

    # -- failure state -----------------------------------------------------
    def fail(self) -> None:
        """Take this broker down (fault injection / chaos sweeps)."""
        if self.up:
            self.up = False
            self.monitor.count("failures")

    def recover(self) -> None:
        """Bring this broker back up after a failure."""
        if not self.up:
            self.up = True
            self.monitor.count("recoveries")

    # -- memory accounting --------------------------------------------------
    def memory_used(self, *, control: bool = False) -> float:
        # Queue insertion order is scenario-config order (deterministic),
        # and re-sorting here would change float summation order and break
        # byte-identity with the committed goldens.
        return sum(q.ready_bytes for q in self.queues.values()  # repro: allow[D004]
                   if q.is_control == control)

    def memory_available(self, *, control: bool = False) -> float:
        return self.memory_policy.budget_for(control) - self.memory_used(control=control)

    def memory_pressure(self) -> bool:
        """True when the payload-queue budget is exhausted."""
        return self.memory_available(control=False) <= 0

    # -- data plane -----------------------------------------------------------
    def route(self, exchange_name: str, routing_key: str) -> list[str]:
        exchange = self.exchanges.get(exchange_name)
        if exchange is None:
            raise KeyError(f"unknown exchange {exchange_name!r}")
        return exchange.route(routing_key)

    def publish_local(self, message: Message, exchange_name: str,
                      routing_key: str) -> Generator:
        """Simulation process: route and enqueue a message on this broker.

        Returns the list of :class:`PublishOutcome` (one per matched queue);
        an empty list means the routing key matched no queue (the AMQP
        'unroutable' case).
        """
        # Routing/bookkeeping cost scales with the logical message count: an
        # aggregate publish of multiplicity K pays K publish operations'
        # worth of broker CPU (exact at K=1).
        multiplicity = message.multiplicity
        overhead = self.publish_overhead_s * multiplicity
        queue_names = self.route(exchange_name, routing_key)
        outcomes: list[PublishOutcome] = []
        for queue_name in queue_names:
            queue = self.queues.get(queue_name)
            if queue is None:
                continue
            if queue.policy.durable:
                overhead += self.durability_overhead_s * multiplicity
            if not queue.is_control and self.memory_pressure():
                outcomes.append(PublishOutcome(False, "memory-watermark", queue_name))
                self.monitor.count("blocked_publishes", float(multiplicity))
                continue
            outcomes.append(queue.publish(message))
        yield self.env.timeout(overhead)
        self._publishes_counter.value += float(multiplicity)
        if not queue_names:
            self.monitor.count("unroutable")
        return outcomes

    # -- reporting -----------------------------------------------------------
    def queue_depths(self) -> dict[str, int]:
        return {name: queue.depth for name, queue in self.queues.items()}

    def describe(self) -> dict:
        return {
            "name": self.name,
            "host": self.host.name,
            "exchanges": sorted(self.exchanges),
            "queues": sorted(self.queues),
            "memory_used_bytes": self.memory_used(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Broker {self.name} host={self.host.name} queues={len(self.queues)}>"
