"""Classic queues: bounded FIFO message buffers with consumer dispatch.

A :class:`ClassicQueue` mirrors the behaviour the paper configures in §5.2:

* a bounded in-memory buffer with an overflow policy (``reject-publish`` so
  producers observe backpressure, or ``drop-head``),
* round-robin dispatch of ready messages to the attached consumers ("messages
  are pushed to consumers in a round-robin fashion as they become available
  in the queue"),
* per-consumer prefetch credit (unacknowledged-delivery window) and
  cumulative (batch) acknowledgements,
* byte-level accounting so the broker can enforce its 80/20 memory split.

Delivery itself (moving the message across the network to the consumer) is
delegated to the consumer's *deliver function*, a generator supplied at
subscription time by the client layer; the queue only decides *when* and *to
whom* a message goes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Generator, Optional

from ..simkit import Environment, Monitor
from ..netsim.message import Message
from .policies import DEFAULT_QUEUE_POLICY, OverflowPolicy, QueuePolicy

__all__ = ["ConsumerHandle", "PublishOutcome", "ClassicQueue"]


@dataclass
class PublishOutcome:
    """Result of offering a message to a queue."""

    accepted: bool
    reason: str = ""
    queue: str = ""


@dataclass
class ConsumerHandle:
    """A consumer subscription attached to a queue."""

    tag: str
    #: Generator factory that moves one message to the consumer (network
    #: traversal + mailbox put).  Called by the queue's dispatcher.
    deliver: Callable[[Message], Generator]
    #: Maximum unacknowledged deliveries (0 = unlimited).
    prefetch: int = 0
    outstanding: int = 0
    delivered: int = 0
    acked: int = 0
    #: Delivery tags not yet acknowledged, in delivery order.
    unacked_tags: deque = field(default_factory=deque)
    active: bool = True

    def has_credit(self) -> bool:
        return self.active and (self.prefetch == 0 or self.outstanding < self.prefetch)


class ClassicQueue:
    """A RabbitMQ-style classic queue."""

    def __init__(self, env: Environment, name: str, *,
                 policy: QueuePolicy = DEFAULT_QUEUE_POLICY,
                 is_control: bool = False,
                 monitor: Optional[Monitor] = None) -> None:
        self.env = env
        self.name = name
        self.policy = policy
        self.is_control = is_control
        self.monitor = monitor or Monitor(f"queue:{name}")
        # Per-message instruments, resolved by name exactly once.
        self._published_counter = self.monitor.counter("published")
        self._delivered_counter = self.monitor.counter("delivered")
        self._depth_series = self.monitor.timeseries("depth")
        self._ready: deque[Message] = deque()
        self._ready_bytes = 0.0
        # Logical (multiplicity-weighted) message counts.  An aggregate
        # message of multiplicity K occupies K slots of ``max_length`` and
        # counts as K ready/unacked messages; at multiplicity 1 these equal
        # the structural deque/dict lengths exactly.
        self._ready_messages = 0
        self._unacked_messages = 0
        self._consumers: dict[str, ConsumerHandle] = {}
        self._rr_order: deque[str] = deque()
        self._next_delivery_tag = 1
        self._unacked: dict[int, tuple[str, Message]] = {}
        self._wakeup = env.event()
        self._dispatcher = env.process(self._dispatch_loop(),
                                       name=f"dispatch:{name}")
        self.published = 0
        self.rejected = 0
        self.delivered = 0
        self.acked = 0

    # -- publishing -----------------------------------------------------------
    @property
    def ready_count(self) -> int:
        """Logical ready messages (multiplicity-weighted)."""
        return self._ready_messages

    @property
    def ready_bytes(self) -> float:
        return self._ready_bytes

    @property
    def unacked_count(self) -> int:
        """Logical unacknowledged messages (multiplicity-weighted)."""
        return self._unacked_messages

    @property
    def depth(self) -> int:
        """Ready plus unacknowledged messages (RabbitMQ's 'messages' count)."""
        return self.ready_count + self.unacked_count

    def publish(self, message: Message) -> PublishOutcome:
        """Offer a message to the queue, applying the overflow policy.

        Bounds and counters are applied in logical units: an aggregate
        message of multiplicity K takes K slots of ``max_length`` and K
        messages' worth of bytes, so population runs see the same
        backpressure a fleet of discrete clients would.
        """
        multiplicity = message.multiplicity
        incoming_bytes = message.payload_bytes * multiplicity
        if not self.policy.accepts(self._ready_messages, self._ready_bytes,
                                   incoming_bytes, multiplicity):
            if self.policy.overflow is OverflowPolicy.REJECT_PUBLISH:
                self.rejected += multiplicity
                self.monitor.count("rejected", float(multiplicity))
                return PublishOutcome(False, "queue-full", self.name)
            # drop-head: evict the oldest ready message to make room.
            if self._ready:
                victim = self._ready.popleft()
                self._ready_bytes -= victim.payload_bytes * victim.multiplicity
                self._ready_messages -= victim.multiplicity
                self.monitor.count("dropped", float(victim.multiplicity))
        self._ready.append(message)
        self._ready_bytes += incoming_bytes
        self._ready_messages += multiplicity
        self.published += multiplicity
        now = self.env.now
        message.published_at = now
        self._published_counter.value += float(multiplicity)
        self._depth_series.record(now, self._ready_messages + self._unacked_messages)
        self._notify()
        return PublishOutcome(True, "", self.name)

    # -- consuming -----------------------------------------------------------
    def subscribe(self, tag: str, deliver: Callable[[Message], Generator], *,
                  prefetch: int = 0) -> ConsumerHandle:
        if tag in self._consumers:
            raise ValueError(f"consumer tag {tag!r} already subscribed to {self.name!r}")
        handle = ConsumerHandle(tag=tag, deliver=deliver, prefetch=prefetch)
        self._consumers[tag] = handle
        self._rr_order.append(tag)
        self._notify()
        return handle

    def cancel(self, tag: str, *, requeue: bool = False) -> int:
        """Detach a consumer; optionally requeue its unacked deliveries.

        ``requeue=True`` is the churn/failover path: every delivery the
        consumer had in flight goes back to the *head* of the queue (in
        original order) so the surviving consumers pick the work up —
        at-least-once semantics, like AMQP's basic.cancel + connection
        loss.  Returns the number of logical messages requeued.
        """
        handle = self._consumers.pop(tag, None)
        if handle is None:
            return 0
        handle.active = False
        try:
            self._rr_order.remove(tag)
        except ValueError:
            pass
        requeued = 0
        if requeue:
            # appendleft in reverse delivery order restores queue order.
            for delivery_tag in reversed(list(handle.unacked_tags)):
                entry = self._unacked.pop(delivery_tag, None)
                if entry is None:
                    continue
                _, message = entry
                self._ready.appendleft(message)
                self._ready_bytes += message.payload_bytes * message.multiplicity
                self._ready_messages += message.multiplicity
                self._unacked_messages -= message.multiplicity
                requeued += message.multiplicity
            handle.unacked_tags.clear()
            handle.outstanding = 0
            if requeued:
                self.monitor.count("requeued", float(requeued))
                self._notify()
        return requeued

    @property
    def consumer_count(self) -> int:
        return len(self._consumers)

    def ack(self, delivery_tag: int, *, multiple: bool = False) -> int:
        """Acknowledge a delivery (cumulatively if ``multiple``).

        Returns the number of deliveries settled.
        """
        if multiple:
            tags = sorted(t for t in self._unacked if t <= delivery_tag)
        else:
            tags = [delivery_tag] if delivery_tag in self._unacked else []
        settled_logical = 0
        for tag in tags:
            consumer_tag, message = self._unacked.pop(tag)
            handle = self._consumers.get(consumer_tag)
            if handle is not None:
                handle.outstanding = max(0, handle.outstanding - 1)
                handle.acked += 1
                try:
                    handle.unacked_tags.remove(tag)
                except ValueError:
                    pass
            self.acked += message.multiplicity
            self._unacked_messages -= message.multiplicity
            settled_logical += message.multiplicity
        if tags:
            self.monitor.count("acked", float(settled_logical))
            self._notify()
        return len(tags)

    def nack_requeue(self, delivery_tag: int) -> bool:
        """Return an unacknowledged delivery to the head of the queue."""
        entry = self._unacked.pop(delivery_tag, None)
        if entry is None:
            return False
        consumer_tag, message = entry
        handle = self._consumers.get(consumer_tag)
        if handle is not None:
            handle.outstanding = max(0, handle.outstanding - 1)
            try:
                handle.unacked_tags.remove(delivery_tag)
            except ValueError:
                pass
        self._ready.appendleft(message)
        self._ready_bytes += message.payload_bytes * message.multiplicity
        self._ready_messages += message.multiplicity
        self._unacked_messages -= message.multiplicity
        self.monitor.count("requeued", float(message.multiplicity))
        self._notify()
        return True

    # -- dispatch -----------------------------------------------------------
    def _notify(self) -> None:
        if not self._wakeup.triggered:
            self._wakeup.succeed()

    def _next_consumer_with_credit(self) -> Optional[ConsumerHandle]:
        for _ in range(len(self._rr_order)):
            tag = self._rr_order[0]
            self._rr_order.rotate(-1)
            handle = self._consumers.get(tag)
            if handle is not None and handle.has_credit():
                return handle
        return None

    def _dispatch_loop(self) -> Generator:
        while True:
            handle = self._next_consumer_with_credit() if self._ready else None
            if not self._ready or handle is None:
                # Nothing to do until a publish, subscribe or ack happens.
                yield self._wakeup
                self._wakeup = self.env.event()
                continue
            message = self._ready.popleft()
            multiplicity = message.multiplicity
            self._ready_bytes -= message.payload_bytes * multiplicity
            self._ready_messages -= multiplicity
            self._unacked_messages += multiplicity
            delivery_tag = self._next_delivery_tag
            self._next_delivery_tag = delivery_tag + 1
            # Prefetch credit stays in aggregate-delivery units: one
            # aggregate delivery represents one in-flight message per
            # population member, so per-consumer windows apply unchanged.
            handle.outstanding += 1
            handle.delivered += 1
            handle.unacked_tags.append(delivery_tag)
            self._unacked[delivery_tag] = (handle.tag, message)
            self.delivered += multiplicity
            message.headers["delivery_tag"] = delivery_tag
            message.headers["consumer_tag"] = handle.tag
            message.headers["queue"] = self.name
            self._delivered_counter.value += float(multiplicity)
            # Deliveries pipeline: each runs as its own process so a slow
            # consumer path does not head-of-line block the queue.
            self.env.process(handle.deliver(message),
                             name=f"deliver:{self.name}:{delivery_tag}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<ClassicQueue {self.name!r} ready={self.ready_count} "
                f"unacked={self.unacked_count} consumers={self.consumer_count}>")
