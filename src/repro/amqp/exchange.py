"""AMQP 0-9-1 style exchanges and bindings.

The three messaging patterns of the paper map onto the three classic
exchange types:

* *work sharing* — producers publish to a **direct** exchange whose routing
  key names one of the shared work queues,
* *work sharing with feedback* — requests as above, replies published to a
  direct exchange routed to the per-producer reply queue,
* *broadcast and gather* — a **fanout** exchange copies every request to one
  queue per consumer (pub-sub), and the replies flow back through another
  fanout/direct exchange consumed by the single producer.

A small **topic** exchange is included for completeness (used by some
control-plane traffic and exercised in the tests), matching ``*`` and ``#``
wildcards the way RabbitMQ does.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .queue import ClassicQueue

__all__ = ["ExchangeType", "Binding", "Exchange"]


class ExchangeType(enum.Enum):
    DIRECT = "direct"
    FANOUT = "fanout"
    TOPIC = "topic"


@dataclass(frozen=True)
class Binding:
    """A binding from an exchange to a queue with a binding key."""

    queue_name: str
    binding_key: str = ""


def _topic_matches(binding_key: str, routing_key: str) -> bool:
    """RabbitMQ-style topic match: ``*`` = one word, ``#`` = zero or more."""
    pattern = binding_key.split(".")
    words = routing_key.split(".")

    def match(p_idx: int, w_idx: int) -> bool:
        while True:
            if p_idx == len(pattern):
                return w_idx == len(words)
            token = pattern[p_idx]
            if token == "#":
                if p_idx == len(pattern) - 1:
                    return True
                # '#' may swallow zero or more words.
                for skip in range(len(words) - w_idx + 1):
                    if match(p_idx + 1, w_idx + skip):
                        return True
                return False
            if w_idx == len(words):
                return False
            if token != "*" and token != words[w_idx]:
                return False
            p_idx += 1
            w_idx += 1

    return match(0, 0)


class Exchange:
    """Routes published messages to bound queues by routing key."""

    def __init__(self, name: str, type: ExchangeType = ExchangeType.DIRECT) -> None:
        self.name = name
        self.type = type
        self._bindings: list[Binding] = []

    def bind(self, queue: "ClassicQueue | str", binding_key: str = "") -> Binding:
        queue_name = queue if isinstance(queue, str) else queue.name
        binding = Binding(queue_name, binding_key)
        if binding in self._bindings:
            return binding
        self._bindings.append(binding)
        return binding

    def unbind(self, queue: "ClassicQueue | str", binding_key: str = "") -> None:
        queue_name = queue if isinstance(queue, str) else queue.name
        self._bindings = [b for b in self._bindings
                          if not (b.queue_name == queue_name and b.binding_key == binding_key)]

    @property
    def bindings(self) -> list[Binding]:
        return list(self._bindings)

    def route(self, routing_key: str) -> list[str]:
        """Names of queues a message with ``routing_key`` is copied to."""
        if self.type is ExchangeType.FANOUT:
            # Fanout ignores the routing key entirely.
            seen: list[str] = []
            for binding in self._bindings:
                if binding.queue_name not in seen:
                    seen.append(binding.queue_name)
            return seen
        if self.type is ExchangeType.DIRECT:
            return [b.queue_name for b in self._bindings
                    if b.binding_key == routing_key]
        # TOPIC
        matched: list[str] = []
        for binding in self._bindings:
            if _topic_matches(binding.binding_key, routing_key):
                if binding.queue_name not in matched:
                    matched.append(binding.queue_name)
        return matched

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Exchange {self.name!r} {self.type.value} bindings={len(self._bindings)}>"
