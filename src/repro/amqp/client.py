"""AMQP client façade: producers and consumers as seen by applications.

These classes play the role of the ``amqp091-go`` client library used by the
paper's Go simulator: they hide connection management, publisher confirms,
prefetch credit and batch acknowledgements behind a small API that the
harness' producer/consumer processes drive.

* :class:`ProducerClient.publish` sends one message: it traverses the
  producer-side network path (its :class:`~repro.netsim.connection.Connection`),
  asks the cluster to route/enqueue it, honours ``reject-publish``
  backpressure by backing off and republishing, and pays a confirm
  round-trip every ``publisher_batch`` messages.
* :class:`ConsumerClient` subscribes to queues.  The queue dispatcher calls
  the client's *deliver* generator, which carries the message across the
  consumer-side network path and deposits it in the client's mailbox; the
  application then takes messages out of the mailbox and acknowledges them
  (cumulatively every ``consumer_batch`` messages).
"""

from __future__ import annotations

import itertools
from typing import Generator, Optional

from ..simkit import Environment, Monitor, Store
from ..netsim.connection import Connection
from ..netsim.link import Link
from ..netsim.message import Message
from .broker import Broker
from .cluster import BrokerCluster
from .policies import DEFAULT_ACK_POLICY, AckPolicy

__all__ = ["ProducerClient", "ConsumerClient"]

_consumer_tags = itertools.count()


def _path_rtt(connection: Connection) -> float:
    """Round-trip propagation estimate along a connection (for ack/confirm)."""
    one_way = sum(stage.latency_s for stage in connection.stages
                  if isinstance(stage, Link))
    return 2.0 * one_way


class ProducerClient:
    """Publishing side of the streaming service."""

    def __init__(self, env: Environment, name: str, *,
                 cluster: BrokerCluster,
                 connection: Connection,
                 broker: Optional[Broker] = None,
                 ack_policy: AckPolicy = DEFAULT_ACK_POLICY,
                 reject_backoff_s: float = 0.005,
                 max_retries: int = 50) -> None:
        self.env = env
        self.name = name
        self.cluster = cluster
        self.connection = connection
        self.broker = broker or cluster.assign_client_broker()
        self.ack_policy = ack_policy
        self.reject_backoff_s = float(reject_backoff_s)
        self.max_retries = int(max_retries)
        self.monitor = Monitor(f"producer:{name}")
        # Per-message instrument, resolved by name exactly once.
        self._published_counter = self.monitor.counter("published")
        self._unconfirmed = 0
        self.published = 0
        self.rejected = 0

    def publish(self, message: Message, *, exchange: str = "",
                routing_key: Optional[str] = None) -> Generator:
        """Simulation process: publish one message (with retry on reject).

        Returns ``True`` if the message was eventually accepted by every
        destination queue, ``False`` if retries were exhausted or the message
        was unroutable.
        """
        key = routing_key if routing_key is not None else message.routing_key
        message.routing_key = key
        attempts = 0
        while True:
            attempts += 1
            yield from self.connection.send(message)
            outcomes = yield from self.cluster.publish(
                self.broker, message, exchange, key)
            accepted = bool(outcomes) and all(o.accepted for o in outcomes)
            if accepted:
                break
            self.rejected += message.multiplicity
            self.monitor.count("rejected", float(message.multiplicity))
            if not outcomes:
                # Unroutable: retrying will not help.
                return False
            if attempts > self.max_retries:
                self.monitor.count("dropped")
                return False
            # Backpressure: wait and republish (reject-publish semantics).
            yield self.env.timeout(self.reject_backoff_s * min(attempts, 10))

        # Published counts are logical (multiplicity-weighted); the confirm
        # window stays in aggregate sends, because one aggregate publish is
        # one outstanding message per represented client — every client in
        # the population hits its per-client batch threshold simultaneously
        # and their confirms share the same round trip.
        self.published += message.multiplicity
        self._published_counter.value += float(message.multiplicity)
        self._unconfirmed += 1
        if (self.ack_policy.effective_publisher_batch
                and self._unconfirmed >= self.ack_policy.effective_publisher_batch):
            # Wait for the cumulative publisher confirm round trip.
            yield self.env.timeout(_path_rtt(self.connection))
            self._unconfirmed = 0
            self.monitor.count("confirm_batches")
        return True

    def flush_confirms(self) -> Generator:
        """Wait for confirms of any trailing unconfirmed messages."""
        if self._unconfirmed and self.ack_policy.mode != "fire_and_forget":
            yield self.env.timeout(_path_rtt(self.connection))
            self._unconfirmed = 0
            self.monitor.count("confirm_batches")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ProducerClient {self.name} broker={self.broker.name}>"


class ConsumerClient:
    """Consuming side of the streaming service."""

    def __init__(self, env: Environment, name: str, *,
                 cluster: BrokerCluster,
                 connection: Connection,
                 broker: Optional[Broker] = None,
                 ack_policy: AckPolicy = DEFAULT_ACK_POLICY) -> None:
        self.env = env
        self.name = name
        self.cluster = cluster
        self.connection = connection
        self.broker = broker or cluster.assign_client_broker()
        self.ack_policy = ack_policy
        self.monitor = Monitor(f"consumer:{name}")
        # Per-message instruments, resolved by name exactly once.
        self._received_counter = self.monitor.counter("received")
        self._bytes_counter = self.monitor.counter("bytes")
        self.mailbox: Store = Store(env)
        self.received = 0
        self._pending_acks: dict[str, list[int]] = {}
        self.subscriptions: list[str] = []
        #: Live consumer tags by queue name (removed while suspended).
        self._active_tags: dict[str, str] = {}
        #: Desired subscriptions (queue -> prefetch credit); the resume
        #: path re-attaches whatever churn suspended.
        self._desired_prefetch: dict[str, int] = {}

    # -- subscription -----------------------------------------------------------
    def _deliver(self, message: Message) -> Generator:
        """Carry one message from this client's broker to the application."""
        yield from self.connection.send(message)
        message.consumed_at = self.env.now
        message.headers["consumer"] = self.name
        # Logical counts: an aggregate delivery stands for one message per
        # population member (exact at multiplicity 1).
        self.received += message.multiplicity
        self._received_counter.value += float(message.multiplicity)
        self._bytes_counter.value += message.wire_bytes * message.multiplicity
        yield self.mailbox.put(message)

    def subscribe(self, queue_name: str, *, prefetch: Optional[int] = None) -> str:
        """Attach this consumer to a queue; returns the consumer tag."""
        credit = self.ack_policy.prefetch_count if prefetch is None else prefetch
        tag = self._attach(queue_name, credit)
        self.subscriptions.append(queue_name)
        self._desired_prefetch[queue_name] = credit
        self.monitor.count("subscriptions")
        return tag

    def _attach(self, queue_name: str, credit: int) -> str:
        tag = f"{self.name}-ctag-{next(_consumer_tags)}"
        self.cluster.subscribe(queue_name, tag, self._deliver,
                               consumer_broker=self.broker, prefetch=credit)
        self._active_tags[queue_name] = tag
        return tag

    # -- churn (fault injection) ---------------------------------------------
    def suspend(self) -> int:
        """Cancel every active subscription, requeueing unacked deliveries.

        The consumer-churn fault path: the client drops off the queues as
        if its connection died, and its in-flight deliveries go back for
        the surviving consumers.  Returns the logical messages requeued.
        """
        requeued = 0
        for queue_name in sorted(self._active_tags):
            tag = self._active_tags.pop(queue_name)
            requeued += self.cluster.get_queue(queue_name).cancel(
                tag, requeue=True)
        self.monitor.count("churn_suspends")
        return requeued

    def resume(self) -> int:
        """Re-attach every subscription dropped by :meth:`suspend`.

        Fresh consumer tags, original prefetch credit.  Returns the number
        of subscriptions restored.
        """
        restored = 0
        for queue_name in sorted(self._desired_prefetch):
            if queue_name not in self._active_tags:
                self._attach(queue_name, self._desired_prefetch[queue_name])
                restored += 1
        if restored:
            self.monitor.count("churn_resumes")
        return restored

    # -- application API -----------------------------------------------------------
    def get(self):
        """Event: the next message placed in this client's mailbox."""
        return self.mailbox.get()

    def ack(self, message: Message) -> Generator:
        """Simulation process: acknowledge a delivery (batched).

        Cumulative acks are sent every ``consumer_batch`` deliveries; each
        batch costs one ack round trip on the consumer connection.
        """
        queue_name = message.headers.get("queue")
        delivery_tag = message.headers.get("delivery_tag")
        if queue_name is None or delivery_tag is None:
            return 0
        pending = self._pending_acks.setdefault(queue_name, [])
        pending.append(delivery_tag)
        if len(pending) < max(1, self.ack_policy.effective_consumer_batch):
            return 0
        settled = yield from self._send_ack(queue_name, max(pending))
        pending.clear()
        return settled

    def flush_acks(self) -> Generator:
        """Acknowledge any deliveries still pending in the batch buffers."""
        total = 0
        for queue_name, pending in self._pending_acks.items():
            if pending:
                total += yield from self._send_ack(queue_name, max(pending))
                pending.clear()
        return total

    def _send_ack(self, queue_name: str, up_to_tag: int) -> Generator:
        yield self.env.timeout(_path_rtt(self.connection) / 2.0)
        settled = self.cluster.ack(queue_name, up_to_tag, multiple=True)
        self.monitor.count("ack_batches")
        self.monitor.count("acked", settled)
        return settled

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ConsumerClient {self.name} broker={self.broker.name}>"
