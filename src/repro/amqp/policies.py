"""Queue and memory policies for the RabbitMQ-like streaming service.

Mirrors the configuration used in §5.2 of the paper:

* classic queues that retain a bounded number of messages in memory,
* overflow policy ``reject-publish`` so producers see backpressure and can
  republish,
* 80 % of broker RAM reserved for data payload queues, the remaining 20 %
  for control/management queues,
* batch-wise producer (publisher confirms) and consumer acknowledgements.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = [
    "OverflowPolicy",
    "QueuePolicy",
    "MemoryPolicy",
    "AckPolicy",
    "ACK_MODES",
    "DEFAULT_QUEUE_POLICY",
    "DEFAULT_MEMORY_POLICY",
    "DEFAULT_ACK_POLICY",
]


class OverflowPolicy(enum.Enum):
    """What a classic queue does when it is full."""

    #: Reject the publish (producer receives a nack and may republish).
    REJECT_PUBLISH = "reject-publish"
    #: Silently drop the oldest message to make room.
    DROP_HEAD = "drop-head"


@dataclass(frozen=True)
class QueuePolicy:
    """Per-queue limits and overflow behaviour."""

    #: Maximum number of ready messages held by the queue (0 = unlimited).
    max_length: int = 0
    #: Maximum total payload bytes held by the queue (0 = unlimited).
    max_length_bytes: float = 0.0
    overflow: OverflowPolicy = OverflowPolicy.REJECT_PUBLISH
    #: Whether messages survive broker restarts (affects publish cost).
    durable: bool = False

    def accepts(self, current_length: int, current_bytes: float,
                incoming_bytes: float, incoming_count: int = 1) -> bool:
        """Whether a queue currently within these limits can take a message.

        ``incoming_count`` is the number of logical messages the publish
        stands for (the message's multiplicity); aggregate-client publishes
        consume that many slots of ``max_length`` at once.
        """
        if self.max_length and current_length + incoming_count > self.max_length:
            return False
        if self.max_length_bytes and current_bytes + incoming_bytes > self.max_length_bytes:
            return False
        return True


@dataclass(frozen=True)
class MemoryPolicy:
    """Broker-wide memory budget split between data and control queues."""

    #: Total RAM configured for the broker node (bytes); §4.3 uses 32 GiB.
    total_bytes: float = 32 * 1024 ** 3
    #: Fraction reserved for data payload queues (§5.2: 80 %).
    data_fraction: float = 0.80
    #: High watermark above which publishes are blocked (RabbitMQ default 0.4
    #: of system RAM; here relative to the configured total).
    high_watermark: float = 1.0

    @property
    def data_bytes(self) -> float:
        return self.total_bytes * self.data_fraction

    @property
    def control_bytes(self) -> float:
        return self.total_bytes * (1.0 - self.data_fraction)

    def budget_for(self, is_control: bool) -> float:
        return self.control_bytes if is_control else self.data_bytes


#: Acknowledgement modes understood by :class:`AckPolicy`.
ACK_MODES = ("batch", "per_message", "fire_and_forget")


@dataclass(frozen=True)
class AckPolicy:
    """Batch acknowledgement settings (§5.2).

    ``mode`` selects how the batch sizes are interpreted (a sweepable knob
    for the ack-policy sensitivity studies):

    * ``"batch"`` — the paper's configuration: batch sizes apply as given.
    * ``"per_message"`` — every publish waits for its confirm and every
      delivery is acknowledged individually (effective batches of 1).
    * ``"fire_and_forget"`` — producers never wait for publisher confirms
      (effective publisher batch of 0); consumer acks batch as configured.
    """

    #: Consumer sends one cumulative ack per this many deliveries.
    consumer_batch: int = 10
    #: Producer waits for confirms after this many publishes (0 = never).
    publisher_batch: int = 10
    #: Unlimited prefetch when 0; otherwise max unacked deliveries/consumer.
    prefetch_count: int = 100
    #: How the batch settings are applied; see the class docstring.
    mode: str = "batch"

    def __post_init__(self) -> None:
        if self.mode not in ACK_MODES:
            raise ValueError(f"unknown ack mode {self.mode!r}; "
                             f"expected one of {ACK_MODES}")

    @property
    def effective_consumer_batch(self) -> int:
        return 1 if self.mode == "per_message" else self.consumer_batch

    @property
    def effective_publisher_batch(self) -> int:
        if self.mode == "per_message":
            return 1
        if self.mode == "fire_and_forget":
            return 0
        return self.publisher_batch


DEFAULT_QUEUE_POLICY = QueuePolicy(max_length=10_000)
DEFAULT_MEMORY_POLICY = MemoryPolicy()
DEFAULT_ACK_POLICY = AckPolicy()
