"""Deterministic random-number streams for reproducible simulations.

Every experiment run takes a single integer seed.  Components (producers,
consumers, links, brokers, proxies) derive their own independent streams from
that seed and a stable component name, so adding or removing one component
never perturbs the random draws of the others.  This is what makes the
figure-regeneration benches reproducible bit-for-bit across runs.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RandomStreams", "BatchedUniform", "derive_seed"]


def derive_seed(root_seed: int, *names: str | int) -> int:
    """Derive a 63-bit child seed from a root seed and a component path.

    The derivation hashes the textual path so it is stable across Python
    versions and process invocations (unlike ``hash()``).
    """
    key = ":".join([str(root_seed), *map(str, names)]).encode()
    digest = hashlib.sha256(key).digest()
    return int.from_bytes(digest[:8], "little") & 0x7FFF_FFFF_FFFF_FFFF


class BatchedUniform:
    """Amortised uniform draws from one shared :class:`numpy.random.Generator`.

    Scalar ``Generator.uniform`` calls cost microseconds each; drawing raw
    unit doubles in batches and scaling them is an order of magnitude
    cheaper per draw.  ``uniform(low, high)`` returns bit-identical values
    in the same global order as scalar calls on the wrapped generator
    (``low + (high - low) * next_double`` is exactly numpy's computation),
    so components sharing one stream — e.g. every link's jitter draw —
    can batch without perturbing reproducibility.
    """

    __slots__ = ("_rng", "_batch", "_buf", "_idx")

    def __init__(self, rng: np.random.Generator, batch: int = 512) -> None:
        if batch < 1:
            raise ValueError("batch must be >= 1")
        self._rng = rng
        self._batch = int(batch)
        self._buf: np.ndarray = np.empty(0)
        self._idx = 0

    def uniform(self, low: float, high: float) -> float:
        """One sample from ``U[low, high)``, refilling the batch as needed."""
        idx = self._idx
        buf = self._buf
        if idx >= len(buf):
            buf = self._buf = self._rng.random(size=self._batch)
            idx = 0
        self._idx = idx + 1
        return low + (high - low) * buf[idx]


class RandomStreams:
    """Factory of named, independent :class:`numpy.random.Generator` streams."""

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = int(root_seed)
        self._streams: dict[tuple, np.random.Generator] = {}

    def stream(self, *names: str | int) -> np.random.Generator:
        """Return (and cache) the generator for a component path."""
        key = tuple(names)
        gen = self._streams.get(key)
        if gen is None:
            gen = np.random.default_rng(derive_seed(self.root_seed, *names))
            self._streams[key] = gen
        return gen

    def spawn(self, *names: str | int) -> "RandomStreams":
        """Create a child factory rooted at a sub-path."""
        return RandomStreams(derive_seed(self.root_seed, *names))

    def uniform(self, low: float, high: float, *names: str | int) -> float:
        return float(self.stream(*names).uniform(low, high))

    def exponential(self, mean: float, *names: str | int) -> float:
        return float(self.stream(*names).exponential(mean))

    def normal(self, mean: float, std: float, *names: str | int) -> float:
        return float(self.stream(*names).normal(mean, std))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<RandomStreams root_seed={self.root_seed}>"
