"""Exception types used by the :mod:`repro.simkit` discrete-event engine.

The engine deliberately keeps its error taxonomy small: scheduling errors
(attempting to schedule into the past, running a finished environment),
process control errors (interrupting a dead process), and the special
:class:`Interrupt` exception that is thrown *into* a process generator when
another process interrupts it.
"""

from __future__ import annotations

__all__ = [
    "SimkitError",
    "SchedulingError",
    "StopSimulation",
    "Interrupt",
    "ResourceError",
]


class SimkitError(Exception):
    """Base class for all simulation-engine errors."""


class SchedulingError(SimkitError):
    """Raised when an event is scheduled incorrectly.

    Typical causes: a negative delay, triggering an already-triggered event,
    or resuming an environment whose event queue is corrupted.
    """


class StopSimulation(SimkitError):
    """Internal control-flow exception used by :meth:`Environment.run`.

    Raised when the ``until`` event of a run triggers; user code should never
    need to catch it.
    """

    def __init__(self, value: object = None) -> None:
        super().__init__(value)
        self.value = value


class Interrupt(SimkitError):
    """Thrown into a process when :meth:`Process.interrupt` is called.

    The ``cause`` attribute carries the object passed to ``interrupt`` so the
    interrupted process can decide how to react (e.g. a proxy shutting down a
    connection vs. a timeout firing).
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> object:
        return self.args[0]


class ResourceError(SimkitError):
    """Raised for invalid resource operations (e.g. releasing twice)."""
