"""Core of the discrete-event simulation engine.

This module implements a small, dependency-free, generator-based
discrete-event simulation kernel in the style of SimPy.  Simulated
"processes" are Python generator functions that ``yield`` events; the
:class:`Environment` advances simulated time by popping the next scheduled
event from a heap and resuming every process waiting on it.

The engine is the substrate on which the whole reproduction is built: network
links, AMQP brokers, SciStream proxies, load balancers, producers and
consumers are all simkit processes exchanging events.

Design notes
------------
* Time is a ``float`` in simulated seconds.  The engine never interprets the
  unit; higher layers (``repro.netsim.units``) provide conversion helpers.
* Events are triggered at most once.  Triggering schedules all registered
  callbacks at the trigger time.
* A :class:`Process` is itself an event that succeeds with the generator's
  return value (or fails with the exception that escaped it), so processes
  can wait for each other simply by yielding the other process.
* ``AnyOf`` / ``AllOf`` condition events support the common "wait for
  whichever happens first" and "barrier" idioms.

Hot-path layout
---------------
Every simulated message costs tens of kernel events, so the event plumbing
is aggressively specialised:

* **Single-callback slot** — most events ever have exactly one waiter (the
  process that yielded them), so :class:`Event` stores the first callback in
  a scalar ``_callback`` slot and only lazily upgrades to a ``_callbacks``
  list when a second waiter registers.  The legacy ``callbacks`` property
  materialises the list view for cold-path introspection.
* **Zero-delay FIFO lanes** — ``succeed()``/``fail()`` and zero timeouts
  schedule *at the current instant*, so they bypass the time heap entirely
  and go onto plain per-priority deques.  :meth:`Environment.step` merges
  the heap and the lanes by the exact ``(time, priority, eid)`` key, so
  event ordering is bit-identical to an all-heap schedule.
* **Timeout freelist** — processed value-less timeouts are recycled by
  :meth:`Environment.step` and reused by :meth:`Environment.timeout`
  instead of being reallocated.  A yielded timeout must therefore not be
  re-inspected after it has been processed; timeouts watched by a
  :class:`Condition`, carrying a value, or passed to ``run(until=...)`` are
  pinned and never recycled.
* **Plain-int event counter** — the scheduling tiebreaker is a plain
  integer incremented inline rather than ``itertools.count``.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Generator, Iterable
from heapq import heappop, heappush
from typing import Any, Optional

from .errors import Interrupt, SchedulingError, SimkitError, StopSimulation

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Condition",
    "AllOf",
    "AnyOf",
    "PENDING",
]


class _PendingType:
    """Sentinel for an event value that has not been decided yet."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<PENDING>"


#: Sentinel used as the value of untriggered events.
PENDING = _PendingType()


class _ProcessedType:
    """Sentinel stored in ``Event._callback`` once the event has been
    processed (its callbacks have run)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<PROCESSED>"


_PROCESSED = _ProcessedType()

#: Priority used for ordering simultaneous events: urgent events (process
#: resumption bookkeeping) run before normal ones.
URGENT = 0
NORMAL = 1

#: Upper bound on recycled Timeout objects kept per environment.
_TIMEOUT_FREELIST_MAX = 128


class Event:
    """An event that may happen at some point in simulated time.

    An event has three states: *pending* (created, not yet triggered),
    *triggered* (scheduled to happen at a given time) and *processed* (its
    callbacks have run).  An event carries a value once triggered: a normal
    value for success, an exception instance for failure.
    """

    __slots__ = ("env", "_callback", "_callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: First registered callback (or ``_PROCESSED`` once processed).
        self._callback: Any = None
        #: Overflow list used once a second callback registers.
        self._callbacks: Optional[list[Callable[["Event"], None]]] = None
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        self._defused = False

    # -- callback management ----------------------------------------------
    @property
    def callbacks(self) -> Optional[list[Callable[["Event"], None]]]:
        """Callbacks run when the event is processed; ``None`` once processed.

        Accessing this upgrades the single-callback fast path to a real
        list, so it is for cold-path/introspection use only — hot code goes
        through :meth:`add_callback` / the internal slots.
        """
        cb = self._callback
        if cb is _PROCESSED:
            return None
        if self._callbacks is None:
            self._callbacks = [] if cb is None else [cb]
            self._callback = None
        return self._callbacks

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback`` to run when this event is processed."""
        cb = self._callback
        if cb is None:
            callbacks = self._callbacks
            if callbacks is None:
                self._callback = callback
            else:
                callbacks.append(callback)
        elif cb is _PROCESSED:
            raise SchedulingError(
                f"cannot add a callback to the processed event {self!r}")
        else:
            self._callbacks = [cb, callback]
            self._callback = None

    def remove_callback(self, callback: Callable[["Event"], None]) -> None:
        """Deregister ``callback`` if present (no-op otherwise)."""
        cb = self._callback
        if cb is _PROCESSED:
            return
        if self._callbacks is not None:
            try:
                self._callbacks.remove(callback)
            except ValueError:
                pass
        elif cb == callback:
            self._callback = None

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to occur."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have been executed."""
        return self._callback is _PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise AttributeError(f"value of {self!r} is not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The value of the event (or the exception if it failed)."""
        if self._value is PENDING:
            raise AttributeError(f"value of {self!r} is not yet available")
        return self._value

    def defused(self) -> bool:
        """Whether a failure of this event has been handled by someone."""
        return self._defused

    def defuse(self) -> None:
        """Mark the failure as handled so the environment does not re-raise."""
        self._defused = True

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise SchedulingError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        env = self.env
        eid = env._eid
        env._eid = eid + 1
        env._lane_normal.append((eid, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not PENDING:
            raise SchedulingError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        env = self.env
        eid = env._eid
        env._eid = eid + 1
        env._lane_normal.append((eid, self))
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another (for chaining)."""
        if event._value is PENDING:
            raise SchedulingError(
                f"cannot chain from {event!r}: it has not been triggered")
        if self._value is not PENDING:
            raise SchedulingError(f"{self!r} has already been triggered")
        self._ok = event._ok
        self._value = event._value
        self.env._schedule(self, NORMAL)

    # -- misc -------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        status = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {status} at 0x{id(self):x}>"


class Timeout(Event):
    """An event that triggers automatically after a delay."""

    __slots__ = ("delay", "_reusable")

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SchedulingError(f"negative delay {delay}")
        # Timeouts are the hottest allocation in the engine (one per yielded
        # delay), so the base initializer is inlined here.
        self.env = env
        self._callback = None
        self._callbacks = None
        self._defused = False
        self.delay = delay
        self._ok = True
        self._value = value
        # Only value-less timeouts are eligible for freelist recycling: a
        # reused timeout's value is overwritten, and conditions / run(until=)
        # pin theirs via _pin() below.
        self._reusable = value is None
        eid = env._eid
        env._eid = eid + 1
        if delay:
            heappush(env._queue, (env._now + delay, NORMAL, eid, self))
        else:
            env._lane_normal.append((eid, self))

    def _pin(self) -> None:
        """Exclude this timeout from freelist recycling."""
        self._reusable = False


class Initialize(Event):
    """Internal event that starts a newly created :class:`Process`."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        self.env = env
        self._callback = process._resume_cb
        self._callbacks = None
        self._defused = False
        self._ok = True
        self._value = None
        eid = env._eid
        env._eid = eid + 1
        env._lane_urgent.append((eid, self))


class Process(Event):
    """A simulated process wrapping a generator of events.

    The process itself is an event: it triggers when the generator returns
    (succeeds with the return value) or raises (fails with the exception).
    """

    __slots__ = ("_generator", "_send", "_throw", "_target", "_resume_cb",
                 "name")

    def __init__(self, env: "Environment",
                 generator: Generator[Event, Any, Any],
                 name: str | None = None) -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._send = generator.send
        self._throw = generator.throw
        #: The event this process is currently waiting on.
        self._target: Optional[Event] = None
        #: The resume callback bound once, not per suspension.
        self._resume_cb = self._resume
        self.name = name or getattr(generator, "__name__", "process")
        Initialize(env, self)

    @property
    def target(self) -> Optional[Event]:
        """The event the process is currently waiting for (if any)."""
        return self._target

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw an :class:`Interrupt` into the process.

        Interrupting a finished process is an error; interrupting a process
        that is about to be resumed is allowed and the interrupt wins.
        """
        if self._value is not PENDING:
            raise SimkitError("cannot interrupt a terminated process")
        if self._target is self:
            raise SimkitError("a process cannot interrupt itself")
        # Deliver as an urgent event so the interrupt arrives before any
        # normal event scheduled at the same time.
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True
        event._callback = self._resume_cb
        self.env._schedule(event, URGENT)
        # Detach from the event we were waiting on so its normal completion
        # no longer resumes us.
        target = self._target
        if target is not None and target._callback is not _PROCESSED:
            target.remove_callback(self._resume_cb)
            self._target = None

    # -- engine internals --------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Resume the generator with the value (or exception) of ``event``."""
        env = self.env
        env._active_proc = self
        send = self._send
        while True:
            try:
                if event._ok:
                    next_event = send(event._value)
                else:
                    # The exception is being handed to the process, which
                    # counts as handling it.
                    event._defused = True
                    next_event = self._throw(event._value)
            except StopIteration as exc:
                # Process finished successfully.
                self._ok = True
                self._value = exc.value
                env._schedule(self, NORMAL)
                break
            except BaseException as exc:  # noqa: BLE001 - deliberate
                # Process died; propagate through the process event.
                self._ok = False
                self._value = exc
                env._schedule(self, NORMAL)
                break

            if next_event is None:
                # Allow ``yield None`` as "yield control for zero time".
                next_event = env.timeout(0)
            try:
                cb = next_event._callback
            except AttributeError:
                exc = RuntimeError(
                    f"process {self.name!r} yielded a non-event: {next_event!r}")
                event = Event(env)
                event._ok = False
                event._value = exc
                continue
            if cb is not _PROCESSED:
                # Event not yet processed: register and suspend.
                self._target = next_event
                if cb is None and next_event._callbacks is None:
                    next_event._callback = self._resume_cb
                else:
                    next_event.add_callback(self._resume_cb)
                break
            # Event already processed: continue immediately with its value.
            event = next_event

        env._active_proc = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Process {self.name!r} at 0x{id(self):x}>"


class Condition(Event):
    """An event that triggers when a condition over child events holds."""

    __slots__ = ("_events", "_evaluate", "_count", "_threshold")

    def __init__(self, env: "Environment",
                 evaluate: Callable[[list[Event], int], bool],
                 events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        self._evaluate = evaluate
        self._count = 0
        # Fast path for the two canonical conditions: a triggered-count
        # threshold avoids calling out to ``evaluate`` on every child event.
        if evaluate is Condition.all_events:
            self._threshold: Optional[int] = len(self._events)
        elif evaluate is Condition.any_event:
            self._threshold = 1
        else:
            self._threshold = None

        # Validate the whole list before attaching any callback so a
        # mixed-environment error leaves no orphaned registrations behind.
        for event in self._events:
            if event.env is not env:
                raise ValueError("events from different environments")

        if not self._events:
            self.succeed(self._collect_values())
            return

        check = self._check
        for event in self._events:
            # The condition reads child values at trigger time, which may be
            # long after the child was processed — keep watched timeouts out
            # of the recycling freelist.
            if isinstance(event, Timeout):
                event._pin()
            if event._callback is _PROCESSED:
                check(event)
            else:
                event.add_callback(check)

    def _collect_values(self) -> dict[Event, Any]:
        """Values of all triggered (successful) child events, in order."""
        return {e: e._value for e in self._events
                if e._value is not PENDING and e._ok}

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            return
        self._count += 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        threshold = self._threshold
        if (self._count >= threshold if threshold is not None
                else self._evaluate(self._events, self._count)):
            self.succeed(self._collect_values())

    @staticmethod
    def all_events(events: list[Event], count: int) -> bool:
        return len(events) == count

    @staticmethod
    def any_event(events: list[Event], count: int) -> bool:
        return count > 0 or not events


class AllOf(Condition):
    """Triggers once *all* of the given events have triggered."""

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Triggers once *any* of the given events has triggered."""

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.any_event, events)


class Environment:
    """Execution environment for a discrete-event simulation.

    The environment owns the event heap, the zero-delay FIFO lanes and the
    simulation clock.  It offers factory helpers (:meth:`event`,
    :meth:`timeout`, :meth:`process`) so user code rarely needs to
    instantiate event classes directly.
    """

    __slots__ = ("_now", "_queue", "_lane_urgent", "_lane_normal", "_eid",
                 "_active_proc", "_timeout_free")

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        #: Time heap for events scheduled with a positive delay.
        self._queue: list[tuple[float, int, int, Event]] = []
        #: Zero-delay lanes: events scheduled *at* the current instant, in
        #: eid order, one deque per priority.  Entries are ``(eid, event)``.
        self._lane_urgent: deque[tuple[int, Event]] = deque()
        self._lane_normal: deque[tuple[int, Event]] = deque()
        self._eid = 0
        self._active_proc: Optional[Process] = None
        #: Recycled value-less Timeout objects (see Environment.timeout).
        self._timeout_free: list[Timeout] = []

    # -- clock -------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_proc

    # -- event factories ----------------------------------------------------
    def event(self) -> Event:
        """Create a new pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers after ``delay`` simulated seconds.

        Value-less timeouts are recycled: once processed, the object may be
        reused by a later ``timeout()`` call, so do not hold on to a yielded
        timeout past its processing.
        """
        if value is None and delay >= 0:
            free = self._timeout_free
            if free:
                # Recycled timeouts were value-less and cannot have failed,
                # so _value is still None, _defused still False and
                # _callbacks still None; only the processed marker and the
                # delay need refreshing.
                timeout = free.pop()
                timeout._callback = None
                timeout.delay = delay
                eid = self._eid
                self._eid = eid + 1
                if delay:
                    heappush(self._queue,
                             (self._now + delay, NORMAL, eid, timeout))
                else:
                    self._lane_normal.append((eid, timeout))
                return timeout
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any],
                name: str | None = None) -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: Event, priority: int, delay: float = 0.0) -> None:
        eid = self._eid
        self._eid = eid + 1
        if delay:
            heappush(self._queue, (self._now + delay, priority, eid, event))
        elif priority:
            self._lane_normal.append((eid, event))
        else:
            self._lane_urgent.append((eid, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if self._lane_urgent or self._lane_normal:
            return self._now
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next scheduled event.

        Raises :class:`IndexError` if the queue is empty, and re-raises the
        exception of any failed event that nobody defused (i.e. a crashed
        process that no other process was waiting on).

        The next event is the smallest ``(time, priority, eid)`` key across
        the time heap and the two zero-delay lanes; lane entries always
        carry the current time, so this is a three-way ordered merge.
        """
        event = None
        lane = self._lane_urgent
        if lane:
            queue = self._queue
            if queue:
                head = queue[0]
                # The heap wins only with an urgent entry at the current
                # instant that was scheduled before the lane's head.
                if (head[1] == URGENT and head[0] == self._now
                        and head[2] < lane[0][0]):
                    self._now, _prio, _eid, event = heappop(queue)
            if event is None:
                event = lane.popleft()[1]
        else:
            lane = self._lane_normal
            if lane:
                queue = self._queue
                if queue:
                    head = queue[0]
                    if head[0] == self._now and (head[1] == URGENT
                                                 or head[2] < lane[0][0]):
                        self._now, _prio, _eid, event = heappop(queue)
                if event is None:
                    event = lane.popleft()[1]
            else:
                self._now, _prio, _eid, event = heappop(self._queue)

        callback = event._callback
        event._callback = _PROCESSED
        if callback is not None:
            callback(event)
        else:
            callbacks = event._callbacks
            if callbacks is not None:
                event._callbacks = None
                for callback in callbacks:
                    callback(event)

        if event._ok is False and not event._defused:
            # An unhandled failure: surface it to the caller of run()/step().
            exc = event._value
            raise exc

        if type(event) is Timeout and event._reusable:
            free = self._timeout_free
            if len(free) < _TIMEOUT_FREELIST_MAX:
                free.append(event)

    def run(self, until: float | Event | None = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until the event queue drains), a number
        (run until that simulated time) or an :class:`Event` (run until it
        triggers, returning its value).
        """
        until_event: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                until_event = until
                if until_event._callback is _PROCESSED:
                    return until_event._value
                if isinstance(until_event, Timeout):
                    until_event._pin()
                until_event.add_callback(_stop_simulation)
            else:
                at = float(until)
                if at < self._now:
                    raise SchedulingError(
                        f"until={at} lies before the current time {self._now}")
                stop = Event(self)
                stop._ok = True
                stop._value = None
                stop._callback = _stop_simulation
                self._schedule(stop, URGENT, at - self._now)

        # The drain loop is step() inlined: one Python call per event is the
        # single biggest fixed cost of the engine, so the three-way
        # heap/lane merge and the callback dispatch are repeated here with
        # the queue structures held in locals.  Keep both copies in sync.
        queue = self._queue
        lane_urgent = self._lane_urgent
        lane_normal = self._lane_normal
        free = self._timeout_free
        pop = heappop
        processed = _PROCESSED
        timeout_cls = Timeout
        free_max = _TIMEOUT_FREELIST_MAX
        try:
            while True:
                event = None
                if lane_urgent:
                    if queue:
                        head = queue[0]
                        if (head[1] == URGENT and head[0] == self._now
                                and head[2] < lane_urgent[0][0]):
                            self._now, _prio, _eid, event = pop(queue)
                    if event is None:
                        event = lane_urgent.popleft()[1]
                elif lane_normal:
                    if queue:
                        head = queue[0]
                        if head[0] == self._now and (head[1] == URGENT
                                                     or head[2] < lane_normal[0][0]):
                            self._now, _prio, _eid, event = pop(queue)
                    if event is None:
                        event = lane_normal.popleft()[1]
                elif queue:
                    self._now, _prio, _eid, event = pop(queue)
                else:
                    break

                callback = event._callback
                event._callback = processed
                if callback is not None:
                    callback(event)
                else:
                    callbacks = event._callbacks
                    if callbacks is not None:
                        event._callbacks = None
                        for callback in callbacks:
                            callback(event)

                if type(event) is timeout_cls:
                    # Timeouts always succeed, so the unhandled-failure
                    # check is skipped and eligible ones are recycled.
                    if event._reusable and len(free) < free_max:
                        free.append(event)
                elif event._ok is False and not event._defused:
                    raise event._value
        except StopSimulation as stop:
            return stop.value
        if until_event is not None and not until_event.triggered:
            raise RuntimeError(
                "run(until=event) finished but the event never triggered")
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        queued = (len(self._queue) + len(self._lane_urgent)
                  + len(self._lane_normal))
        return f"<Environment t={self._now:.6f} queued={queued}>"


def _stop_simulation(event: Event) -> None:
    """Callback that aborts :meth:`Environment.run` with the event's value."""
    if event._ok is False:
        event._defused = True
        raise event._value
    raise StopSimulation(event._value)
