"""Core of the discrete-event simulation engine.

This module implements a small, dependency-free, generator-based
discrete-event simulation kernel in the style of SimPy.  Simulated
"processes" are Python generator functions that ``yield`` events; the
:class:`Environment` advances simulated time by popping the next scheduled
event from a heap and resuming every process waiting on it.

The engine is the substrate on which the whole reproduction is built: network
links, AMQP brokers, SciStream proxies, load balancers, producers and
consumers are all simkit processes exchanging events.

Design notes
------------
* Time is a ``float`` in simulated seconds.  The engine never interprets the
  unit; higher layers (``repro.netsim.units``) provide conversion helpers.
* Events are triggered at most once.  Triggering schedules all registered
  callbacks at the trigger time.
* A :class:`Process` is itself an event that succeeds with the generator's
  return value (or fails with the exception that escaped it), so processes
  can wait for each other simply by yielding the other process.
* ``AnyOf`` / ``AllOf`` condition events support the common "wait for
  whichever happens first" and "barrier" idioms.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Generator, Iterable
from heapq import heappop, heappush
from typing import Any, Optional

from .errors import Interrupt, SchedulingError, SimkitError, StopSimulation

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Condition",
    "AllOf",
    "AnyOf",
    "PENDING",
]


class _PendingType:
    """Sentinel for an event value that has not been decided yet."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<PENDING>"


#: Sentinel used as the value of untriggered events.
PENDING = _PendingType()

#: Priority used for ordering simultaneous events: urgent events (process
#: resumption bookkeeping) run before normal ones.
URGENT = 0
NORMAL = 1


class Event:
    """An event that may happen at some point in simulated time.

    An event has three states: *pending* (created, not yet triggered),
    *triggered* (scheduled to happen at a given time) and *processed* (its
    callbacks have run).  An event carries a value once triggered: a normal
    value for success, an exception instance for failure.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: Callbacks run when the event is processed.  ``None`` once processed.
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        self._defused = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to occur."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise AttributeError(f"value of {self!r} is not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The value of the event (or the exception if it failed)."""
        if self._value is PENDING:
            raise AttributeError(f"value of {self!r} is not yet available")
        return self._value

    def defused(self) -> bool:
        """Whether a failure of this event has been handled by someone."""
        return self._defused

    def defuse(self) -> None:
        """Mark the failure as handled so the environment does not re-raise."""
        self._defused = True

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise SchedulingError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self, NORMAL)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not PENDING:
            raise SchedulingError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.env._schedule(self, NORMAL)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another (for chaining)."""
        self._ok = event._ok
        self._value = event._value
        self.env._schedule(self, NORMAL)

    # -- misc -------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        status = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {status} at 0x{id(self):x}>"


class Timeout(Event):
    """An event that triggers automatically after a delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SchedulingError(f"negative delay {delay}")
        # Timeouts are the hottest allocation in the engine (one per yielded
        # delay), so the base initializer is inlined here.
        self.env = env
        self.callbacks = []
        self._defused = False
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, NORMAL, delay)


class Initialize(Event):
    """Internal event that starts a newly created :class:`Process`."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self.callbacks.append(process._resume)
        self._ok = True
        self._value = None
        env._schedule(self, URGENT)


class Process(Event):
    """A simulated process wrapping a generator of events.

    The process itself is an event: it triggers when the generator returns
    (succeeds with the return value) or raises (fails with the exception).
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, env: "Environment",
                 generator: Generator[Event, Any, Any],
                 name: str | None = None) -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        #: The event this process is currently waiting on.
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        Initialize(env, self)

    @property
    def target(self) -> Optional[Event]:
        """The event the process is currently waiting for (if any)."""
        return self._target

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw an :class:`Interrupt` into the process.

        Interrupting a finished process is an error; interrupting a process
        that is about to be resumed is allowed and the interrupt wins.
        """
        if self._value is not PENDING:
            raise SimkitError("cannot interrupt a terminated process")
        if self._target is self:
            raise SimkitError("a process cannot interrupt itself")
        # Deliver as an urgent event so the interrupt arrives before any
        # normal event scheduled at the same time.
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True
        event.callbacks.append(self._resume)
        self.env._schedule(event, URGENT)
        # Detach from the event we were waiting on so its normal completion
        # no longer resumes us.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:  # already detached
                pass
            self._target = None

    # -- engine internals --------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Resume the generator with the value (or exception) of ``event``."""
        self.env._active_proc = self
        generator = self._generator
        while True:
            try:
                if event._ok:
                    next_event = generator.send(event._value)
                else:
                    # The exception is being handed to the process, which
                    # counts as handling it.
                    event._defused = True
                    exc = event._value
                    next_event = generator.throw(exc)
            except StopIteration as exc:
                # Process finished successfully.
                self._ok = True
                self._value = exc.value
                self.env._schedule(self, NORMAL)
                break
            except BaseException as exc:  # noqa: BLE001 - deliberate
                # Process died; propagate through the process event.
                self._ok = False
                self._value = exc
                self.env._schedule(self, NORMAL)
                break

            if next_event is None:
                # Allow ``yield None`` as "yield control for zero time".
                next_event = Timeout(self.env, 0)
            if not isinstance(next_event, Event):
                exc = RuntimeError(
                    f"process {self.name!r} yielded a non-event: {next_event!r}")
                event = Event(self.env)
                event._ok = False
                event._value = exc
                continue

            if next_event.callbacks is not None:
                # Event not yet processed: register and suspend.
                self._target = next_event
                next_event.callbacks.append(self._resume)
                break
            # Event already processed: continue immediately with its value.
            event = next_event

        self.env._active_proc = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Process {self.name!r} at 0x{id(self):x}>"


class Condition(Event):
    """An event that triggers when a condition over child events holds."""

    __slots__ = ("_events", "_evaluate", "_count", "_threshold")

    def __init__(self, env: "Environment",
                 evaluate: Callable[[list[Event], int], bool],
                 events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        self._evaluate = evaluate
        self._count = 0
        # Fast path for the two canonical conditions: a triggered-count
        # threshold avoids calling out to ``evaluate`` on every child event.
        if evaluate is Condition.all_events:
            self._threshold: Optional[int] = len(self._events)
        elif evaluate is Condition.any_event:
            self._threshold = 1
        else:
            self._threshold = None

        # Validate the whole list before attaching any callback so a
        # mixed-environment error leaves no orphaned registrations behind.
        for event in self._events:
            if event.env is not env:
                raise ValueError("events from different environments")

        if not self._events:
            self.succeed(self._collect_values())
            return

        check = self._check
        for event in self._events:
            if event.callbacks is None:
                check(event)
            else:
                event.callbacks.append(check)

    def _collect_values(self) -> dict[Event, Any]:
        """Values of all triggered (successful) child events, in order."""
        return {e: e._value for e in self._events
                if e._value is not PENDING and e._ok}

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            return
        self._count += 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        threshold = self._threshold
        if (self._count >= threshold if threshold is not None
                else self._evaluate(self._events, self._count)):
            self.succeed(self._collect_values())

    @staticmethod
    def all_events(events: list[Event], count: int) -> bool:
        return len(events) == count

    @staticmethod
    def any_event(events: list[Event], count: int) -> bool:
        return count > 0 or not events


class AllOf(Condition):
    """Triggers once *all* of the given events have triggered."""

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Triggers once *any* of the given events has triggered."""

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.any_event, events)


class Environment:
    """Execution environment for a discrete-event simulation.

    The environment owns the event heap and the simulation clock.  It offers
    factory helpers (:meth:`event`, :meth:`timeout`, :meth:`process`) so user
    code rarely needs to instantiate event classes directly.
    """

    __slots__ = ("_now", "_queue", "_eid", "_active_proc")

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._eid = itertools.count()
        self._active_proc: Optional[Process] = None

    # -- clock -------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_proc

    # -- event factories ----------------------------------------------------
    def event(self) -> Event:
        """Create a new pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers after ``delay`` simulated seconds."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any],
                name: str | None = None) -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: Event, priority: int, delay: float = 0.0) -> None:
        heappush(self._queue,
                 (self._now + delay, priority, next(self._eid), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next scheduled event.

        Raises :class:`IndexError` if the queue is empty, and re-raises the
        exception of any failed event that nobody defused (i.e. a crashed
        process that no other process was waiting on).
        """
        self._now, _prio, _eid, event = heappop(self._queue)

        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)

        if event._ok is False and not event._defused:
            # An unhandled failure: surface it to the caller of run()/step().
            exc = event._value
            raise exc

    def run(self, until: float | Event | None = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until the event queue drains), a number
        (run until that simulated time) or an :class:`Event` (run until it
        triggers, returning its value).
        """
        until_event: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                until_event = until
                if until_event.callbacks is None:
                    return until_event._value
                until_event.callbacks.append(_stop_simulation)
            else:
                at = float(until)
                if at < self._now:
                    raise SchedulingError(
                        f"until={at} lies before the current time {self._now}")
                stop = Event(self)
                stop._ok = True
                stop._value = None
                stop.callbacks.append(_stop_simulation)
                self._schedule(stop, URGENT, at - self._now)

        try:
            step = self.step
            queue = self._queue
            while queue:
                step()
        except StopSimulation as stop:
            return stop.value
        if until_event is not None and not until_event.triggered:
            raise RuntimeError(
                "run(until=event) finished but the event never triggered")
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Environment t={self._now:.6f} queued={len(self._queue)}>"


def _stop_simulation(event: Event) -> None:
    """Callback that aborts :meth:`Environment.run` with the event's value."""
    if event._ok is False:
        event._defused = True
        raise event._value
    raise StopSimulation(event._value)
