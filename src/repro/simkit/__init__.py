"""A small, dependency-free discrete-event simulation engine.

``repro.simkit`` provides the generator-based simulation kernel on top of
which the whole cross-facility streaming reproduction is built: simulated
time, processes, shared resources, object stores, deterministic random
streams and measurement monitors.

Quick example::

    from repro.simkit import Environment

    def ping(env, period):
        while True:
            yield env.timeout(period)
            print("ping at", env.now)

    env = Environment()
    env.process(ping(env, 1.0))
    env.run(until=3.5)
"""

from .core import AllOf, AnyOf, Condition, Environment, Event, Process, Timeout
from .errors import Interrupt, ResourceError, SchedulingError, SimkitError
from .monitor import Counter, Monitor, TimeSeries
from .rand import BatchedUniform, RandomStreams, derive_seed
from .resources import (
    Container,
    FilterStore,
    PriorityResource,
    Resource,
    Store,
)

__all__ = [
    "Environment",
    "Event",
    "Process",
    "Timeout",
    "Condition",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimkitError",
    "SchedulingError",
    "ResourceError",
    "Resource",
    "PriorityResource",
    "Container",
    "Store",
    "FilterStore",
    "Counter",
    "TimeSeries",
    "Monitor",
    "RandomStreams",
    "BatchedUniform",
    "derive_seed",
]
