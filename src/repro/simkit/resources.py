"""Shared-resource primitives for the discrete-event engine.

These model the contention points in the streaming system:

* :class:`Resource` — a counted resource with FIFO queuing.  Used for
  connection slots on proxies, broker channel concurrency, CPU slots on
  load balancers / ingress controllers.
* :class:`PriorityResource` — same, but requests carry a priority (control
  traffic can pre-empt queue position over bulk data).
* :class:`Container` — a continuous quantity (bytes of queue memory).
* :class:`Store` / :class:`FilterStore` — object stores used for message
  queues and mailbox-style communication between simulated processes.

All ``request``/``get``/``put`` operations return events that a process must
``yield``; releasing is immediate.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Optional

from .core import Environment, Event
from .errors import ResourceError

__all__ = [
    "Request",
    "Release",
    "Resource",
    "PriorityResource",
    "Container",
    "Store",
    "FilterStore",
    "StorePut",
    "StoreGet",
]


class Request(Event):
    """A pending request for one unit of a :class:`Resource`.

    Usable as a context manager inside a process::

        with resource.request() as req:
            yield req
            ... hold the resource ...
        # released automatically
    """

    __slots__ = ("resource", "proc")

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        self.proc = resource.env.active_process
        resource._do_request(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # The context-manager exit is the hot release path: skip the
        # confirmation Release event (nobody can observe it here).
        resource = self.resource
        resource._do_release(self)
        resource._trigger_waiters()

    def cancel(self) -> None:
        """Withdraw a request that has not been granted yet."""
        self.resource._cancel(self)


class PriorityRequest(Request):
    """A :class:`Request` with an explicit priority (lower = sooner)."""

    __slots__ = ("priority", "time", "key")

    def __init__(self, resource: "PriorityResource", priority: int = 0) -> None:
        self.priority = priority
        self.time = resource.env.now
        self.key = (priority, self.time)
        super().__init__(resource)


class Release(Event):
    """Immediate event confirming a resource release (for symmetry)."""

    __slots__ = ("resource", "request")

    def __init__(self, resource: "Resource", request: Request) -> None:
        super().__init__(resource.env)
        self.resource = resource
        self.request = request
        self.succeed()


class Resource:
    """A counted, FIFO-queued resource with fixed capacity."""

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self._capacity = int(capacity)
        self.users: list[Request] = []
        self.queue: deque[Request] = deque()

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def count(self) -> int:
        """Number of units currently in use."""
        return len(self.users)

    def request(self) -> Request:
        return Request(self)

    def release(self, request: Request) -> Release:
        self._do_release(request)
        self._trigger_waiters()
        return Release(self, request)

    # -- internals ----------------------------------------------------------
    def _do_request(self, request: Request) -> None:
        if len(self.users) < self._capacity:
            self.users.append(request)
            request.succeed()
        else:
            self.queue.append(request)

    def _do_release(self, request: Request) -> None:
        try:
            self.users.remove(request)
        except ValueError:
            # Request was still queued (released before being granted) or
            # already released; canceling a queued request is fine.
            self._cancel(request)

    def _cancel(self, request: Request) -> None:
        try:
            self.queue.remove(request)
        except ValueError:
            pass

    def _trigger_waiters(self) -> None:
        while self.queue and len(self.users) < self._capacity:
            nxt = self.queue.popleft()
            if nxt.triggered:
                continue
            self.users.append(nxt)
            nxt.succeed()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<{type(self).__name__} used={self.count}/{self._capacity} "
                f"queued={len(self.queue)}>")


class PriorityResource(Resource):
    """A resource whose waiting queue is ordered by request priority."""

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        super().__init__(env, capacity)
        self._pqueue: list[tuple[tuple, int, PriorityRequest]] = []
        self._order = 0

    def request(self, priority: int = 0) -> PriorityRequest:  # type: ignore[override]
        return PriorityRequest(self, priority)

    def _do_request(self, request: Request) -> None:
        if len(self.users) < self._capacity:
            self.users.append(request)
            request.succeed()
        else:
            assert isinstance(request, PriorityRequest)
            order = self._order
            self._order = order + 1
            heapq.heappush(self._pqueue, (request.key, order, request))

    def _cancel(self, request: Request) -> None:
        self._pqueue = [entry for entry in self._pqueue if entry[2] is not request]
        heapq.heapify(self._pqueue)

    def _trigger_waiters(self) -> None:
        while self._pqueue and len(self.users) < self._capacity:
            _key, _n, nxt = heapq.heappop(self._pqueue)
            if nxt.triggered:
                continue
            self.users.append(nxt)
            nxt.succeed()


class ContainerPut(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float) -> None:
        if amount <= 0:
            raise ValueError("amount must be positive")
        super().__init__(container.env)
        self.amount = amount


class ContainerGet(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float) -> None:
        if amount <= 0:
            raise ValueError("amount must be positive")
        super().__init__(container.env)
        self.amount = amount


class Container:
    """A continuous-quantity resource (e.g. bytes of broker queue memory)."""

    def __init__(self, env: Environment, capacity: float = float("inf"),
                 init: float = 0.0) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= init <= capacity:
            raise ValueError("init must lie within [0, capacity]")
        self.env = env
        self._capacity = capacity
        self._level = init
        self._put_waiters: deque[ContainerPut] = deque()
        self._get_waiters: deque[ContainerGet] = deque()

    @property
    def capacity(self) -> float:
        return self._capacity

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> ContainerPut:
        event = ContainerPut(self, amount)
        self._put_waiters.append(event)
        self._dispatch()
        return event

    def get(self, amount: float) -> ContainerGet:
        event = ContainerGet(self, amount)
        self._get_waiters.append(event)
        self._dispatch()
        return event

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._put_waiters:
                put = self._put_waiters[0]
                if self._level + put.amount <= self._capacity:
                    self._put_waiters.popleft()
                    self._level += put.amount
                    put.succeed()
                    progress = True
            if self._get_waiters:
                get = self._get_waiters[0]
                if get.amount <= self._level:
                    self._get_waiters.popleft()
                    self._level -= get.amount
                    get.succeed()
                    progress = True


class StorePut(Event):
    """Pending put of an item into a :class:`Store`."""

    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.env)
        self.item = item
        store._put_waiters.append(self)
        store._dispatch()


class StoreGet(Event):
    """Pending get of an item from a :class:`Store`."""

    __slots__ = ("filter",)

    def __init__(self, store: "Store",
                 filter: Optional[Callable[[Any], bool]] = None) -> None:
        super().__init__(store.env)
        self.filter = filter
        store._get_waiters.append(self)
        store._dispatch()

    def cancel(self) -> None:
        """Withdraw the get request if it has not been satisfied yet."""
        # Dispatch skips triggered events, so marking is enough; but remove
        # eagerly to keep waiter lists short.
        pass


class Store:
    """A FIFO store of Python objects with optional bounded capacity.

    This is the building block for simulated message queues and mailboxes.
    ``put`` blocks (i.e. the returned event stays pending) while the store is
    full; ``get`` blocks while it is empty.
    """

    def __init__(self, env: Environment, capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self._capacity = capacity
        self.items: deque[Any] = deque()
        self._put_waiters: deque[StorePut] = deque()
        self._get_waiters: deque[StoreGet] = deque()

    @property
    def capacity(self) -> float:
        return self._capacity

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        return StorePut(self, item)

    def get(self) -> StoreGet:
        return StoreGet(self)

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False if the store is full."""
        if len(self.items) >= self._capacity:
            return False
        self.items.append(item)
        self._dispatch()
        return True

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get; returns ``(False, None)`` if empty."""
        if not self.items:
            return False, None
        item = self.items.popleft()
        self._dispatch()
        return True, item

    # -- internals ----------------------------------------------------------
    def _do_put(self, event: StorePut) -> bool:
        if len(self.items) < self._capacity:
            self.items.append(event.item)
            event.succeed()
            return True
        return False

    def _do_get(self, event: StoreGet) -> bool:
        if self.items:
            event.succeed(self.items.popleft())
            return True
        return False

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            while self._put_waiters and self._put_waiters[0].triggered:
                self._put_waiters.popleft()
            while self._get_waiters and self._get_waiters[0].triggered:
                self._get_waiters.popleft()
            if self._put_waiters and self._do_put(self._put_waiters[0]):
                self._put_waiters.popleft()
                progress = True
            if self._get_waiters and self._do_get(self._get_waiters[0]):
                self._get_waiters.popleft()
                progress = True


class FilterStore(Store):
    """A store whose ``get`` can select items matching a predicate."""

    def get(self, filter: Optional[Callable[[Any], bool]] = None) -> StoreGet:  # type: ignore[override]
        return StoreGet(self, filter)

    def _do_get(self, event: StoreGet) -> bool:
        if event.filter is None:
            return super()._do_get(event)
        for idx, item in enumerate(self.items):
            if event.filter(item):
                del self.items[idx]
                event.succeed(item)
                return True
        return False

    def _dispatch(self) -> None:
        # Unlike the FIFO store, a blocked get at the head must not block
        # gets behind it that could match other items.
        progress = True
        while progress:
            progress = False
            while self._put_waiters and self._put_waiters[0].triggered:
                self._put_waiters.popleft()
            self._get_waiters = deque(
                g for g in self._get_waiters if not g.triggered)
            if self._put_waiters and self._do_put(self._put_waiters[0]):
                self._put_waiters.popleft()
                progress = True
            for getter in list(self._get_waiters):
                if self._do_get(getter):
                    self._get_waiters.remove(getter)
                    progress = True
