"""Lightweight instrumentation for simulated components.

Two primitives cover everything the evaluation needs:

* :class:`Counter` — monotonically increasing counts (messages published,
  messages consumed, bytes transferred, rejected publishes).
* :class:`TimeSeries` — timestamped samples (per-message RTTs, queue depths,
  link utilisation), with summary statistics computed lazily via numpy.

A :class:`Monitor` groups named counters/series for one component and can be
merged with others when the coordinator aggregates per-consumer results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

__all__ = ["Counter", "TimeSeries", "Monitor"]


@dataclass
class Counter:
    """A named monotonically increasing counter."""

    name: str
    value: float = 0.0

    def increment(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a separate counter")
        self.value += amount

    def merge(self, other: "Counter") -> None:
        self.value += other.value


@dataclass
class TimeSeries:
    """Timestamped samples with numpy-backed summary statistics."""

    name: str
    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def record(self, time: float, value: float) -> None:
        self.times.append(float(time))
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.values)

    def merge(self, other: "TimeSeries") -> None:
        self.times.extend(other.times)
        self.values.extend(other.values)

    # -- statistics ---------------------------------------------------------
    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        return np.asarray(self.times, dtype=float), np.asarray(self.values, dtype=float)

    def mean(self) -> float:
        return float(np.mean(self.values)) if self.values else float("nan")

    def median(self) -> float:
        return float(np.median(self.values)) if self.values else float("nan")

    def percentile(self, q: float | Iterable[float]):
        if not self.values:
            return float("nan")
        return np.percentile(np.asarray(self.values, dtype=float), q)

    def minimum(self) -> float:
        return float(np.min(self.values)) if self.values else float("nan")

    def maximum(self) -> float:
        return float(np.max(self.values)) if self.values else float("nan")

    def cdf(self, points: int = 100) -> tuple[np.ndarray, np.ndarray]:
        """Empirical CDF evaluated at ``points`` evenly spaced quantiles."""
        if not self.values:
            return np.array([]), np.array([])
        values = np.sort(np.asarray(self.values, dtype=float))
        probs = np.arange(1, len(values) + 1) / len(values)
        if points >= len(values):
            return values, probs
        idx = np.linspace(0, len(values) - 1, points).astype(int)
        return values[idx], probs[idx]


class Monitor:
    """Named collection of counters and time series for one component."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.counters: dict[str, Counter] = {}
        self.series: dict[str, TimeSeries] = {}

    def counter(self, name: str) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            counter = Counter(name)
            self.counters[name] = counter
        return counter

    def timeseries(self, name: str) -> TimeSeries:
        series = self.series.get(name)
        if series is None:
            series = TimeSeries(name)
            self.series[name] = series
        return series

    def count(self, name: str, amount: float = 1.0) -> None:
        self.counter(name).increment(amount)

    def record(self, name: str, time: float, value: float) -> None:
        self.timeseries(name).record(time, value)

    def merge(self, other: "Monitor") -> None:
        """Fold another monitor's measurements into this one."""
        for name, counter in other.counters.items():
            self.counter(name).merge(counter)
        for name, series in other.series.items():
            self.timeseries(name).merge(series)

    def snapshot(self) -> dict:
        """Plain-dict summary useful for result serialization."""
        return {
            "name": self.name,
            "counters": {k: c.value for k, c in self.counters.items()},
            "series": {
                k: {
                    "count": len(s),
                    "mean": s.mean(),
                    "median": s.median(),
                    "min": s.minimum(),
                    "max": s.maximum(),
                }
                for k, s in self.series.items()
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<Monitor {self.name!r} counters={len(self.counters)} "
                f"series={len(self.series)}>")
