"""Lightweight instrumentation for simulated components.

Two primitives cover everything the evaluation needs:

* :class:`Counter` — monotonically increasing counts (messages published,
  messages consumed, bytes transferred, rejected publishes).
* :class:`TimeSeries` — timestamped samples (per-message RTTs, queue depths,
  link utilisation), with summary statistics computed lazily via numpy.

A :class:`Monitor` groups named counters/series for one component and can be
merged with others when the coordinator aggregates per-consumer results.

Both primitives sit on the per-message hot path, so they are
allocation-light: ``__slots__`` instead of instance dicts, and
:class:`TimeSeries` stores its samples in ``array('d')`` column buffers
(one C double per sample) rather than lists of boxed floats.  Hot call
sites are expected to look up their :class:`Counter`/:class:`TimeSeries`
once (``monitor.counter(name)`` / ``monitor.timeseries(name)``) and keep
the returned object, rather than paying the name lookup per message.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

__all__ = ["Counter", "TimeSeries", "Monitor"]


@dataclass(slots=True)
class Counter:
    """A named monotonically increasing counter."""

    name: str
    value: float = 0.0

    def increment(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a separate counter")
        self.value += amount

    def merge(self, other: "Counter") -> None:
        self.value += other.value


class TimeSeries:
    """Timestamped samples with numpy-backed summary statistics.

    Samples live in two parallel ``array('d')`` columns; statistics wrap
    them in transient zero-copy numpy views.
    """

    __slots__ = ("name", "times", "values")

    def __init__(self, name: str,
                 times: Optional[Iterable[float]] = None,
                 values: Optional[Iterable[float]] = None) -> None:
        self.name = name
        self.times: array = array("d", times if times is not None else ())
        self.values: array = array("d", values if values is not None else ())

    def record(self, time: float, value: float) -> None:
        # array('d').append coerces (and type-checks) to a C double.
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TimeSeries(name={self.name!r}, samples={len(self.values)})"

    def merge(self, other: "TimeSeries") -> None:
        self.times.extend(other.times)
        self.values.extend(other.values)

    # -- statistics ---------------------------------------------------------
    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Copies of the (times, values) columns as float64 arrays."""
        return (np.array(self.times, dtype=float),
                np.array(self.values, dtype=float))

    def _view(self) -> np.ndarray:
        """Transient zero-copy (read-only) view of the value column."""
        return np.frombuffer(self.values, dtype=float)

    def mean(self) -> float:
        return float(np.mean(self._view())) if self.values else float("nan")

    def median(self) -> float:
        return float(np.median(self._view())) if self.values else float("nan")

    def percentile(self, q: float | Iterable[float]):
        if not self.values:
            return float("nan")
        return np.percentile(self._view(), q)

    def minimum(self) -> float:
        return float(np.min(self._view())) if self.values else float("nan")

    def maximum(self) -> float:
        return float(np.max(self._view())) if self.values else float("nan")

    def cdf(self, points: int = 100) -> tuple[np.ndarray, np.ndarray]:
        """Empirical CDF evaluated at ``points`` evenly spaced quantiles."""
        if not self.values:
            return np.array([]), np.array([])
        values = np.sort(self._view())
        probs = np.arange(1, len(values) + 1) / len(values)
        if points >= len(values):
            return values, probs
        idx = np.linspace(0, len(values) - 1, points).astype(int)
        return values[idx], probs[idx]


class Monitor:
    """Named collection of counters and time series for one component."""

    __slots__ = ("name", "counters", "series")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.counters: dict[str, Counter] = {}
        self.series: dict[str, TimeSeries] = {}

    def counter(self, name: str) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            counter = Counter(name)
            self.counters[name] = counter
        return counter

    def timeseries(self, name: str) -> TimeSeries:
        series = self.series.get(name)
        if series is None:
            series = TimeSeries(name)
            self.series[name] = series
        return series

    def count(self, name: str, amount: float = 1.0) -> None:
        self.counter(name).increment(amount)

    def record(self, name: str, time: float, value: float) -> None:
        self.timeseries(name).record(time, value)

    def merge(self, other: "Monitor") -> None:
        """Fold another monitor's measurements into this one."""
        for name, counter in other.counters.items():
            self.counter(name).merge(counter)
        for name, series in other.series.items():
            self.timeseries(name).merge(series)

    def snapshot(self) -> dict:
        """Plain-dict summary useful for result serialization."""
        return {
            "name": self.name,
            "counters": {k: c.value for k, c in self.counters.items()},
            "series": {
                k: {
                    "count": len(s),
                    "mean": s.mean(),
                    "median": s.median(),
                    "min": s.minimum(),
                    "max": s.maximum(),
                }
                for k, s in self.series.items()
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<Monitor {self.name!r} counters={len(self.counters)} "
                f"series={len(self.series)}>")
