"""Regenerate the paper's tables.

* :func:`table1_rows` — Table 1, the streaming characteristics of the
  Deleria (Dstream), LCLS (Lstream) and generic workloads, produced from the
  workload specifications themselves.
* :func:`architecture_comparison_rows` — the qualitative §2/§6 comparison of
  the three architectures (hops, firewall rules, exposed ports, admin/user
  steps, security exposure, multi-user scalability), produced by actually
  deploying each architecture on the emulated testbed and reading its
  :class:`~repro.architectures.deployment.DeploymentReport`.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..architectures import TestbedConfig
from ..harness import ExecutionPolicy, Session
from ..metrics import format_table
from ..workloads import WORKLOADS
from .study import PAPER_ARCHITECTURES, deployment_comparison

__all__ = [
    "TABLE1_COLUMNS",
    "table1_rows",
    "table1_text",
    "architecture_comparison_rows",
    "architecture_comparison_text",
]

#: Column order matching Table 1 in the paper.
TABLE1_COLUMNS = (
    "characteristic",
    "Deleria",
    "LCLS",
    "Generic",
)

#: Mapping from Table 1 row labels to WorkloadSpec.table_row() keys.
_TABLE1_ROWS = (
    ("Payload size", "payload_size"),
    ("Payload format", "payload_format"),
    ("Payload element", "payload_element"),
    ("Data packaging", "data_packaging"),
    ("Data rate", "data_rate"),
    ("Consumption parallelism", "consumption_parallelism"),
    ("Production parallelism", "production_parallelism"),
)

#: Table 1 columns come from these workloads (Deleria=Dstream, LCLS=Lstream).
_TABLE1_WORKLOADS = (("Deleria", "Dstream"), ("LCLS", "Lstream"),
                     ("Generic", "Generic"))


def table1_rows() -> list[dict]:
    """Table 1 as a list of rows (one per streaming characteristic)."""
    per_workload = {label: WORKLOADS[name].table_row()
                    for label, name in _TABLE1_WORKLOADS}
    rows = []
    for label, key in _TABLE1_ROWS:
        row = {"characteristic": label}
        for workload_label, _ in _TABLE1_WORKLOADS:
            row[workload_label] = per_workload[workload_label][key]
        rows.append(row)
    return rows


def table1_text() -> str:
    """Table 1 rendered as an ASCII table."""
    return format_table(table1_rows(), columns=TABLE1_COLUMNS,
                        title="Table 1: Data streaming characteristics "
                              "(Deleria, LCLS, Generic)")


def architecture_comparison_rows(
        architectures: Sequence[str] = ("DTS", "PRS(HAProxy)", "MSS"), *,
        testbed_config: Optional[TestbedConfig] = None,
        session: Optional[Session] = None,
        jobs: Optional[int] = None,
        policy: Optional[ExecutionPolicy] = None) -> list[dict]:
    """Qualitative architecture comparison derived from real deployments.

    The deployments run through the unified scenario runner under
    ``session``, so a parallel session deploys the architectures
    concurrently and its policy adds per-deployment timeout/retry handling
    (``jobs``/``policy`` are the deprecated pre-session keywords).
    """
    session = Session.resolve(session, jobs=jobs, policy=policy,
                              where="architecture_comparison_rows")
    reports = deployment_comparison(architectures, testbed_config=testbed_config,
                                    session=session)
    return [report.as_row() for report in reports.values()]


def architecture_comparison_text(
        architectures: Sequence[str] = ("DTS", "PRS(HAProxy)", "MSS"), *,
        testbed_config: Optional[TestbedConfig] = None,
        session: Optional[Session] = None,
        jobs: Optional[int] = None,
        policy: Optional[ExecutionPolicy] = None) -> str:
    session = Session.resolve(session, jobs=jobs, policy=policy,
                              where="architecture_comparison_text")
    rows = architecture_comparison_rows(architectures,
                                        testbed_config=testbed_config,
                                        session=session)
    return format_table(rows, title="Architecture deployment comparison "
                                    "(derived from deployed objects)")
