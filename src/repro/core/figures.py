"""Regenerate the data behind every figure in the paper's evaluation.

Each ``figureN`` function runs the corresponding experiment sweep and
returns structured data (series per architecture, CDFs, rows for tables).
Absolute numbers differ from the paper — the substrate is a simulator, not
the OLCF testbed — but the qualitative shapes (ordering, saturation points,
overhead factors) are the reproduction target; see EXPERIMENTS.md.

Figure index
------------
* :func:`figure4`  — work-sharing throughput vs consumer count (Dstream, Lstream).
* :func:`figure5`  — CDFs of per-message RTT, work sharing with feedback.
* :func:`figure6`  — median RTT vs consumer count, work sharing with feedback.
* :func:`figure7`  — broadcast throughput and broadcast+gather median RTT (Generic).
* :func:`figure8`  — CDFs of per-message RTT, broadcast and gather (Generic).
* :func:`overhead_summary` — PRS/MSS overhead factors vs DTS (§5.3/§5.4 text).
* ``ablation_*``   — §6 what-if studies (tunnel type, connections, LB bypass,
  link speed, queue count, network-layer forwarding).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

import numpy as np

from ..architectures import TestbedConfig
from ..faults import FAULT_AXES, FaultPlan
from ..harness import (
    PAPER_CONSUMER_COUNTS,
    ConsumerSweep,
    ExecutionBackend,
    ExecutionPolicy,
    ExperimentConfig,
    ScenarioSet,
    Session,
    SweepResult,
    run_scenarios,
    scale_link_tiers,
    sensitivity_sweep,
)
from ..metrics import empirical_cdf, overhead_table
from .study import BASELINE_ARCHITECTURE, PAPER_ARCHITECTURES

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..harness import ResultCache

__all__ = [
    "FigureData",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure_bandwidth_scaling",
    "figure_chaos_degradation",
    "overhead_summary",
    "ablation_tunnel_type",
    "ablation_proxy_connections",
    "ablation_mss_lb_bypass",
    "ablation_link_speed",
    "ablation_work_queue_count",
    "ablation_network_layer_forwarding",
    "FIGURE4_ARCHITECTURES",
    "RTT_ARCHITECTURES",
    "BROADCAST_ARCHITECTURES",
]

#: Architectures plotted in Figure 4.
FIGURE4_ARCHITECTURES = PAPER_ARCHITECTURES
#: §5.4: Stunnel is excluded from the RTT studies (Figures 5, 6).
RTT_ARCHITECTURES = ("DTS", "PRS(HAProxy)", "PRS(HAProxy,4conns)", "MSS")
#: §5.5: broadcast/gather compares DTS, PRS(HAProxy) and MSS (Figures 7, 8).
BROADCAST_ARCHITECTURES = ("DTS", "PRS(HAProxy)", "MSS")


@dataclass
class FigureData:
    """Structured output of one figure regeneration."""

    figure: str
    description: str
    #: ``sweeps[workload]`` -> :class:`SweepResult` (throughput / median RTT).
    sweeps: dict[str, SweepResult] = field(default_factory=dict)
    #: ``cdfs[workload][consumers][architecture]`` -> (x, p) arrays.
    cdfs: dict[str, dict[int, dict[str, tuple[np.ndarray, np.ndarray]]]] = field(
        default_factory=dict)
    #: Long-format rows suitable for tables / CSV export.
    rows: list[dict] = field(default_factory=list)

    def series(self, workload: str, architecture: str,
               metric: str = "throughput_msgs_per_s") -> list[tuple[int, float]]:
        return self.sweeps[workload].series(architecture, metric)


def _base_config(workload: str, pattern: str, *, messages_per_producer: int,
                 runs: int, seed: int, testbed: Optional[TestbedConfig],
                 **overrides) -> ExperimentConfig:
    producers = 1 if pattern in ("broadcast", "broadcast_gather") else 1
    return ExperimentConfig(
        architecture=BASELINE_ARCHITECTURE,
        workload=workload,
        pattern=pattern,
        num_producers=producers,
        num_consumers=1,
        messages_per_producer=messages_per_producer,
        runs=runs,
        seed=seed,
        testbed=testbed or TestbedConfig(),
        **overrides,
    )


def _sweep(workload: str, pattern: str, architectures: Sequence[str],
           consumer_counts: Iterable[int], *, session: Session,
           messages_per_producer: int, runs: int, seed: int,
           testbed: Optional[TestbedConfig],
           equal_producers: bool = True, **overrides) -> SweepResult:
    base = _base_config(workload, pattern, messages_per_producer=messages_per_producer,
                        runs=runs, seed=seed, testbed=testbed, **overrides)
    sweep = ConsumerSweep(base, architectures=architectures,
                          consumer_counts=consumer_counts,
                          equal_producers=equal_producers)
    return sweep.run(session=session)


def _sweep_grid(workloads: Sequence[str], patterns: Sequence[str],
                architectures: Sequence[str], consumer_counts: Iterable[int],
                *, session: Session, messages_per_producer: int, runs: int,
                seed: int, testbed: Optional[TestbedConfig],
                equal_producers: bool = True,
                **overrides) -> dict[tuple[str, str], SweepResult]:
    """Sweeps for every (workload, pattern) cell, executed as ONE scenario
    grid so a parallel session fans out across all of a figure's points,
    not just within one sweep."""
    consumer_counts = tuple(consumer_counts)
    base = _base_config(workloads[0], patterns[0],
                        messages_per_producer=messages_per_producer,
                        runs=runs, seed=seed, testbed=testbed, **overrides)
    scenarios = ScenarioSet.grid(base, architectures=list(architectures),
                                 workloads=list(workloads),
                                 patterns=list(patterns),
                                 consumer_counts=consumer_counts,
                                 equal_producers=equal_producers)
    sweeps: dict[tuple[str, str], SweepResult] = {}
    for workload in workloads:
        for pattern in patterns:
            sweeps[(workload, pattern)] = SweepResult(
                workload=workload, pattern=pattern,
                consumer_counts=consumer_counts)
    for outcome in run_scenarios(scenarios, session=session):
        axes = outcome.point.axes
        sweep = sweeps[(axes["workload"], axes["pattern"])]
        if not outcome.ok:
            sweep.record_failure(outcome)
            continue
        sweep.results.setdefault(outcome.point.label, {})
        sweep.results[outcome.point.label][axes["consumers"]] = outcome.result
    return sweeps


def _collect_cdfs(sweep: SweepResult, consumer_counts: Iterable[int],
                  cdf_points: int) -> dict[int, dict[str, tuple[np.ndarray, np.ndarray]]]:
    cdfs: dict[int, dict[str, tuple[np.ndarray, np.ndarray]]] = {}
    for consumers in consumer_counts:
        per_arch: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        for architecture in sweep.architectures():
            result = sweep.get(architecture, consumers)
            if result is None or not result.feasible:
                continue
            samples = result.rtt_samples
            if samples.size == 0:
                continue
            per_arch[architecture] = empirical_cdf(samples, points=cdf_points)
        cdfs[consumers] = per_arch
    return cdfs


# ---------------------------------------------------------------------------
# Figure 4 — work sharing throughput
# ---------------------------------------------------------------------------

def figure4(*, workloads: Sequence[str] = ("Dstream", "Lstream"),
            architectures: Sequence[str] = FIGURE4_ARCHITECTURES,
            consumer_counts: Iterable[int] = PAPER_CONSUMER_COUNTS,
            messages_per_producer: int = 20,
            runs: int = 1, seed: int = 1,
            testbed: Optional[TestbedConfig] = None,
            session: Optional[Session] = None,
            jobs: Optional[int] = None,
            backend: Optional[ExecutionBackend] = None,
            cache: Optional["ResultCache"] = None,
            policy: Optional[ExecutionPolicy] = None) -> FigureData:
    """Throughput (msgs/s) under the work sharing pattern (Figure 4)."""
    session = Session.resolve(session, backend=backend, jobs=jobs,
                              cache=cache, policy=policy, where="figure4")
    data = FigureData(
        figure="figure4",
        description="Aggregate consumer throughput vs consumer count, "
                    "work sharing pattern (Dstream and Lstream)")
    sweeps = _sweep_grid(list(workloads), ["work_sharing"], architectures,
                         consumer_counts, session=session,
                         messages_per_producer=messages_per_producer, runs=runs,
                         seed=seed, testbed=testbed)
    for workload in workloads:
        sweep = sweeps[(workload, "work_sharing")]
        data.sweeps[workload] = sweep
        data.rows.extend(sweep.rows("throughput_msgs_per_s"))
    return data


# ---------------------------------------------------------------------------
# Figures 5 and 6 — work sharing with feedback RTT
# ---------------------------------------------------------------------------

def figure6(*, workloads: Sequence[str] = ("Dstream", "Lstream"),
            architectures: Sequence[str] = RTT_ARCHITECTURES,
            consumer_counts: Iterable[int] = PAPER_CONSUMER_COUNTS,
            messages_per_producer: int = 15,
            runs: int = 1, seed: int = 1,
            testbed: Optional[TestbedConfig] = None,
            session: Optional[Session] = None,
            jobs: Optional[int] = None,
            backend: Optional[ExecutionBackend] = None,
            cache: Optional["ResultCache"] = None,
            policy: Optional[ExecutionPolicy] = None) -> FigureData:
    """Median RTT under work sharing with feedback (Figure 6)."""
    session = Session.resolve(session, backend=backend, jobs=jobs,
                              cache=cache, policy=policy, where="figure6")
    data = FigureData(
        figure="figure6",
        description="Median per-message RTT vs consumer count, "
                    "work sharing with feedback (Dstream and Lstream)")
    sweeps = _sweep_grid(list(workloads), ["work_sharing_feedback"],
                         architectures, consumer_counts, session=session,
                         messages_per_producer=messages_per_producer, runs=runs,
                         seed=seed, testbed=testbed)
    for workload in workloads:
        sweep = sweeps[(workload, "work_sharing_feedback")]
        data.sweeps[workload] = sweep
        data.rows.extend(sweep.rows("median_rtt_s"))
    return data


def figure5(*, workloads: Sequence[str] = ("Dstream", "Lstream"),
            architectures: Sequence[str] = RTT_ARCHITECTURES,
            consumer_counts: Iterable[int] = PAPER_CONSUMER_COUNTS,
            messages_per_producer: int = 15,
            runs: int = 1, seed: int = 1, cdf_points: int = 100,
            testbed: Optional[TestbedConfig] = None,
            session: Optional[Session] = None,
            jobs: Optional[int] = None,
            backend: Optional[ExecutionBackend] = None,
            cache: Optional["ResultCache"] = None,
            policy: Optional[ExecutionPolicy] = None) -> FigureData:
    """CDFs of per-message RTT under work sharing with feedback (Figure 5)."""
    session = Session.resolve(session, backend=backend, jobs=jobs,
                              cache=cache, policy=policy, where="figure5")
    consumer_counts = tuple(consumer_counts)
    data = figure6(workloads=workloads, architectures=architectures,
                   consumer_counts=consumer_counts,
                   messages_per_producer=messages_per_producer, runs=runs,
                   seed=seed, testbed=testbed, session=session)
    data.figure = "figure5"
    data.description = ("CDF of individual message RTTs, work sharing with "
                        "feedback (Dstream and Lstream), 1-64 consumers")
    for workload, sweep in data.sweeps.items():
        data.cdfs[workload] = _collect_cdfs(sweep, consumer_counts, cdf_points)
    return data


# ---------------------------------------------------------------------------
# Figures 7 and 8 — broadcast and gather
# ---------------------------------------------------------------------------

def figure7(*, architectures: Sequence[str] = BROADCAST_ARCHITECTURES,
            consumer_counts: Iterable[int] = PAPER_CONSUMER_COUNTS,
            messages_per_producer: int = 6,
            runs: int = 1, seed: int = 1,
            testbed: Optional[TestbedConfig] = None,
            session: Optional[Session] = None,
            jobs: Optional[int] = None,
            backend: Optional[ExecutionBackend] = None,
            cache: Optional["ResultCache"] = None,
            policy: Optional[ExecutionPolicy] = None) -> FigureData:
    """Broadcast throughput and broadcast+gather median RTT (Figure 7)."""
    session = Session.resolve(session, backend=backend, jobs=jobs,
                              cache=cache, policy=policy, where="figure7")
    data = FigureData(
        figure="figure7",
        description="(a) broadcast throughput and (b) broadcast+gather median "
                    "RTT for the generic workload")
    sweeps = _sweep_grid(["Generic"], ["broadcast", "broadcast_gather"],
                         architectures, consumer_counts, session=session,
                         messages_per_producer=messages_per_producer, runs=runs,
                         seed=seed, testbed=testbed, equal_producers=False)
    broadcast = sweeps[("Generic", "broadcast")]
    gather = sweeps[("Generic", "broadcast_gather")]
    data.sweeps["broadcast"] = broadcast
    data.sweeps["broadcast_gather"] = gather
    for row in broadcast.rows("throughput_msgs_per_s"):
        row["panel"] = "a-throughput"
        data.rows.append(row)
    for row in gather.rows("median_rtt_s"):
        row["panel"] = "b-median-rtt"
        data.rows.append(row)
    return data


def figure8(*, architectures: Sequence[str] = BROADCAST_ARCHITECTURES,
            consumer_counts: Iterable[int] = PAPER_CONSUMER_COUNTS,
            messages_per_producer: int = 6,
            runs: int = 1, seed: int = 1, cdf_points: int = 100,
            testbed: Optional[TestbedConfig] = None,
            session: Optional[Session] = None,
            jobs: Optional[int] = None,
            backend: Optional[ExecutionBackend] = None,
            cache: Optional["ResultCache"] = None,
            policy: Optional[ExecutionPolicy] = None) -> FigureData:
    """CDFs of per-message RTT under broadcast and gather (Figure 8)."""
    session = Session.resolve(session, backend=backend, jobs=jobs,
                              cache=cache, policy=policy, where="figure8")
    consumer_counts = tuple(consumer_counts)
    data = FigureData(
        figure="figure8",
        description="CDF of individual message RTTs, broadcast and gather "
                    "(generic workload), 1-64 consumers")
    sweep = _sweep("Generic", "broadcast_gather", architectures, consumer_counts,
                   session=session,
                   messages_per_producer=messages_per_producer, runs=runs,
                   seed=seed, testbed=testbed, equal_producers=False)
    data.sweeps["Generic"] = sweep
    data.cdfs["Generic"] = _collect_cdfs(sweep, consumer_counts, cdf_points)
    data.rows.extend(sweep.rows("median_rtt_s"))
    return data


# ---------------------------------------------------------------------------
# Bandwidth scaling (§6: the 1 Gbps testbed limitation vs 100 Gbps)
# ---------------------------------------------------------------------------

def figure_bandwidth_scaling(*, workload: str = "Lstream",
                             architectures: Sequence[str] = BROADCAST_ARCHITECTURES,
                             consumers: int = 16,
                             speeds_gbps: Sequence[float] = (1, 10, 100),
                             messages_per_producer: int = 10,
                             runs: int = 1, seed: int = 1,
                             testbed: Optional[TestbedConfig] = None,
                             scale_backbone: bool = True,
                             session: Optional[Session] = None,
                             jobs: Optional[int] = None,
                             backend: Optional[ExecutionBackend] = None,
                             cache: Optional["ResultCache"] = None,
                             policy: Optional[ExecutionPolicy] = None
                             ) -> FigureData:
    """Throughput vs access-link bandwidth (the §6 1-vs-100 Gbps discussion).

    Every headline number in the paper sits at the testbed's 1 Gbps
    operating point; this sweep moves that point through ``speeds_gbps`` and
    reports each architecture's throughput plus its speedup relative to the
    first (paper) speed, so the "what would 100 Gbps interfaces buy"
    question in §6 becomes a figure instead of prose.  ``scale_backbone``
    keeps the backbone/gateway tiers at their default ratios to the access
    links (via :meth:`TestbedConfig.with_link_bandwidth`) so the sweep
    changes the operating point, not the topology shape.
    """
    session = Session.resolve(session, backend=backend, jobs=jobs,
                              cache=cache, policy=policy,
                              where="figure_bandwidth_scaling")
    base = _base_config(workload, "work_sharing",
                        messages_per_producer=messages_per_producer,
                        runs=runs, seed=seed, testbed=testbed)
    base = base.with_consumers(consumers)
    axis = "testbed.link_bandwidth_bps"
    transform = scale_link_tiers if scale_backbone else None
    sweep = sensitivity_sweep(
        base,
        {"architecture": list(architectures),
         axis: [speed * 1e9 for speed in speeds_gbps]},
        transform=transform, session=session)
    data = FigureData(
        figure="bandwidth",
        description=f"Aggregate throughput vs access-link bandwidth, "
                    f"work sharing ({workload}, {consumers} consumers)")
    data.sweeps["bandwidth"] = sweep
    first_bps = speeds_gbps[0] * 1e9
    for row in sweep.rows("throughput_msgs_per_s"):
        bandwidth_bps = row.pop(axis)
        reference = sweep.get(row["architecture"], first_bps)
        speedup = float("nan")
        if (reference is not None and reference.feasible
                and reference.throughput_msgs_per_s):
            speedup = (row["throughput_msgs_per_s"]
                       / reference.throughput_msgs_per_s)
        data.rows.append({
            "workload": workload,
            "pattern": "work_sharing",
            "architecture": row["architecture"],
            "consumers": consumers,
            "link_gbps": bandwidth_bps / 1e9,
            "feasible": row["feasible"],
            "throughput_msgs_per_s": row["throughput_msgs_per_s"],
            f"speedup_vs_{speeds_gbps[0]:g}gbps": speedup,
        })
    return data


def figure_chaos_degradation(*, fault_axis: str = "broker_kill_rate",
                             rates: Sequence[float] = (0.0, 1.0, 2.0),
                             architectures: Sequence[str] = PAPER_ARCHITECTURES,
                             workload: str = "Dstream",
                             consumers: int = 4,
                             messages_per_producer: int = 25,
                             runs: int = 1, seed: int = 1,
                             plan: Optional[FaultPlan] = None,
                             testbed: Optional[TestbedConfig] = None,
                             session: Optional[Session] = None,
                             jobs: Optional[int] = None,
                             backend: Optional[ExecutionBackend] = None,
                             cache: Optional["ResultCache"] = None,
                             policy: Optional[ExecutionPolicy] = None
                             ) -> FigureData:
    """Throughput degradation vs fault rate, per architecture (chaos sweep).

    Sweeps one fault axis (default: broker kills) through ``rates`` for
    every architecture and reports each point's throughput plus its
    *degradation* — throughput relative to the same architecture at the
    first (normally fault-free) rate — so the architectures' failure
    resilience becomes a figure: an architecture whose curve stays near 1.0
    rides out the chaos, one that collapses does not.  ``plan`` supplies
    the secondary knobs (downtimes, horizon, weather windows); the swept
    axis value overrides that plan's primary axis at every point.
    """
    if fault_axis not in FAULT_AXES:
        raise ValueError(f"unknown fault axis {fault_axis!r}; "
                         f"expected one of {FAULT_AXES}")
    session = Session.resolve(session, backend=backend, jobs=jobs,
                              cache=cache, policy=policy,
                              where="figure_chaos_degradation")
    base = _base_config(workload, "work_sharing",
                        messages_per_producer=messages_per_producer,
                        runs=runs, seed=seed, testbed=testbed,
                        faults=plan or FaultPlan())
    base = base.with_consumers(consumers)
    axis = f"faults.{fault_axis}"
    sweep = sensitivity_sweep(
        base,
        {"architecture": list(architectures), axis: list(rates)},
        session=session)
    data = FigureData(
        figure="chaos",
        description=f"Throughput degradation vs {fault_axis}, "
                    f"work sharing ({workload}, {consumers} consumers)")
    data.sweeps["chaos"] = sweep
    first_rate = rates[0]
    for row in sweep.rows("throughput_msgs_per_s"):
        rate = row.pop(axis)
        reference = sweep.get(row["architecture"], first_rate)
        degradation = float("nan")
        if (reference is not None and reference.feasible
                and reference.throughput_msgs_per_s):
            degradation = (row["throughput_msgs_per_s"]
                           / reference.throughput_msgs_per_s)
        data.rows.append({
            "workload": workload,
            "pattern": "work_sharing",
            "architecture": row["architecture"],
            "consumers": consumers,
            fault_axis: rate,
            "feasible": row["feasible"],
            "throughput_msgs_per_s": row["throughput_msgs_per_s"],
            f"degradation_vs_{first_rate:g}": degradation,
        })
    return data


# ---------------------------------------------------------------------------
# Overhead summary (§5.3/§5.4 prose numbers)
# ---------------------------------------------------------------------------

def overhead_summary(figure4_data: FigureData, figure6_data: FigureData,
                     *, baseline: str = BASELINE_ARCHITECTURE) -> list[dict]:
    """PRS/MSS overhead factors vs DTS for throughput and median RTT."""
    rows: list[dict] = []
    for workload, sweep in figure4_data.sweeps.items():
        for consumers in sweep.consumer_counts:
            values = {}
            for architecture in sweep.architectures():
                result = sweep.get(architecture, consumers)
                if result is not None and result.feasible:
                    values[architecture] = result.throughput_msgs_per_s
            if baseline not in values:
                continue
            for entry in overhead_table(values, baseline=baseline,
                                        metric="throughput_msgs_per_s",
                                        higher_is_better=True):
                row = entry.as_dict()
                row.update({"workload": workload, "consumers": consumers,
                            "pattern": "work_sharing"})
                rows.append(row)
    for workload, sweep in figure6_data.sweeps.items():
        for consumers in sweep.consumer_counts:
            values = {}
            for architecture in sweep.architectures():
                result = sweep.get(architecture, consumers)
                if result is not None and result.feasible and result.rtt_samples.size:
                    values[architecture] = result.median_rtt_s
            if baseline not in values:
                continue
            for entry in overhead_table(values, baseline=baseline,
                                        metric="median_rtt_s",
                                        higher_is_better=False):
                row = entry.as_dict()
                row.update({"workload": workload, "consumers": consumers,
                            "pattern": "work_sharing_feedback"})
                rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# §6 ablations
# ---------------------------------------------------------------------------

def ablation_tunnel_type(*, workload: str = "Dstream",
                         consumer_counts: Iterable[int] = (1, 4, 16),
                         messages_per_producer: int = 15, seed: int = 1,
                         testbed: Optional[TestbedConfig] = None,
                         session: Optional[Session] = None,
                         jobs: Optional[int] = None,
                         backend: Optional[ExecutionBackend] = None,
                         cache: Optional["ResultCache"] = None,
                         policy: Optional[ExecutionPolicy] = None) -> SweepResult:
    """PRS tunnel choice: Stunnel vs HAProxy vs Nginx."""
    session = Session.resolve(session, backend=backend, jobs=jobs,
                              cache=cache, policy=policy,
                              where="ablation_tunnel_type")
    return _sweep(workload, "work_sharing",
                  ["PRS(Stunnel)", "PRS(HAProxy)", "PRS(Nginx)"],
                  consumer_counts, session=session,
                  messages_per_producer=messages_per_producer,
                  runs=1, seed=seed, testbed=testbed)


def ablation_proxy_connections(*, workload: str = "Dstream",
                               consumer_counts: Iterable[int] = (1, 4, 16),
                               messages_per_producer: int = 15, seed: int = 1,
                               testbed: Optional[TestbedConfig] = None,
                               session: Optional[Session] = None,
                               jobs: Optional[int] = None,
                               backend: Optional[ExecutionBackend] = None,
                               cache: Optional["ResultCache"] = None,
                               policy: Optional[ExecutionPolicy] = None
                               ) -> SweepResult:
    """Number of parallel connections to the PRS proxies (1 vs 4)."""
    session = Session.resolve(session, backend=backend, jobs=jobs,
                              cache=cache, policy=policy,
                              where="ablation_proxy_connections")
    return _sweep(workload, "work_sharing",
                  ["PRS(HAProxy)", "PRS(HAProxy,4conns)"],
                  consumer_counts, session=session,
                  messages_per_producer=messages_per_producer,
                  runs=1, seed=seed, testbed=testbed)


def ablation_mss_lb_bypass(*, workload: str = "Dstream",
                           consumer_counts: Iterable[int] = (4, 16, 64),
                           messages_per_producer: int = 15, seed: int = 1,
                           testbed: Optional[TestbedConfig] = None,
                           session: Optional[Session] = None,
                           jobs: Optional[int] = None,
                           backend: Optional[ExecutionBackend] = None,
                           cache: Optional["ResultCache"] = None,
                           policy: Optional[ExecutionPolicy] = None
                           ) -> SweepResult:
    """§6 improvement: internal consumers bypass the MSS load balancer."""
    session = Session.resolve(session, backend=backend, jobs=jobs,
                              cache=cache, policy=policy,
                              where="ablation_mss_lb_bypass")
    return _sweep(workload, "work_sharing", ["MSS", "MSS(bypass)"],
                  consumer_counts, session=session,
                  messages_per_producer=messages_per_producer,
                  runs=1, seed=seed, testbed=testbed)


def ablation_link_speed(*, workload: str = "Lstream",
                        consumers: int = 16,
                        messages_per_producer: int = 10, seed: int = 1,
                        speeds_gbps: Sequence[float] = (1, 10, 100),
                        session: Optional[Session] = None,
                        jobs: Optional[int] = None,
                        backend: Optional[ExecutionBackend] = None,
                        cache: Optional["ResultCache"] = None,
                        policy: Optional[ExecutionPolicy] = None) -> list[dict]:
    """§6: what the 100 Gbps interfaces would buy each architecture.

    Thin wrapper over :func:`figure_bandwidth_scaling` kept for the
    historical row shape (architecture-major order since the sweep moved to
    the product grid).
    """
    session = Session.resolve(session, backend=backend, jobs=jobs,
                              cache=cache, policy=policy,
                              where="ablation_link_speed")
    data = figure_bandwidth_scaling(
        workload=workload, consumers=consumers, speeds_gbps=speeds_gbps,
        messages_per_producer=messages_per_producer, seed=seed,
        session=session)
    return [{"link_gbps": row["link_gbps"],
             "architecture": row["architecture"],
             "consumers": row["consumers"],
             "throughput_msgs_per_s": row["throughput_msgs_per_s"]}
            for row in data.rows]


def ablation_work_queue_count(*, workload: str = "Dstream",
                              consumers: int = 8,
                              queue_counts: Sequence[int] = (1, 2, 4),
                              messages_per_producer: int = 20,
                              seed: int = 1,
                              session: Optional[Session] = None,
                              jobs: Optional[int] = None,
                              backend: Optional[ExecutionBackend] = None,
                              cache: Optional["ResultCache"] = None,
                              policy: Optional[ExecutionPolicy] = None
                              ) -> list[dict]:
    """§5.2: the two-shared-work-queues choice vs one or four queues."""
    session = Session.resolve(session, backend=backend, jobs=jobs,
                              cache=cache, policy=policy,
                              where="ablation_work_queue_count")
    scenarios = ScenarioSet()
    for queue_count in queue_counts:
        config = ExperimentConfig(
            architecture="DTS", workload=workload, pattern="work_sharing",
            num_producers=consumers, num_consumers=consumers,
            messages_per_producer=messages_per_producer,
            work_queue_count=queue_count, seed=seed)
        scenarios.add_config(config, label=f"queues={queue_count}",
                             work_queues=queue_count)
    return [{"work_queues": outcome.point.axes["work_queues"],
             "consumers": consumers,
             "throughput_msgs_per_s": outcome.result.throughput_msgs_per_s}
            for outcome in run_scenarios(scenarios, session=session)
            if outcome.ok]


def ablation_network_layer_forwarding(*, workload: str = "Dstream",
                                      consumer_counts: Iterable[int] = (1, 4, 16),
                                      messages_per_producer: int = 15,
                                      seed: int = 1,
                                      testbed: Optional[TestbedConfig] = None,
                                      session: Optional[Session] = None,
                                      jobs: Optional[int] = None,
                                      backend: Optional[ExecutionBackend] = None,
                                      cache: Optional["ResultCache"] = None,
                                      policy: Optional[ExecutionPolicy] = None
                                      ) -> SweepResult:
    """§6 future work: network-layer forwarding (EJFAT-style) vs DTS/PRS."""
    session = Session.resolve(session, backend=backend, jobs=jobs,
                              cache=cache, policy=policy,
                              where="ablation_network_layer_forwarding")
    return _sweep(workload, "work_sharing", ["DTS", "NLF", "PRS(HAProxy)"],
                  consumer_counts, session=session,
                  messages_per_producer=messages_per_producer,
                  runs=1, seed=seed, testbed=testbed)
