"""The comparative-study API: experiments, figures and tables.

This is the package most users interact with::

    from repro.core import compare_architectures, figure4, table1_text

    print(table1_text())
    comparison = compare_architectures(workload="Dstream", consumers=4)
    fig4 = figure4(messages_per_producer=20)
"""

from ..harness import ExperimentConfig, run_experiment
from .figures import (
    BROADCAST_ARCHITECTURES,
    FIGURE4_ARCHITECTURES,
    RTT_ARCHITECTURES,
    FigureData,
    ablation_link_speed,
    ablation_mss_lb_bypass,
    ablation_network_layer_forwarding,
    ablation_proxy_connections,
    ablation_tunnel_type,
    ablation_work_queue_count,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure_bandwidth_scaling,
    figure_chaos_degradation,
    overhead_summary,
)
from .study import (
    BASELINE_ARCHITECTURE,
    PAPER_ARCHITECTURES,
    ComparisonResult,
    compare_architectures,
    deployment_comparison,
)
from .tables import (
    TABLE1_COLUMNS,
    architecture_comparison_rows,
    architecture_comparison_text,
    table1_rows,
    table1_text,
)

__all__ = [
    "ExperimentConfig",
    "run_experiment",
    "ComparisonResult",
    "compare_architectures",
    "deployment_comparison",
    "PAPER_ARCHITECTURES",
    "BASELINE_ARCHITECTURE",
    "FigureData",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure_bandwidth_scaling",
    "figure_chaos_degradation",
    "overhead_summary",
    "ablation_tunnel_type",
    "ablation_proxy_connections",
    "ablation_mss_lb_bypass",
    "ablation_link_speed",
    "ablation_work_queue_count",
    "ablation_network_layer_forwarding",
    "FIGURE4_ARCHITECTURES",
    "RTT_ARCHITECTURES",
    "BROADCAST_ARCHITECTURES",
    "table1_rows",
    "table1_text",
    "TABLE1_COLUMNS",
    "architecture_comparison_rows",
    "architecture_comparison_text",
]
