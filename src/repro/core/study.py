"""Comparative-study API: the paper's primary contribution as a library.

The paper's contribution is not a single algorithm but a *controlled
comparison*: deploy DTS, PRS and MSS on the same infrastructure, drive them
with the same workloads and messaging patterns, and quantify throughput,
RTT and overhead relative to DTS.  :func:`compare_architectures` packages
exactly that loop; :func:`deployment_comparison` reproduces the qualitative
feasibility comparison of §2/§6 from actually-deployed architectures.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

from ..architectures import DeploymentReport, TestbedConfig
from ..harness import (
    ExecutionBackend,
    ExecutionPolicy,
    ExperimentConfig,
    ExperimentResult,
    PointFailure,
    ScenarioSet,
    run_scenarios,
)
from ..metrics import OverheadResult, overhead_table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..harness import ResultCache

__all__ = ["ComparisonResult", "compare_architectures", "deployment_comparison",
           "PAPER_ARCHITECTURES", "BASELINE_ARCHITECTURE"]

#: The architecture labels evaluated in the paper's figures.
PAPER_ARCHITECTURES = ("DTS", "PRS(Stunnel)", "PRS(HAProxy)",
                       "PRS(HAProxy,4conns)", "MSS")

#: §5.2: DTS is the overhead baseline.
BASELINE_ARCHITECTURE = "DTS"


@dataclass
class ComparisonResult:
    """Per-architecture results plus overhead factors for one scenario."""

    config: ExperimentConfig
    results: dict[str, ExperimentResult] = field(default_factory=dict)
    baseline: str = BASELINE_ARCHITECTURE
    #: Architectures whose point exhausted the execution policy's attempts.
    failures: list[PointFailure] = field(default_factory=list)

    def throughput_overheads(self) -> list[OverheadResult]:
        values = {label: result.throughput_msgs_per_s
                  for label, result in self.results.items() if result.feasible}
        if self.baseline not in values:
            return []
        return overhead_table(values, baseline=self.baseline,
                              metric="throughput_msgs_per_s", higher_is_better=True)

    def rtt_overheads(self) -> list[OverheadResult]:
        values = {label: result.median_rtt_s
                  for label, result in self.results.items()
                  if result.feasible and result.rtt_samples.size}
        if self.baseline not in values:
            return []
        return overhead_table(values, baseline=self.baseline,
                              metric="median_rtt_s", higher_is_better=False)

    def rows(self) -> list[dict]:
        rows = []
        overhead = {o.architecture: o.factor for o in self.throughput_overheads()}
        rtt_overhead = {o.architecture: o.factor for o in self.rtt_overheads()}
        for label, result in self.results.items():
            row = result.as_row()
            row["throughput_overhead_vs_dts"] = overhead.get(label, 1.0 if label == self.baseline else float("nan"))
            row["rtt_overhead_vs_dts"] = rtt_overhead.get(label, 1.0 if label == self.baseline else float("nan"))
            rows.append(row)
        return rows


def compare_architectures(*, workload: str = "Dstream",
                          pattern: str = "work_sharing",
                          consumers: int = 4,
                          producers: Optional[int] = None,
                          architectures: Sequence[str] = PAPER_ARCHITECTURES,
                          messages_per_producer: int = 30,
                          runs: int = 1,
                          seed: int = 1,
                          baseline: str = BASELINE_ARCHITECTURE,
                          testbed: Optional[TestbedConfig] = None,
                          jobs: Optional[int] = None,
                          backend: Optional[ExecutionBackend] = None,
                          cache: Optional["ResultCache"] = None,
                          policy: Optional[ExecutionPolicy] = None,
                          **config_overrides) -> ComparisonResult:
    """Run the same scenario through several architectures and compare.

    Returns a :class:`ComparisonResult` whose ``results`` map architecture
    labels to averaged :class:`~repro.harness.results.ExperimentResult`.
    ``jobs > 1`` runs the architectures in parallel through the unified
    scenario runner; results are identical to serial execution.  ``policy``
    adds per-point timeout/retry handling; with ``on_error="record"`` a
    crashed architecture lands in ``ComparisonResult.failures`` instead of
    aborting the comparison.
    """
    if pattern in ("broadcast", "broadcast_gather"):
        producer_count = 1
    else:
        producer_count = producers if producers is not None else consumers
    config = ExperimentConfig(
        architecture=baseline,
        workload=workload,
        pattern=pattern,
        num_producers=producer_count,
        num_consumers=consumers,
        messages_per_producer=messages_per_producer,
        runs=runs,
        seed=seed,
        testbed=testbed or TestbedConfig(),
        **config_overrides,
    )
    comparison = ComparisonResult(config=config, baseline=baseline)
    # equal_producers=False: the producer count is already fixed above (it
    # may legitimately differ from the consumer count).
    scenarios = ScenarioSet.grid(config, architectures=list(architectures),
                                 equal_producers=False)
    for outcome in run_scenarios(scenarios, jobs=jobs, backend=backend,
                                 cache=cache, policy=policy):
        if not outcome.ok:
            comparison.failures.append(PointFailure(
                label=outcome.point.label, axes=dict(outcome.point.axes),
                error=outcome.error or "", attempts=outcome.attempts))
            continue
        comparison.results[outcome.point.label] = outcome.result
    return comparison


def deployment_comparison(architectures: Iterable[str] = PAPER_ARCHITECTURES, *,
                          testbed_config: Optional[TestbedConfig] = None,
                          jobs: Optional[int] = None,
                          backend: Optional[ExecutionBackend] = None,
                          policy: Optional[ExecutionPolicy] = None
                          ) -> dict[str, DeploymentReport]:
    """Deploy each architecture (control plane only) and report feasibility.

    This regenerates the qualitative §2/§6 comparison — hop counts, firewall
    rules, exposed ports, administrative and user steps — from real deployed
    objects rather than prose.  Each architecture deploys on its own testbed
    with a distinct derived seed so the placements are independent.  Under a
    non-raising ``policy`` a crashed deployment is simply absent from the
    returned mapping.
    """
    config = testbed_config or TestbedConfig(producer_nodes=2, consumer_nodes=2)
    base = ExperimentConfig(testbed=config, seed=config.seed)
    scenarios = ScenarioSet.deployments(list(architectures), base)
    return {outcome.point.label: outcome.result
            for outcome in run_scenarios(scenarios, jobs=jobs, backend=backend,
                                         policy=policy)
            if outcome.ok}
