"""Comparative-study API: the paper's primary contribution as a library.

The paper's contribution is not a single algorithm but a *controlled
comparison*: deploy DTS, PRS and MSS on the same infrastructure, drive them
with the same workloads and messaging patterns, and quantify throughput,
RTT and overhead relative to DTS.  :func:`compare_architectures` packages
exactly that loop; :func:`deployment_comparison` reproduces the qualitative
feasibility comparison of §2/§6 from actually-deployed architectures.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

from ..architectures import DeploymentReport, TestbedConfig
from ..harness import (
    ExecutionBackend,
    ExecutionPolicy,
    ExperimentConfig,
    ExperimentResult,
    PointFailure,
    ScenarioSet,
    Session,
    run_scenarios,
)
from ..metrics import OverheadResult, overhead_table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..harness import ResultCache

__all__ = ["ComparisonResult", "compare_architectures", "deployment_comparison",
           "PAPER_ARCHITECTURES", "BASELINE_ARCHITECTURE"]

#: The architecture labels evaluated in the paper's figures.
PAPER_ARCHITECTURES = ("DTS", "PRS(Stunnel)", "PRS(HAProxy)",
                       "PRS(HAProxy,4conns)", "MSS")

#: §5.2: DTS is the overhead baseline.
BASELINE_ARCHITECTURE = "DTS"


@dataclass
class ComparisonResult:
    """Per-architecture results plus overhead factors for one scenario.

    With extra ``axes`` (see :func:`compare_architectures`) the comparison
    repeats at every axis coordinate: ``grid`` maps coordinate tuples (axis
    values, in ``axes``' key order) to per-architecture results, overheads
    are computed within each coordinate group, and :meth:`rows` gains one
    column per axis.  Without extra axes there is a single empty coordinate
    and ``results`` keeps the historical label-keyed view.
    """

    config: ExperimentConfig
    results: dict[str, ExperimentResult] = field(default_factory=dict)
    baseline: str = BASELINE_ARCHITECTURE
    #: Architectures whose point exhausted the execution policy's attempts.
    failures: list[PointFailure] = field(default_factory=list)
    #: Extra swept axes: name -> values (empty for a plain comparison).
    axes: dict[str, tuple] = field(default_factory=dict)
    #: grid[(axis values...)][architecture] -> ExperimentResult.
    grid: dict[tuple, dict[str, ExperimentResult]] = field(default_factory=dict)

    def _group_overheads(self, results: dict[str, ExperimentResult],
                         metric: str, higher_is_better: bool
                         ) -> list[OverheadResult]:
        if metric == "median_rtt_s":
            values = {label: result.median_rtt_s
                      for label, result in results.items()
                      if result.feasible and result.rtt_samples.size}
        else:
            values = {label: getattr(result, metric)
                      for label, result in results.items() if result.feasible}
        if self.baseline not in values:
            return []
        return overhead_table(values, baseline=self.baseline, metric=metric,
                              higher_is_better=higher_is_better)

    def _require_single_coordinate(self) -> None:
        if self.axes:
            raise ValueError(
                "this comparison swept extra axes, so overheads are "
                "per-coordinate; read them from rows() or compute on "
                "grid[coordinate] instead")

    def throughput_overheads(self) -> list[OverheadResult]:
        self._require_single_coordinate()
        return self._group_overheads(self.results, "throughput_msgs_per_s",
                                     higher_is_better=True)

    def rtt_overheads(self) -> list[OverheadResult]:
        self._require_single_coordinate()
        return self._group_overheads(self.results, "median_rtt_s",
                                     higher_is_better=False)

    def rows(self) -> list[dict]:
        axis_names = tuple(self.axes)
        grid = self.grid or {(): dict(self.results)}
        rows = []
        for coordinate, by_label in grid.items():
            overhead = {o.architecture: o.factor for o in self._group_overheads(
                by_label, "throughput_msgs_per_s", higher_is_better=True)}
            rtt_overhead = {o.architecture: o.factor for o in self._group_overheads(
                by_label, "median_rtt_s", higher_is_better=False)}
            for label, result in by_label.items():
                row = result.as_row()
                row.update(dict(zip(axis_names, coordinate)))
                row["throughput_overhead_vs_dts"] = overhead.get(
                    label, 1.0 if label == self.baseline else float("nan"))
                row["rtt_overhead_vs_dts"] = rtt_overhead.get(
                    label, 1.0 if label == self.baseline else float("nan"))
                rows.append(row)
        return rows


def compare_architectures(*, workload: str = "Dstream",
                          pattern: str = "work_sharing",
                          consumers: int = 4,
                          producers: Optional[int] = None,
                          architectures: Sequence[str] = PAPER_ARCHITECTURES,
                          messages_per_producer: int = 30,
                          runs: int = 1,
                          seed: int = 1,
                          baseline: str = BASELINE_ARCHITECTURE,
                          testbed: Optional[TestbedConfig] = None,
                          axes: Optional[dict] = None,
                          session: Optional[Session] = None,
                          jobs: Optional[int] = None,
                          backend: Optional[ExecutionBackend] = None,
                          cache: Optional["ResultCache"] = None,
                          policy: Optional[ExecutionPolicy] = None,
                          **config_overrides) -> ComparisonResult:
    """Run the same scenario through several architectures and compare.

    Returns a :class:`ComparisonResult` whose ``results`` map architecture
    labels to averaged :class:`~repro.harness.results.ExperimentResult`.
    ``session`` carries the execution context; a parallel session runs the
    architectures concurrently through the unified scenario runner with
    results identical to serial execution, and under a session policy with
    ``on_error="record"`` a crashed architecture lands in
    ``ComparisonResult.failures`` instead of aborting the comparison.  The
    ``jobs``/``backend``/``cache``/``policy`` keywords are the deprecated
    pre-session bundle (they build a session internally and warn once per
    process).

    ``axes`` forwards extra sweep axes to
    :meth:`~repro.harness.ScenarioSet.product` (dotted config paths such as
    ``{"testbed.dsn_count": [1, 3, 5]}``): the whole comparison repeats at
    every axis coordinate, with overheads computed against the baseline *at
    the same coordinate*; results land in ``ComparisonResult.grid`` and
    :meth:`ComparisonResult.rows` gains one column per axis.
    """
    session = Session.resolve(session, backend=backend, jobs=jobs,
                              cache=cache, policy=policy,
                              where="compare_architectures")
    if pattern in ("broadcast", "broadcast_gather"):
        producer_count = 1
    else:
        producer_count = producers if producers is not None else consumers
    config = ExperimentConfig(
        architecture=baseline,
        workload=workload,
        pattern=pattern,
        num_producers=producer_count,
        num_consumers=consumers,
        messages_per_producer=messages_per_producer,
        runs=runs,
        seed=seed,
        testbed=testbed or TestbedConfig(),
        **config_overrides,
    )
    comparison = ComparisonResult(config=config, baseline=baseline)
    if axes:
        if "architecture" in axes:
            raise ValueError("pass extra sweep axes only; the architecture "
                             "axis comes from the architectures argument")
        # equal_producers=False: the producer count is already fixed above.
        scenarios = ScenarioSet.product(
            config, {"architecture": list(architectures), **axes},
            equal_producers=False)
        axis_names = tuple(axes)
        comparison.axes = {
            name: tuple(dict.fromkeys(point.axes[name]
                                      for point in scenarios))
            for name in axis_names}
    else:
        scenarios = ScenarioSet.grid(config,
                                     architectures=list(architectures),
                                     equal_producers=False)
        axis_names = ()
    for outcome in run_scenarios(scenarios, session=session):
        if not outcome.ok:
            comparison.failures.append(PointFailure(
                label=outcome.point.label, axes=dict(outcome.point.axes),
                error=outcome.error or "", attempts=outcome.attempts))
            continue
        coordinate = tuple(outcome.point.axes[name] for name in axis_names)
        comparison.grid.setdefault(coordinate, {})[outcome.point.label] = (
            outcome.result)
        if not axis_names:
            comparison.results[outcome.point.label] = outcome.result
    return comparison


def deployment_comparison(architectures: Iterable[str] = PAPER_ARCHITECTURES, *,
                          testbed_config: Optional[TestbedConfig] = None,
                          session: Optional[Session] = None,
                          jobs: Optional[int] = None,
                          backend: Optional[ExecutionBackend] = None,
                          policy: Optional[ExecutionPolicy] = None
                          ) -> dict[str, DeploymentReport]:
    """Deploy each architecture (control plane only) and report feasibility.

    This regenerates the qualitative §2/§6 comparison — hop counts, firewall
    rules, exposed ports, administrative and user steps — from real deployed
    objects rather than prose.  Each architecture deploys on its own testbed
    with a distinct derived seed so the placements are independent.
    ``session`` carries the execution context (deployment points are never
    cached, so a session cache is simply unused here); under a non-raising
    session policy a crashed deployment is simply absent from the returned
    mapping.  ``jobs``/``backend``/``policy`` are the deprecated
    pre-session bundle.
    """
    session = Session.resolve(session, backend=backend, jobs=jobs,
                              policy=policy, where="deployment_comparison")
    config = testbed_config or TestbedConfig(producer_nodes=2, consumer_nodes=2)
    base = ExperimentConfig(testbed=config, seed=config.seed)
    scenarios = ScenarioSet.deployments(list(architectures), base)
    return {outcome.point.label: outcome.result
            for outcome in run_scenarios(scenarios, session=session)
            if outcome.ok}
