"""Deterministic fault injection (chaos axes) for the streaming simulator.

``repro.faults`` adds a robustness dimension the paper never tests: every
:class:`~repro.harness.config.ExperimentConfig` can carry a
:class:`FaultPlan` whose primary axes (``faults.broker_kill_rate``,
``faults.link_flap``, ``faults.link_degradation``,
``faults.consumer_churn``, ``faults.slow_consumer``) sweep like any other
dotted grid coordinate through :meth:`ScenarioSet.product
<repro.harness.runner.ScenarioSet.product>` and
:func:`~repro.harness.sweep.sensitivity_sweep`.

Determinism contract: plans expand into :class:`FaultSpec` schedules using
derived RNG streams only (``streams.stream("faults", <kind>)``), one stream
per fault kind, so chaos runs are bit-reproducible and byte-identical
across the serial/process/thread backends — and ``faults=None`` (or the
inactive all-zero plan) is the *exact* pre-fault code path, preserving the
committed golden digests.
"""

from .injector import FaultInjector
from .spec import FAULT_AXES, FAULT_KINDS, FaultPlan, FaultSpec

__all__ = ["FaultPlan", "FaultSpec", "FaultInjector",
           "FAULT_AXES", "FAULT_KINDS"]
