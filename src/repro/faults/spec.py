"""Fault-plan and fault-event dataclasses.

A :class:`FaultPlan` is the *sweepable* description of the chaos applied to
one experiment point: five primary axes (kill rates, link weather, consumer
churn, slow consumers) plus the secondary knobs that shape each fault
(downtimes, weather windows, scheduling horizon).  Plans are frozen,
picklable and JSON round-trippable so they ride on
:class:`~repro.harness.config.ExperimentConfig` through every execution
backend and the result cache.

A :class:`FaultSpec` is one *concrete scheduled event* — "kill broker rmqs2
at t=1.37 s for 1.0 s" — expanded deterministically from a plan by
:meth:`FaultPlan.expand` using derived RNG streams
(``streams.stream("faults", <kind>)``).  Each fault kind draws from its own
stream, so enabling one axis never shifts another axis' draws and a chaos
sweep stays bit-reproducible across serial/process/thread backends.

Rate semantics: each ``*_rate``-style axis is the **expected number of
events over the plan's** ``horizon_s`` (integer parts are exact, the
fractional part is realized as a Bernoulli draw), with event times uniform
over ``[0, horizon_s)`` relative to measurement start.  ``slow_consumer``
and ``link_degradation`` are *levels*, not rates: extra seconds of
per-message compute and the fractional bandwidth lost during weather
windows.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Sequence

__all__ = ["FaultSpec", "FaultPlan", "FAULT_KINDS", "FAULT_AXES"]

#: Event kinds produced by :meth:`FaultPlan.expand`.
FAULT_KINDS = ("broker_kill", "link_flap", "link_degradation",
               "consumer_churn", "slow_consumer")

#: The sweepable primary axes (``faults.<axis>`` dotted grid paths).
FAULT_AXES = ("broker_kill_rate", "link_flap", "link_degradation",
              "consumer_churn", "slow_consumer")


@dataclass(frozen=True)
class FaultSpec:
    """One concrete scheduled fault event."""

    #: One of :data:`FAULT_KINDS`.
    kind: str
    #: Injection time relative to measurement start (seconds).
    time_s: float
    #: Target identifier: broker name, link name, or consumer index (as a
    #: string); empty for cluster-wide events such as weather windows.
    target: str = ""
    #: How long the fault lasts before the injector undoes it (seconds);
    #: 0 for permanent effects (slow consumers stay slow).
    duration_s: float = 0.0
    #: Fault magnitude for level-style kinds (degradation fraction, extra
    #: processing seconds); 0 for on/off kinds.
    value: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"expected one of {FAULT_KINDS}")
        if self.time_s < 0 or self.duration_s < 0:
            raise ValueError("fault time and duration must be non-negative")


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic chaos description for one experiment point.

    The default plan is **inactive**: every primary axis is zero, no RNG
    stream is ever opened and no simkit event is scheduled, so
    ``FaultPlan()`` is byte-identical to ``faults=None`` (the golden-digest
    contract).
    """

    # -- primary sweepable axes (``faults.<name>`` grid paths) ------------
    #: Expected broker kills over the horizon (each kill lasts
    #: ``broker_downtime_s``; the cluster re-leaders the victim's queues).
    broker_kill_rate: float = 0.0
    #: Expected link flaps over the horizon (each takes one link down for
    #: ``link_downtime_s``; queued frames wait out the outage).
    link_flap: float = 0.0
    #: Fractional bandwidth lost on every link during periodic weather
    #: windows (0 = clear skies, 0.5 = half the capacity).
    link_degradation: float = 0.0
    #: Expected consumer churn events over the horizon (each suspends one
    #: consumer's subscriptions — requeueing its unacked deliveries — for
    #: ``consumer_downtime_s``, then resubscribes).
    consumer_churn: float = 0.0
    #: Extra per-message processing seconds applied to
    #: ``slow_consumer_count`` victim consumers at measurement start.
    slow_consumer: float = 0.0

    # -- secondary knobs ---------------------------------------------------
    #: Window after measurement start (deployment end) within which fault
    #: events are scheduled.  Full-speed streaming drains small message
    #: batches in tens of *milliseconds* of simulated time, so the default
    #: horizon is sized to that active window — raise it for long
    #: rate-limited or large-batch runs.
    horizon_s: float = 0.05
    #: How long a killed broker stays down before it recovers.  Producers
    #: ride out the outage on their publish-retry backoff (budget ~2.3 s),
    #: so the run completes and the stall shows up as degraded throughput.
    broker_downtime_s: float = 0.2
    #: How long a flapped link stays down.
    link_downtime_s: float = 0.05
    #: Weather cycle: every ``weather_period_s`` a degradation window of
    #: ``weather_window_s`` opens (deterministic, no RNG).
    weather_period_s: float = 0.02
    weather_window_s: float = 0.01
    #: How long a churned consumer stays unsubscribed.
    consumer_downtime_s: float = 0.05
    #: Number of consumers slowed by the ``slow_consumer`` axis.
    slow_consumer_count: int = 1

    def __post_init__(self) -> None:
        for name in ("broker_kill_rate", "link_flap", "consumer_churn",
                     "slow_consumer"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if not 0.0 <= self.link_degradation < 1.0:
            raise ValueError("link_degradation must be in [0, 1)")
        if self.horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        for name in ("broker_downtime_s", "link_downtime_s",
                     "consumer_downtime_s"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.weather_period_s <= 0:
            raise ValueError("weather_period_s must be positive")
        if not 0.0 <= self.weather_window_s <= self.weather_period_s:
            raise ValueError("weather_window_s must be in "
                             "[0, weather_period_s]")
        if self.slow_consumer_count < 1:
            raise ValueError("slow_consumer_count must be >= 1")

    # -- introspection -----------------------------------------------------
    @property
    def active(self) -> bool:
        """Whether any primary axis would inject anything at all."""
        return any(getattr(self, name) > 0 for name in FAULT_AXES)

    def describe(self) -> dict:
        """Compact ``axis -> value`` dict of the non-zero primary axes."""
        return {name: getattr(self, name) for name in FAULT_AXES
                if getattr(self, name) > 0}

    # -- serialization -----------------------------------------------------
    def to_json_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_json_dict(cls, payload: dict) -> "FaultPlan":
        return cls(**payload)

    # -- schedule expansion ------------------------------------------------
    def expand(self, streams, *, brokers: Sequence[str],
               links: Sequence[str], consumers: int) -> list["FaultSpec"]:
        """Realize this plan into a sorted, deterministic event schedule.

        ``streams`` is the testbed's
        :class:`~repro.simkit.rand.RandomStreams`; every fault kind draws
        from its own derived stream (``streams.stream("faults", kind)``) so
        the schedule for one axis is independent of every other axis'
        setting.  Targets are chosen by integer draws over the *sorted*
        candidate listings, which makes the schedule a pure function of
        ``(seed, plan, topology)`` — the cross-backend byte-identity
        contract.  An inactive plan opens no stream and returns ``[]``.
        """
        if not self.active:
            return []
        specs: list[FaultSpec] = []
        if self.broker_kill_rate > 0 and brokers:
            rng = streams.stream("faults", "broker_kill")
            broker_names = sorted(brokers)
            for time_s in _event_times(rng, self.broker_kill_rate,
                                       self.horizon_s):
                target = broker_names[int(rng.integers(0, len(broker_names)))]
                specs.append(FaultSpec("broker_kill", time_s, target,
                                       self.broker_downtime_s))
        if self.link_flap > 0 and links:
            rng = streams.stream("faults", "link_flap")
            link_names = sorted(links)
            for time_s in _event_times(rng, self.link_flap, self.horizon_s):
                target = link_names[int(rng.integers(0, len(link_names)))]
                specs.append(FaultSpec("link_flap", time_s, target,
                                       self.link_downtime_s))
        if self.link_degradation > 0:
            # Deterministic periodic weather windows; no RNG involved.
            start = 0.0
            while start < self.horizon_s:
                specs.append(FaultSpec("link_degradation", start,
                                       duration_s=self.weather_window_s,
                                       value=self.link_degradation))
                start += self.weather_period_s
        if self.consumer_churn > 0 and consumers > 0:
            rng = streams.stream("faults", "consumer_churn")
            for time_s in _event_times(rng, self.consumer_churn,
                                       self.horizon_s):
                target = str(int(rng.integers(0, consumers)))
                specs.append(FaultSpec("consumer_churn", time_s, target,
                                       self.consumer_downtime_s))
        if self.slow_consumer > 0 and consumers > 0:
            rng = streams.stream("faults", "slow_consumer")
            count = min(self.slow_consumer_count, consumers)
            victims = [int(i) for i in rng.permutation(consumers)[:count]]
            for victim in sorted(victims):
                specs.append(FaultSpec("slow_consumer", 0.0, str(victim),
                                       value=self.slow_consumer))
        specs.sort(key=lambda s: (s.time_s, s.kind, s.target))
        return specs


def _event_times(rng, rate: float, horizon_s: float) -> list[float]:
    """Realize an expected event count into sorted times over the horizon.

    Integer parts of ``rate`` are exact (rate=2 always fires twice); the
    fractional part becomes one Bernoulli draw, so integer-valued sweeps
    produce exact monotone event counts.
    """
    count = int(rate)
    fraction = rate - count
    if fraction > 0.0 and float(rng.uniform(0.0, 1.0)) < fraction:
        count += 1
    return sorted(float(rng.uniform(0.0, horizon_s)) for _ in range(count))
