"""Event-scheduled fault injection for one experiment run.

The :class:`FaultInjector` turns a :class:`~repro.faults.spec.FaultPlan`
into simkit processes: it expands the plan into a deterministic
:class:`~repro.faults.spec.FaultSpec` timeline (derived RNG streams, sorted
targets — see :meth:`FaultPlan.expand`) and walks that timeline in one
driver process, applying each fault and scheduling its recovery.

Fault effects reuse the simulation layer's own failure semantics:

* ``broker_kill`` — :meth:`BrokerCluster.kill_broker` marks the broker
  down and re-leaders its queues onto the survivors; a revival process
  brings it back after the configured downtime (queues do not fail back).
* ``link_flap`` — pushes the link's ``down_until`` horizon forward; frames
  arriving during the outage wait it out before serializing.
* ``link_degradation`` — opens a weather window scaling every link's
  serialization time by ``1 / (1 - degradation)``, then restores it.
* ``consumer_churn`` — suspends one consumer's subscriptions (its unacked
  deliveries are requeued for the survivors) and resubscribes it after the
  downtime, preserving the logical fleet.
* ``slow_consumer`` — permanently adds processing seconds to the victim
  consumer apps at measurement start.

The injector is only ever constructed for an *active* plan; inactive plans
(`faults=None` or the all-zero default) never reach this module, which is
what keeps the no-fault code path byte-identical to the pre-fault engine.
"""

from __future__ import annotations

from typing import Generator, Sequence

from ..simkit import Environment
from .spec import FaultPlan, FaultSpec

__all__ = ["FaultInjector"]


class FaultInjector:
    """Applies a :class:`FaultPlan` to one running experiment."""

    def __init__(self, env: Environment, plan: FaultPlan, *, testbed,
                 consumers: Sequence) -> None:
        self.env = env
        self.plan = plan
        self.testbed = testbed
        self.cluster = testbed.broker_cluster
        self.network = testbed.network
        #: ConsumerApp list in ctx order (deterministic victim indexing).
        self.consumers = list(consumers)
        self.schedule: list[FaultSpec] = plan.expand(
            testbed.streams,
            brokers=[b.name for b in self.cluster.brokers],
            links=[link.name for link in self.network.links()],
            consumers=len(self.consumers))
        self._links_by_name = {link.name: link
                               for link in self.network.links()}
        #: kind -> number of events actually fired (for result.extra).
        self.fired: dict[str, int] = {}

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "FaultInjector":
        """Start the injection driver (call after the pattern is built)."""
        if self.schedule:
            self.env.process(self._drive(), name="fault-injector")
        return self

    def snapshot(self) -> dict:
        """Summary recorded into ``RunResult.extra["faults"]``."""
        return {
            "plan": self.plan.describe(),
            "scheduled": len(self.schedule),
            "fired": {kind: self.fired[kind] for kind in sorted(self.fired)},
        }

    # -- driver ------------------------------------------------------------
    def _drive(self) -> Generator:
        elapsed = 0.0
        for spec in self.schedule:
            if spec.time_s > elapsed:
                yield self.env.timeout(spec.time_s - elapsed)
                elapsed = spec.time_s
            self._fire(spec)
        # A schedule of only t=0 events still needs one yield to be a
        # well-formed process.
        yield self.env.timeout(0.0)

    def _fire(self, spec: FaultSpec) -> None:
        self.fired[spec.kind] = self.fired.get(spec.kind, 0) + 1
        if spec.kind == "broker_kill":
            self._kill_broker(spec)
        elif spec.kind == "link_flap":
            self._flap_link(spec)
        elif spec.kind == "link_degradation":
            self._open_weather_window(spec)
        elif spec.kind == "consumer_churn":
            self._churn_consumer(spec)
        elif spec.kind == "slow_consumer":
            self._slow_consumer(spec)

    # -- broker kills ------------------------------------------------------
    def _kill_broker(self, spec: FaultSpec) -> None:
        broker = self.cluster.broker_by_name(spec.target)
        if not broker.up:
            return  # already down from an overlapping kill
        self.cluster.kill_broker(broker)
        if spec.duration_s > 0:
            self.env.process(self._revive_broker(broker, spec.duration_s),
                             name=f"fault-revive:{broker.name}")

    def _revive_broker(self, broker, downtime_s: float) -> Generator:
        yield self.env.timeout(downtime_s)
        self.cluster.revive_broker(broker)

    # -- link weather ------------------------------------------------------
    def _flap_link(self, spec: FaultSpec) -> None:
        link = self._links_by_name[spec.target]
        until = self.env.now + spec.duration_s
        if until > link.down_until:
            link.down_until = until

    def _open_weather_window(self, spec: FaultSpec) -> None:
        slowdown = 1.0 / (1.0 - spec.value)
        for link in self.network.links():
            link.slowdown = slowdown
        if spec.duration_s > 0:
            self.env.process(self._close_weather_window(spec.duration_s),
                             name="fault-weather-close")

    def _close_weather_window(self, window_s: float) -> Generator:
        yield self.env.timeout(window_s)
        for link in self.network.links():
            link.slowdown = 1.0

    # -- consumer churn / slowdown ----------------------------------------
    def _churn_consumer(self, spec: FaultSpec) -> None:
        app = self.consumers[int(spec.target)]
        subscriber = app.endpoints.subscriber
        subscriber.suspend()
        if spec.duration_s > 0:
            self.env.process(self._resume_consumer(subscriber,
                                                   spec.duration_s),
                             name=f"fault-resume:{app.name}")

    def _resume_consumer(self, subscriber, downtime_s: float) -> Generator:
        yield self.env.timeout(downtime_s)
        subscriber.resume()

    def _slow_consumer(self, spec: FaultSpec) -> None:
        app = self.consumers[int(spec.target)]
        app.processing_time_s += spec.value
