"""SciStream User Client (S2UC).

The S2UC brokers a streaming session (§3.2, §4.4): it gathers short-lived
credentials, sends the *inbound request* to the consumer-side S2CS (which
returns a consumer proxy and a session UID), then sends the *outbound
request* — carrying that UID and the consumer proxy endpoint — to the
producer-side S2CS, which launches the producer proxy.  The result is a
:class:`~repro.scistream.control.ConnectionMap` describing the overlay
tunnel, after which the applications are signalled to begin transmission.
"""

from __future__ import annotations

from typing import Optional

from ..simkit import Environment, Monitor
from .control import ConnectionMap, StreamRequest, StreamReservation
from .s2cs import S2CS

__all__ = ["S2UC", "StreamingSession"]


class StreamingSession:
    """An established SciStream session: both proxies plus the map."""

    def __init__(self, connection_map: ConnectionMap,
                 producer_s2cs: S2CS, consumer_s2cs: S2CS) -> None:
        self.connection_map = connection_map
        self.producer_s2cs = producer_s2cs
        self.consumer_s2cs = consumer_s2cs

    @property
    def uid(self) -> str:
        return self.connection_map.uid

    @property
    def producer_proxy(self):
        return self.producer_s2cs.data_server(self.uid)

    @property
    def consumer_proxy(self):
        return self.consumer_s2cs.data_server(self.uid)

    def describe(self) -> dict:
        return self.connection_map.describe()


class S2UC:
    """User client orchestrating inbound/outbound requests."""

    #: Credential gathering before the first request.
    credential_latency_s = 0.1
    #: WAN round trip per control request.
    control_rtt_s = 0.05

    def __init__(self, env: Environment, name: str = "s2uc", *,
                 monitor: Optional[Monitor] = None) -> None:
        self.env = env
        self.name = name
        self.monitor = monitor or Monitor(f"s2uc:{name}")
        self.sessions: dict[str, StreamingSession] = {}

    def establish_session(self, *, producer_s2cs: S2CS, consumer_s2cs: S2CS,
                          remote_ip: str, target_ports: tuple[int, ...],
                          num_connections: int = 1,
                          proxy_type: str = "haproxy"):
        """Simulation process: run the two-step request flow, return a session."""
        yield self.env.timeout(self.credential_latency_s)

        # Step 1: inbound request to the consumer-side control server.
        inbound = StreamRequest(
            direction="inbound",
            server_cert=consumer_s2cs.server_cert,
            remote_ip=remote_ip,
            s2cs_address=f"{consumer_s2cs.gateway.name}:{30600}",
            receiver_ports=target_ports,
            num_connections=num_connections,
        )
        yield self.env.timeout(self.control_rtt_s)
        consumer_reservation: StreamReservation = yield from consumer_s2cs.handle_request(
            inbound, proxy_type=proxy_type)

        # Step 2: outbound request to the producer-side control server,
        # pointing at the consumer proxy and carrying the UID.
        outbound = StreamRequest(
            direction="outbound",
            server_cert=producer_s2cs.server_cert,
            remote_ip=remote_ip,
            s2cs_address=f"{producer_s2cs.gateway.name}:{30500}",
            receiver_ports=tuple(consumer_reservation.listener_ports),
            num_connections=num_connections,
            uid=consumer_reservation.uid,
        )
        yield self.env.timeout(self.control_rtt_s)
        producer_reservation: StreamReservation = yield from producer_s2cs.handle_request(
            outbound, proxy_type=proxy_type)

        connection_map = ConnectionMap(
            uid=consumer_reservation.uid,
            producer_reservation=producer_reservation,
            consumer_reservation=consumer_reservation,
            target_ports=target_ports,
        )
        session = StreamingSession(connection_map, producer_s2cs, consumer_s2cs)
        self.sessions[session.uid] = session
        self.monitor.count("sessions")
        return session

    def release_session(self, uid: str) -> None:
        session = self.sessions.pop(uid, None)
        if session is not None:
            session.producer_s2cs.release(uid)
            session.consumer_s2cs.release(uid)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<S2UC {self.name} sessions={len(self.sessions)}>"
