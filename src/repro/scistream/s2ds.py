"""SciStream Data Server (S2DS): the on-demand proxy instance.

An S2DS bridges the facility-internal network and the WAN: it authenticates
external peers with proxy certificates (mutual TLS on the tunnel) and
internal peers by source address, and forwards application bytes between
them (§3.2).  In the data path it behaves exactly like its backing
:class:`~repro.scistream.proxies.TunnelProxy`; this wrapper adds the session
identity (UID, side, listener ports) that the control plane tracks.
"""

from __future__ import annotations

from typing import Generator

from ..simkit import Environment
from ..netsim.message import Message
from .proxies import TunnelProxy

__all__ = ["S2DS"]


class S2DS:
    """One on-demand proxy serving one streaming session side."""

    def __init__(self, env: Environment, *, proxy: TunnelProxy, uid: str,
                 side: str, listener_ports: list[int]) -> None:
        if side not in ("producer", "consumer"):
            raise ValueError("side must be 'producer' or 'consumer'")
        self.env = env
        self.proxy = proxy
        self.uid = uid
        self.side = side
        self.listener_ports = list(listener_ports)

    @property
    def name(self) -> str:
        return self.proxy.name

    @property
    def gateway_name(self) -> str:
        return self.proxy.host.name

    @property
    def primary_port(self) -> int:
        return self.listener_ports[0]

    def register_connections(self, count: int) -> None:
        self.proxy.register_connections(count)

    def traverse(self, message: Message) -> Generator:
        """Forward one message through the backing proxy."""
        yield from self.proxy.traverse(message)

    @property
    def messages_forwarded(self) -> float:
        counter = self.proxy.monitor.counters.get("messages")
        return counter.value if counter else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<S2DS uid={self.uid[:8]} side={self.side} "
                f"proxy={self.proxy.proxy_type} ports={self.listener_ports}>")
