"""SciStream control-plane protocol objects.

SciStream (§3.2) separates control and data planes.  The control plane is
driven by the user client (S2UC), which sends an *inbound request* to the
consumer-side control server (S2CS) and an *outbound request* to the
producer-side control server.  Each request carries the certificate of the
target S2CS, the remote peer's address, the ports the application listens
on, and the number of parallel connections; the responses carry the
allocated proxy (S2DS) listener ports and a unique identifier (UID) that
ties the two halves of a streaming session together.

These dataclasses model the protocol messages and the resulting
*connection map* (producer listeners ↔ tunnel ↔ consumer listeners).
"""

from __future__ import annotations

import itertools
import uuid
from dataclasses import dataclass, field

__all__ = [
    "StreamRequest",
    "StreamReservation",
    "ConnectionMap",
    "new_uid",
]

_request_ids = itertools.count(1)


def new_uid() -> str:
    """Generate the unique identifier returned by an inbound request."""
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class StreamRequest:
    """An inbound or outbound request issued by the S2UC."""

    direction: str                      # "inbound" (consumer side) or "outbound"
    server_cert: str                    # path/name of the target S2CS certificate
    remote_ip: str                      # the peer facility's address
    s2cs_address: str                   # host:port of the targeted S2CS
    receiver_ports: tuple[int, ...]     # application (or proxy) ports to bridge
    num_connections: int = 1
    uid: str = ""                       # empty for inbound; set for outbound
    request_id: int = field(default_factory=lambda: next(_request_ids))

    def __post_init__(self) -> None:
        if self.direction not in ("inbound", "outbound"):
            raise ValueError("direction must be 'inbound' or 'outbound'")
        if self.num_connections < 1:
            raise ValueError("num_connections must be >= 1")
        if not self.receiver_ports:
            raise ValueError("at least one receiver port is required")
        if self.direction == "outbound" and not self.uid:
            raise ValueError("outbound requests must carry the UID from the "
                             "inbound response")


@dataclass
class StreamReservation:
    """What an S2CS hands back: the proxy listeners it allocated."""

    uid: str
    side: str                           # "producer" or "consumer"
    gateway: str                        # gateway node the S2DS runs on
    listener_ports: list[int]
    num_connections: int
    bandwidth_bps: float

    @property
    def primary_port(self) -> int:
        return self.listener_ports[0]


@dataclass
class ConnectionMap:
    """The established mapping for one streaming session."""

    uid: str
    producer_reservation: StreamReservation
    consumer_reservation: StreamReservation
    target_ports: tuple[int, ...]

    @property
    def num_connections(self) -> int:
        return min(self.producer_reservation.num_connections,
                   self.consumer_reservation.num_connections)

    def describe(self) -> dict:
        return {
            "uid": self.uid,
            "producer_gateway": self.producer_reservation.gateway,
            "consumer_gateway": self.consumer_reservation.gateway,
            "producer_ports": list(self.producer_reservation.listener_ports),
            "consumer_ports": list(self.consumer_reservation.listener_ports),
            "target_ports": list(self.target_ports),
            "num_connections": self.num_connections,
        }
