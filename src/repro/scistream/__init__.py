"""SciStream-like memory-to-memory streaming toolkit substrate.

Models the control plane (S2UC user client, S2CS control servers, the
inbound/outbound request protocol and the resulting connection map) and the
data plane (S2DS on-demand proxies backed by Stunnel, HAProxy or Nginx
tunnels) used by the PRS architecture.
"""

from .control import ConnectionMap, StreamRequest, StreamReservation, new_uid
from .proxies import (
    PROXY_TYPES,
    HAProxyProxy,
    NginxProxy,
    ProxyError,
    StunnelProxy,
    TunnelProxy,
    make_proxy,
)
from .s2cs import CONTROL_PORT, STREAM_PORT_RANGE, S2CS
from .s2ds import S2DS
from .s2uc import S2UC, StreamingSession

__all__ = [
    "ConnectionMap",
    "StreamRequest",
    "StreamReservation",
    "new_uid",
    "TunnelProxy",
    "StunnelProxy",
    "HAProxyProxy",
    "NginxProxy",
    "ProxyError",
    "make_proxy",
    "PROXY_TYPES",
    "S2CS",
    "S2DS",
    "S2UC",
    "StreamingSession",
    "CONTROL_PORT",
    "STREAM_PORT_RANGE",
]
