"""Tunnel proxy implementations: Stunnel, HAProxy and Nginx.

SciStream's data servers (S2DS) can be backed by different proxy programs
(§4.4).  Their behavioural differences are exactly what the paper's PRS
results hinge on:

* **Stunnel** wraps traffic in a small number of long-lived TLS flows and
  performs *no load balancing*: all multiplexed application flows funnel
  through (effectively) one worker, and the deployment could support at most
  16 simultaneous connections — configurations with 32 and 64 consumers were
  infeasible.  We model it as a single-worker proxy with a hard connection
  cap of 16 and a comparatively high per-message TLS cost.
* **HAProxy** load-balances across multiple worker connections, so it scales
  with consumer count until the gateway host or its 1 Gbps link saturates.
  Increasing the number of parallel client connections (``num_conn``) adds
  bookkeeping but little throughput, as the paper observes.
* **Nginx** is supported by SciStream but was not evaluated; it is provided
  here (as a stream-module style TCP proxy) for completeness and ablations.

Every proxy is a :class:`~repro.netsim.connection.Traversable` stage.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..simkit import Environment, Monitor, Resource
from ..netsim.message import HopRecord, Message
from ..netsim.node import NetworkNode
from ..netsim.tls import MUTUAL_TLS, NULL_TLS, TLSProfile

__all__ = ["ProxyError", "TunnelProxy", "StunnelProxy", "HAProxyProxy", "NginxProxy",
           "make_proxy", "PROXY_TYPES"]


class ProxyError(RuntimeError):
    """Raised when a proxy cannot satisfy a connection request."""


class TunnelProxy:
    """Base class for S2DS tunnel proxies."""

    #: Human-readable proxy type ("stunnel", "haproxy", "nginx").
    proxy_type = "generic"
    #: Messages the proxy software works on concurrently.
    worker_concurrency = 8
    #: Hard limit on simultaneous client connections (0 = unlimited).
    max_connections = 0
    #: Fixed per-message forwarding cost (socket copy, framing) in seconds.
    per_message_seconds = 25e-6
    #: Per-byte forwarding cost (userspace copy + cipher) in seconds/byte.
    per_byte_seconds = 2.0e-10
    #: TLS profile applied on the WAN-facing tunnel side.
    tunnel_tls: TLSProfile = MUTUAL_TLS

    def __init__(self, env: Environment, name: str, host: NetworkNode, *,
                 num_connections: int = 1,
                 monitor: Optional[Monitor] = None) -> None:
        if num_connections < 1:
            raise ValueError("num_connections must be >= 1")
        self.env = env
        self.name = name
        self.host = host
        self.num_connections = num_connections
        self.monitor = monitor or Monitor(f"proxy:{name}")
        # Per-message instruments, resolved by name exactly once.
        self._messages_counter = self.monitor.counter("messages")
        self._bytes_counter = self.monitor.counter("bytes")
        self._delay_series = self.monitor.timeseries("delay")
        self._workers = Resource(env, capacity=self.effective_concurrency())
        self._registered_connections = 0

    # -- capacity ------------------------------------------------------------
    def effective_concurrency(self) -> int:
        """Worker slots available to forward messages concurrently."""
        return max(1, self.worker_concurrency)

    def register_connections(self, count: int) -> None:
        """Reserve client connections on this proxy (raises when over the cap)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if self.max_connections and self._registered_connections + count > self.max_connections:
            raise ProxyError(
                f"{self.proxy_type} proxy {self.name!r} supports at most "
                f"{self.max_connections} simultaneous connections "
                f"({self._registered_connections} in use, {count} requested)")
        self._registered_connections += count
        self.monitor.count("connections", count)

    @property
    def registered_connections(self) -> int:
        return self._registered_connections

    # -- data path ------------------------------------------------------------
    def forwarding_cost(self, message: Message) -> float:
        """Per-message cost paid inside the proxy worker."""
        return (self.per_message_seconds
                + self.per_byte_seconds * message.wire_bytes
                + self.tunnel_tls.message_cost(message.wire_bytes))

    def traverse(self, message: Message) -> Generator:
        arrived = self.env.now
        # An aggregate message of multiplicity K pays K messages' worth of
        # forwarding work (exact at K=1); the host node scales its own cost.
        multiplicity = message.multiplicity
        with self._workers.request() as worker:
            yield worker
            # Host CPU (shared with everything else on the gateway node).
            yield from self.host.traverse(message, tls=NULL_TLS)
            # Proxy-software forwarding and tunnel crypto.
            yield self.env.timeout(self.forwarding_cost(message) * multiplicity)
        departed = self.env.now
        message.hops.append(HopRecord(self.name, "proxy", arrived, departed))
        self._messages_counter.value += float(multiplicity)
        self._bytes_counter.value += message.wire_bytes * multiplicity
        self._delay_series.record(arrived, departed - arrived)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<{type(self).__name__} {self.name} host={self.host.name} "
                f"conns={self._registered_connections}>")


class StunnelProxy(TunnelProxy):
    """Stunnel: few long-lived TLS flows, no load balancing, 16-connection cap.

    A single TLS-wrapped flow means all traffic funnels through one worker at
    roughly single-core AES throughput (~125 MB/s), which is what keeps the
    paper's Stunnel curves flat.
    """

    proxy_type = "stunnel"
    worker_concurrency = 1
    max_connections = 16
    per_message_seconds = 400e-6
    per_byte_seconds = 2.0e-8
    tunnel_tls = MUTUAL_TLS

    def effective_concurrency(self) -> int:
        # A single TLS-wrapped flow: no parallel forwarding regardless of the
        # number of client connections.
        return 1


class HAProxyProxy(TunnelProxy):
    """HAProxy: load-balancing TCP proxy; scales with parallel connections."""

    proxy_type = "haproxy"
    worker_concurrency = 8
    max_connections = 0
    per_message_seconds = 30e-6
    per_byte_seconds = 5.0e-10
    tunnel_tls = MUTUAL_TLS

    def effective_concurrency(self) -> int:
        # Extra parallel client connections add a little pipelining headroom
        # but the gateway host/link remains the real limit (the paper sees no
        # significant gain from 4 connections).
        return self.worker_concurrency + min(self.num_connections - 1, 4)


class NginxProxy(TunnelProxy):
    """Nginx stream proxy: similar to HAProxy with slightly higher overhead."""

    proxy_type = "nginx"
    worker_concurrency = 8
    max_connections = 0
    per_message_seconds = 35e-6
    per_byte_seconds = 6.0e-10
    tunnel_tls = MUTUAL_TLS


PROXY_TYPES = {
    "stunnel": StunnelProxy,
    "haproxy": HAProxyProxy,
    "nginx": NginxProxy,
}


def make_proxy(proxy_type: str, env: Environment, name: str, host: NetworkNode, *,
               num_connections: int = 1) -> TunnelProxy:
    """Factory used by S2CS when launching an S2DS with a given backend."""
    try:
        cls = PROXY_TYPES[proxy_type.lower()]
    except KeyError:
        raise ValueError(
            f"unknown proxy type {proxy_type!r}; expected one of {sorted(PROXY_TYPES)}"
        ) from None
    return cls(env, name, host, num_connections=num_connections)
