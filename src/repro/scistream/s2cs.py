"""SciStream Control Server (S2CS).

One S2CS runs on each gateway node (§3.2).  It listens for requests brokered
by the user client, allocates local resources — listener ports in the
5000/5100–5110 range and an on-demand proxy (S2DS) process — and reports the
allocation back so the S2UC can assemble the end-to-end connection map.

Security model: the S2CS authenticates the S2UC with its server certificate
(we model certificate names and check they match), generates a self-signed
TLS certificate for the proxy at start-up, and authenticates external peers
via the tunnel's mutual TLS.
"""

from __future__ import annotations

from typing import Optional

from ..simkit import Environment, Monitor
from ..netsim.node import NetworkNode
from .control import StreamRequest, StreamReservation, new_uid
from .proxies import TunnelProxy, make_proxy
from .s2ds import S2DS

__all__ = ["S2CS"]

#: Control port and streaming port range exposed by the S2CS container (§4.4).
CONTROL_PORT = 5000
STREAM_PORT_RANGE = (5100, 5110)


class S2CS:
    """Control server managing proxies on one gateway node."""

    #: Time to generate the self-signed certificate and start the server.
    startup_latency_s = 0.5
    #: Control-plane processing per request (validation, port bookkeeping).
    request_latency_s = 0.05
    #: Time to launch one S2DS proxy process.
    proxy_launch_latency_s = 0.2

    def __init__(self, env: Environment, name: str, gateway: NetworkNode, *,
                 side: str, server_cert: str,
                 default_bandwidth_bps: float = 1e9,
                 monitor: Optional[Monitor] = None) -> None:
        if side not in ("producer", "consumer"):
            raise ValueError("side must be 'producer' or 'consumer'")
        self.env = env
        self.name = name
        self.gateway = gateway
        self.side = side
        self.server_cert = server_cert
        self.default_bandwidth_bps = default_bandwidth_bps
        self.monitor = monitor or Monitor(f"s2cs:{name}")
        self._next_port = STREAM_PORT_RANGE[0]
        self.data_servers: dict[str, S2DS] = {}
        self.started = False

    # -- lifecycle -----------------------------------------------------------
    def start(self):
        """Simulation process: container start-up (cert generation, bind)."""
        if not self.started:
            yield self.env.timeout(self.startup_latency_s)
            self.started = True
        return self

    def _allocate_ports(self, count: int) -> list[int]:
        low, high = STREAM_PORT_RANGE
        ports = []
        for _ in range(count):
            if self._next_port > high:
                raise RuntimeError(f"S2CS {self.name!r} exhausted its port range")
            ports.append(self._next_port)
            self._next_port += 1
        return ports

    # -- control plane -----------------------------------------------------------
    def handle_request(self, request: StreamRequest, *, proxy_type: str = "haproxy"):
        """Simulation process: satisfy an inbound/outbound request.

        Allocates ports, launches an S2DS backed by ``proxy_type`` and
        returns a :class:`StreamReservation`.
        """
        if not self.started:
            yield from self.start()
        if request.server_cert != self.server_cert:
            self.monitor.count("auth_failures")
            raise PermissionError(
                f"certificate mismatch: expected {self.server_cert!r}, "
                f"got {request.server_cert!r}")
        yield self.env.timeout(self.request_latency_s)

        uid = request.uid or new_uid()
        ports = self._allocate_ports(max(1, request.num_connections))
        yield self.env.timeout(self.proxy_launch_latency_s)
        proxy = make_proxy(proxy_type, self.env, f"s2ds-{self.side}-{uid[:6]}",
                           self.gateway, num_connections=request.num_connections)
        # Note: listener allocation does not consume client-connection slots;
        # those are reserved when applications actually attach (register_connections).
        data_server = S2DS(self.env, proxy=proxy, uid=uid, side=self.side,
                           listener_ports=ports)
        self.data_servers[uid] = data_server
        self.monitor.count("requests")

        reservation = StreamReservation(
            uid=uid,
            side=self.side,
            gateway=self.gateway.name,
            listener_ports=ports,
            num_connections=request.num_connections,
            bandwidth_bps=self.default_bandwidth_bps,
        )
        return reservation

    def data_server(self, uid: str) -> S2DS:
        try:
            return self.data_servers[uid]
        except KeyError:
            raise KeyError(f"no S2DS for uid {uid!r} on {self.name!r}") from None

    def release(self, uid: str) -> None:
        self.data_servers.pop(uid, None)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<S2CS {self.name} side={self.side} gateway={self.gateway.name}>"
