"""The broadcast and gather pattern (§5.1, §5.5 / Figures 7–8).

The fan-out / fan-in collective of DDP training (NCCL/Gloo) and large-scale
metric aggregation: a single producer broadcasts the same message to all
consumers and — in the gather variant — every consumer sends a reply that
the same producer collects.  Following §5.2, both directions use the
publish–subscribe model: requests go through a fanout exchange copied into
one queue per consumer, and replies go to a gather queue from which the
single producer consumes all responses.
"""

from __future__ import annotations

from .apps import ConsumerApp, ProducerApp
from .base import ExperimentContext, MessagingPattern

__all__ = ["BroadcastPattern", "BroadcastGatherPattern"]


class BroadcastPattern(MessagingPattern):
    """Single producer fans the same message out to every consumer."""

    name = "broadcast"
    gather = False

    def __init__(self, *, exchange_name: str = "bcast",
                 gather_queue: str = "gather") -> None:
        self.exchange_name = exchange_name
        self.gather_queue = gather_queue

    # -- completion targets -----------------------------------------------------------
    def expected_consumed(self, config) -> int:
        # Every broadcast message is delivered to every consumer; the
        # single producer endpoint stands for ``config.population`` clients.
        return (config.messages_per_producer * config.num_consumers
                * config.population)

    def expected_replies(self, config) -> int:
        if not self.gather:
            return 0
        return (config.messages_per_producer * config.num_consumers
                * config.population)

    # -- wiring -----------------------------------------------------------
    def consumer_queue_name(self, consumer_name: str) -> str:
        return f"{self.exchange_name}.{consumer_name}"

    def build(self, ctx: ExperimentContext) -> None:
        config = ctx.config
        ctx.declare_fanout_exchange(self.exchange_name)

        consumer_queues = []
        for rank, _ in enumerate(ctx.consumer_endpoints):
            queue_name = self.consumer_queue_name(ctx.consumer_name(rank))
            ctx.declare_work_queue(queue_name)
            ctx.cluster.bind_queue(self.exchange_name, queue_name)
            consumer_queues.append(queue_name)

        reply_queues: dict[str, str] = {}
        if self.gather:
            ctx.declare_work_queue(self.gather_queue)
            reply_queues = {ctx.producer_name(0): self.gather_queue}
        ctx.coordinator.announce_queues(consumer_queues, reply_queues)

        # Consumers first (each on its own broadcast queue).
        for rank, endpoints in enumerate(ctx.consumer_endpoints):
            queue_name = self.consumer_queue_name(ctx.consumer_name(rank))
            endpoints.subscriber.subscribe(queue_name)
            app = ConsumerApp(ctx.env, ctx.consumer_name(rank), endpoints,
                              ctx.coordinator,
                              reply=self.gather,
                              reply_payload_bytes=ctx.workload.effective_reply_bytes,
                              reply_routing_key=self.gather_queue if self.gather else None,
                              processing_time_s=config.consumer_processing_time_s,
                              launch_delay_s=ctx.consumer_launch_delay(rank))
            self._start_consumer(ctx, app)

        # The single producer broadcasts through the fanout exchange and, in
        # the gather variant, also collects every consumer's reply.
        endpoints = ctx.producer_endpoints[0]
        replies_expected = 0
        if self.gather:
            endpoints.subscriber.subscribe(self.gather_queue)
            # ``collect_replies`` counts aggregate deliveries, so the target
            # must NOT scale with ``config.population`` (unlike the
            # coordinator's logical ``expected_replies``): each broadcast
            # round yields one aggregate reply per consumer, whatever
            # multiplicity it carries.
            replies_expected = config.messages_per_producer * config.num_consumers
        # In the gather variant the producer bounds the number of broadcast
        # *rounds* still awaiting replies (each round expects one reply per
        # consumer), mirroring a collective that waits for stragglers.
        max_outstanding = 0
        replies_per_message = 1
        if self.gather:
            replies_per_message = config.num_consumers
            if config.max_outstanding_requests:
                max_outstanding = (config.max_outstanding_requests
                                   * config.num_consumers)
        app = ProducerApp(ctx.env, ctx.producer_name(0), endpoints,
                          ctx.producer_generators[0], ctx.coordinator,
                          exchange=self.exchange_name,
                          routing_keys=[""],
                          reply_to=self.gather_queue if self.gather else None,
                          launch_delay_s=ctx.producer_launch_delay(0),
                          max_outstanding=max_outstanding,
                          replies_per_message=replies_per_message)
        self._start_producer(ctx, app,
                             messages=config.messages_per_producer,
                             replies_expected=replies_expected)


class BroadcastGatherPattern(BroadcastPattern):
    """Broadcast plus gather: the producer also collects all replies."""

    name = "broadcast_gather"
    gather = True
