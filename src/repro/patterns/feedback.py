"""The work sharing with feedback pattern (§5.1, §5.4 / Figures 5–6).

The distribute-with-reply loop of parameter-server deep learning and
master–worker task farms: requests are distributed through the shared work
queues exactly as in plain work sharing, but every consumer sends a reply
for each request, and the reply must reach the *originating* producer.
Following §5.2, replies use the direct-routing model with one dedicated
reply queue per producer, "ensuring that replies are routed back to the
correct producer" and eliminating misrouting.

The per-message metric is the round-trip time: producer publish → consumer
receipt → reply receipt at the producer.
"""

from __future__ import annotations

from .apps import ConsumerApp, ProducerApp
from .base import ExperimentContext, MessagingPattern

__all__ = ["WorkSharingFeedbackPattern"]


class WorkSharingFeedbackPattern(MessagingPattern):
    """Work queues for requests, per-producer direct reply queues."""

    name = "work_sharing_feedback"

    def __init__(self, *, queue_prefix: str = "work",
                 reply_prefix: str = "reply") -> None:
        self.queue_prefix = queue_prefix
        self.reply_prefix = reply_prefix

    # -- completion targets -----------------------------------------------------------
    def expected_consumed(self, config) -> int:
        # Logical units: each producer endpoint stands for
        # ``config.population`` clients.
        return (config.num_producers * config.messages_per_producer
                * config.population)

    def expected_replies(self, config) -> int:
        # One reply per request, delivered to the originating producer.
        return (config.num_producers * config.messages_per_producer
                * config.population)

    # -- wiring -----------------------------------------------------------
    def work_queue_names(self, config) -> list[str]:
        return [f"{self.queue_prefix}-{i}" for i in range(config.work_queue_count)]

    def reply_queue_name(self, producer_name: str) -> str:
        return f"{self.reply_prefix}.{producer_name}"

    def build(self, ctx: ExperimentContext) -> None:
        config = ctx.config
        queues = self.work_queue_names(config)
        for queue_name in queues:
            ctx.declare_work_queue(queue_name)

        reply_queues: dict[str, str] = {}
        for rank, _ in enumerate(ctx.producer_endpoints):
            producer_name = ctx.producer_name(rank)
            reply_queue = self.reply_queue_name(producer_name)
            ctx.declare_work_queue(reply_queue)
            reply_queues[producer_name] = reply_queue
        ctx.coordinator.announce_queues(queues, reply_queues)

        # Consumers first; they reply to whatever reply-to the request names.
        for rank, endpoints in enumerate(ctx.consumer_endpoints):
            for queue_name in queues:
                endpoints.subscriber.subscribe(queue_name)
            app = ConsumerApp(ctx.env, ctx.consumer_name(rank), endpoints,
                              ctx.coordinator,
                              reply=True,
                              reply_payload_bytes=ctx.workload.effective_reply_bytes,
                              processing_time_s=config.consumer_processing_time_s,
                              launch_delay_s=ctx.consumer_launch_delay(rank))
            self._start_consumer(ctx, app)

        for rank, endpoints in enumerate(ctx.producer_endpoints):
            producer_name = ctx.producer_name(rank)
            reply_queue = reply_queues[producer_name]
            endpoints.subscriber.subscribe(reply_queue)
            app = ProducerApp(ctx.env, producer_name, endpoints,
                              ctx.producer_generators[rank], ctx.coordinator,
                              routing_keys=queues,
                              reply_to=reply_queue,
                              launch_delay_s=ctx.producer_launch_delay(rank),
                              max_outstanding=config.max_outstanding_requests)
            # ``replies_expected`` is in aggregate deliveries: each of the
            # producer's aggregate requests returns exactly one aggregate
            # reply (carrying the population's multiplicity), regardless of
            # ``config.population``.
            self._start_producer(ctx, app,
                                 messages=config.messages_per_producer,
                                 replies_expected=config.messages_per_producer)
