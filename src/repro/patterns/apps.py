"""Producer and consumer application processes.

These are the simulated equivalents of the Go producers/consumers in the
paper's StreamSim client: each producer generates workload messages
according to its :class:`~repro.workloads.generator.WorkloadGenerator` and
publishes them through its architecture-specific connection; each consumer
receives deliveries, optionally produces a reply (feedback / gather), and
acknowledges in batches.  The messaging patterns compose these two apps with
different queue topologies.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..architectures.base import ClientEndpoints
from ..netsim.message import MessageFactory
from ..simkit import Environment
from ..workloads import WorkloadGenerator

__all__ = ["ProducerApp", "ConsumerApp"]


class ProducerApp:
    """One producer rank: generates and publishes workload messages."""

    def __init__(self, env: Environment, name: str, endpoints: ClientEndpoints,
                 generator: WorkloadGenerator, coordinator, *,
                 exchange: str = "",
                 routing_keys: list[str],
                 reply_to: Optional[str] = None,
                 launch_delay_s: float = 0.0,
                 max_outstanding: int = 0,
                 replies_per_message: int = 1) -> None:
        if not routing_keys:
            raise ValueError("a producer needs at least one routing key")
        self.env = env
        self.name = name
        self.endpoints = endpoints
        self.generator = generator
        self.coordinator = coordinator
        self.exchange = exchange
        self.routing_keys = list(routing_keys)
        self.reply_to = reply_to
        self.launch_delay_s = launch_delay_s
        #: Request/reply window: stop publishing while this many replies are
        #: still outstanding (0 = unlimited; only meaningful when replies are
        #: collected, i.e. the feedback and gather patterns).
        self.max_outstanding = int(max_outstanding)
        #: Replies each published message generates (1 for work sharing with
        #: feedback, the consumer count for broadcast and gather).
        self.replies_per_message = max(1, int(replies_per_message))
        #: Logical clients this producer stands for: 1 for a discrete
        #: client, K when driven by a ClientPopulation.  Stamped onto every
        #: created message as its multiplicity weight.
        self.multiplicity = max(1, int(getattr(generator, "multiplicity", 1)))
        self.factory = MessageFactory(name)
        self.sent = 0
        self.failed = 0
        self.replies_received = 0
        self._window_event = env.event()

    @property
    def outstanding(self) -> int:
        """Replies still expected for the requests published so far."""
        return max(0, self.sent * self.replies_per_message - self.replies_received)

    def publish_messages(self, count: int) -> Generator:
        """Simulation process: publish ``count`` messages, then flush confirms."""
        if self.launch_delay_s:
            yield self.env.timeout(self.launch_delay_s)
        yield from self.endpoints.publisher.connection.establish()
        for index in range(count):
            while self.max_outstanding and self.outstanding >= self.max_outstanding:
                yield self._window_event
                self._window_event = self.env.event()
            blueprint = self.generator.next_blueprint()
            routing_key = self.routing_keys[index % len(self.routing_keys)]
            message = self.factory.create(
                blueprint.payload_bytes,
                now=self.env.now,
                routing_key=routing_key,
                event_count=blueprint.event_count,
                payload_format=blueprint.payload_format,
                reply_to=self.reply_to,
                multiplicity=self.multiplicity,
                headers={**blueprint.headers, "producer": self.name},
            )
            self.coordinator.record_publish(message)
            ok = yield from self.endpoints.publisher.publish(
                message, exchange=self.exchange, routing_key=routing_key)
            if ok:
                self.sent += 1
            else:
                self.failed += 1
                self.coordinator.record_failed_publish(message)
            interval = self.generator.send_interval()
            if interval > 0:
                yield self.env.timeout(interval)
        yield from self.endpoints.publisher.flush_confirms()
        self.coordinator.record_producer_finished(self.name)

    def collect_replies(self, expected: int) -> Generator:
        """Simulation process: consume ``expected`` replies from the reply queue."""
        yield from self.endpoints.subscriber.connection.establish()
        received = 0
        while received < expected:
            reply = yield self.endpoints.subscriber.get()
            received += 1
            self.replies_received += 1
            if not self._window_event.triggered:
                self._window_event.succeed()
            self.coordinator.record_reply(reply, self.name)
            yield from self.endpoints.subscriber.ack(reply)
        yield from self.endpoints.subscriber.flush_acks()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ProducerApp {self.name} sent={self.sent}>"


class ConsumerApp:
    """One consumer rank: receives deliveries and optionally replies."""

    def __init__(self, env: Environment, name: str, endpoints: ClientEndpoints,
                 coordinator, *,
                 reply: bool = False,
                 reply_exchange: str = "",
                 reply_payload_bytes: float = 0.0,
                 reply_routing_key: Optional[str] = None,
                 processing_time_s: float = 0.0,
                 launch_delay_s: float = 0.0) -> None:
        self.env = env
        self.name = name
        self.endpoints = endpoints
        self.coordinator = coordinator
        self.reply = reply
        self.reply_exchange = reply_exchange
        self.reply_payload_bytes = reply_payload_bytes
        self.reply_routing_key = reply_routing_key
        self.processing_time_s = processing_time_s
        self.launch_delay_s = launch_delay_s
        self.received = 0
        self.replied = 0

    def consume_forever(self) -> Generator:
        """Simulation process: receive, (optionally) reply and acknowledge."""
        if self.launch_delay_s:
            yield self.env.timeout(self.launch_delay_s)
        yield from self.endpoints.subscriber.connection.establish()
        if self.reply:
            yield from self.endpoints.publisher.connection.establish()
        while True:
            message = yield self.endpoints.subscriber.get()
            self.received += 1
            if self.processing_time_s > 0:
                # An aggregate delivery carries one message per represented
                # client; the consumer-side compute scales with that logical
                # count (exact at multiplicity 1).
                yield self.env.timeout(self.processing_time_s
                                       * message.multiplicity)
            self.coordinator.record_consume(message, self.name)
            if self.reply:
                routing_key = self.reply_routing_key or message.reply_to
                if routing_key:
                    reply = message.make_reply(self.reply_payload_bytes, self.env.now)
                    reply.headers["consumer"] = self.name
                    ok = yield from self.endpoints.publisher.publish(
                        reply, exchange=self.reply_exchange, routing_key=routing_key)
                    if ok:
                        self.replied += 1
            yield from self.endpoints.subscriber.ack(message)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ConsumerApp {self.name} received={self.received}>"
