"""Messaging-pattern abstractions and the per-run experiment context.

§5.1 evaluates three messaging patterns — work sharing, work sharing with
feedback, and broadcast and gather — which map onto RabbitMQ queue models
(§5.2): the work-queue model for shared request queues, direct routing for
per-producer reply queues, and publish–subscribe (fanout) for broadcast and
gather.  A :class:`MessagingPattern` owns that queue topology and wires the
producer/consumer applications accordingly.

The :class:`ExperimentContext` carries everything a pattern needs for one
run: the environment, the deployed architecture, the attached client
endpoints, the workload generators and the coordinator.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..amqp import ExchangeType, QueuePolicy
from ..architectures import StreamingArchitecture, Testbed
from ..architectures.base import ClientEndpoints
from ..simkit import Environment
from ..workloads import ClientPopulation, WorkloadGenerator, WorkloadSpec
from .apps import ConsumerApp, ProducerApp

if TYPE_CHECKING:  # pragma: no cover
    from ..harness.config import ExperimentConfig
    from ..harness.coordinator import Coordinator

__all__ = ["ExperimentContext", "MessagingPattern"]


@dataclass
class ExperimentContext:
    """Everything one run of one experiment point needs."""

    env: Environment
    testbed: Testbed
    architecture: StreamingArchitecture
    config: "ExperimentConfig"
    workload: WorkloadSpec
    coordinator: "Coordinator"
    producer_endpoints: list[ClientEndpoints] = field(default_factory=list)
    consumer_endpoints: list[ClientEndpoints] = field(default_factory=list)
    #: One generator-like per producer endpoint: a bare
    #: :class:`WorkloadGenerator` or a :class:`ClientPopulation` wrapping it
    #: (the harness always wraps; populations of size 1 are discrete clients).
    producer_generators: "list[WorkloadGenerator | ClientPopulation]" = (
        field(default_factory=list))
    producer_launch_delays: list[float] = field(default_factory=list)
    consumer_launch_delays: list[float] = field(default_factory=list)
    producer_apps: list[ProducerApp] = field(default_factory=list)
    consumer_apps: list[ConsumerApp] = field(default_factory=list)

    # -- helpers used by patterns -----------------------------------------------------
    @property
    def cluster(self):
        return self.testbed.broker_cluster

    def declare_work_queue(self, name: str, *, is_control: bool = False):
        return self.testbed.declare_work_queue(name, is_control=is_control)

    def declare_fanout_exchange(self, name: str) -> None:
        self.cluster.declare_exchange(name, ExchangeType.FANOUT)

    def producer_name(self, rank: int) -> str:
        return f"prod-{rank}"

    def consumer_name(self, rank: int) -> str:
        return f"cons-{rank}"

    def producer_launch_delay(self, rank: int) -> float:
        if rank < len(self.producer_launch_delays):
            return self.producer_launch_delays[rank]
        return 0.0

    def consumer_launch_delay(self, rank: int) -> float:
        if rank < len(self.consumer_launch_delays):
            return self.consumer_launch_delays[rank]
        return 0.0


class MessagingPattern(abc.ABC):
    """A §5.1 messaging pattern: queue topology plus application wiring."""

    #: Identifier used in configs and results ("work_sharing", ...).
    name: str = "base"

    # -- completion targets -----------------------------------------------------------
    @abc.abstractmethod
    def expected_consumed(self, config: "ExperimentConfig") -> int:
        """Total consumer-side deliveries a complete run produces."""

    def expected_replies(self, config: "ExperimentConfig") -> int:
        """Total producer-side replies a complete run produces (0 = none)."""
        return 0

    # -- wiring -----------------------------------------------------------
    @abc.abstractmethod
    def build(self, ctx: ExperimentContext) -> None:
        """Declare queues/exchanges, create the apps and start their processes."""

    # -- shared helpers -----------------------------------------------------------
    def _start_consumer(self, ctx: ExperimentContext, app: ConsumerApp) -> None:
        ctx.consumer_apps.append(app)
        ctx.env.process(app.consume_forever(), name=f"consumer:{app.name}")

    def _start_producer(self, ctx: ExperimentContext, app: ProducerApp, *,
                        messages: int,
                        replies_expected: int = 0) -> None:
        ctx.producer_apps.append(app)
        ctx.env.process(app.publish_messages(messages), name=f"producer:{app.name}")
        if replies_expected:
            ctx.env.process(app.collect_replies(replies_expected),
                            name=f"replies:{app.name}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__}>"
