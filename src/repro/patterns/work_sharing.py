"""The work sharing pattern (§5.1, §5.3 / Figure 4).

Embarrassingly parallel fan-out: producers publish independent work items to
shared work queues and consumers take them round-robin, with no post-dispatch
communication (hyperparameter searches, Monte-Carlo ensembles, Slurm job
arrays).  Following §5.2 the default uses **two** shared work queues to
increase throughput; every consumer subscribes to every work queue and each
producer alternates its publishes across them.
"""

from __future__ import annotations

from .apps import ConsumerApp, ProducerApp
from .base import ExperimentContext, MessagingPattern

__all__ = ["WorkSharingPattern"]


class WorkSharingPattern(MessagingPattern):
    """Producers → shared work queues → consumers (no replies)."""

    name = "work_sharing"

    def __init__(self, *, queue_prefix: str = "work") -> None:
        self.queue_prefix = queue_prefix

    # -- completion targets -----------------------------------------------------------
    def expected_consumed(self, config) -> int:
        # Every published message is consumed by exactly one consumer.
        # Counts are logical: each producer endpoint stands for
        # ``config.population`` clients (1 = discrete clients).
        return (config.num_producers * config.messages_per_producer
                * config.population)

    # -- wiring -----------------------------------------------------------
    def work_queue_names(self, config) -> list[str]:
        return [f"{self.queue_prefix}-{i}" for i in range(config.work_queue_count)]

    def build(self, ctx: ExperimentContext) -> None:
        config = ctx.config
        queues = self.work_queue_names(config)
        for queue_name in queues:
            ctx.declare_work_queue(queue_name)
        ctx.coordinator.announce_queues(queues)

        # Consumers first (§5.2: consumers were started before producers).
        for rank, endpoints in enumerate(ctx.consumer_endpoints):
            for queue_name in queues:
                endpoints.subscriber.subscribe(queue_name)
            app = ConsumerApp(ctx.env, ctx.consumer_name(rank), endpoints,
                              ctx.coordinator,
                              processing_time_s=config.consumer_processing_time_s,
                              launch_delay_s=ctx.consumer_launch_delay(rank))
            self._start_consumer(ctx, app)

        for rank, endpoints in enumerate(ctx.producer_endpoints):
            app = ProducerApp(ctx.env, ctx.producer_name(rank), endpoints,
                              ctx.producer_generators[rank], ctx.coordinator,
                              routing_keys=queues,
                              launch_delay_s=ctx.producer_launch_delay(rank))
            self._start_producer(ctx, app, messages=config.messages_per_producer)
