"""Messaging patterns: work sharing, work sharing with feedback, broadcast
and gather (§5.1)."""

from .apps import ConsumerApp, ProducerApp
from .base import ExperimentContext, MessagingPattern
from .broadcast_gather import BroadcastGatherPattern, BroadcastPattern
from .feedback import WorkSharingFeedbackPattern
from .work_sharing import WorkSharingPattern

__all__ = [
    "ProducerApp",
    "ConsumerApp",
    "ExperimentContext",
    "MessagingPattern",
    "WorkSharingPattern",
    "WorkSharingFeedbackPattern",
    "BroadcastPattern",
    "BroadcastGatherPattern",
    "PATTERNS",
    "make_pattern",
]

#: Registry of messaging patterns by config name.
PATTERNS = {
    "work_sharing": WorkSharingPattern,
    "work_sharing_feedback": WorkSharingFeedbackPattern,
    "broadcast": BroadcastPattern,
    "broadcast_gather": BroadcastGatherPattern,
}


def make_pattern(name: str, **kwargs) -> MessagingPattern:
    """Instantiate a messaging pattern by its config name."""
    try:
        cls = PATTERNS[name]
    except KeyError:
        raise ValueError(f"unknown pattern {name!r}; "
                         f"expected one of {sorted(PATTERNS)}") from None
    return cls(**kwargs)
