"""L-rules and B-rules: lock discipline and the backend contract.

The concurrent-writer-safe cache (PR 7) holds exactly one invariant: every
byte that lands in a shard file travels through the read-merge-write
sequence under that shard's :func:`~repro.harness.cache.shard_lock`.  A
single write outside the lock reintroduces the lost-update bug the
multi-process stress test was built to kill — and nothing dynamic catches
it until two writers actually collide.  L001 makes the lexical form of
that invariant checkable; L002 guards its in-memory shadow (the
``_evicted`` set, which the locked merge consults to keep deliberate
evictions from resurrecting).

B001 encodes the backend registry contract from PR 4: a registered
backend's ``run`` must route point execution through the shared indexed
worker (``_execute_indexed`` / ``_attempt_point``) — that is where
:class:`~repro.harness.runner.ExecutionPolicy` timeouts, retries and
ordered reassembly live.  A backend that maps ``execute_point`` raw gets
none of them, and the failure mode (policy silently unenforced) is
invisible until a point hangs a distributed sweep.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from .engine import Rule, SourceFile, call_name, register_rule

__all__ = ["SHARD_PATH_NAME"]

#: Variable names that denote a cache shard file (or its temp sibling).
SHARD_PATH_NAME = re.compile(r"(^|_)(shard_path|shard_file|tmp_path)$")

#: Context-manager names that count as holding the shard lock.
_LOCK_CONTEXTS = frozenset({"shard_lock"})

#: ``os``-level calls that mutate the filesystem at their argument paths.
#: Maps call tail -> indices of the arguments that are *written* (for
#: ``os.replace``/``copyfile`` the destination, plus the source for
#: ``replace`` since moving a shard away is also a mutation).
_WRITE_CALLS = {
    "replace": (0, 1),
    "rename": (0, 1),
    "remove": (0,),
    "unlink": (0,),
    "copyfile": (1,),
    "copy": (1,),
    "move": (0, 1),
}

#: ``open(path, mode)`` modes that write.
_WRITE_MODES = ("w", "a", "x", "+")


def _is_shard_path(node: ast.AST) -> bool:
    return isinstance(node, ast.Name) and bool(
        SHARD_PATH_NAME.search(node.id))


def _under_shard_lock(source: SourceFile, node: ast.AST) -> bool:
    """Is ``node`` lexically inside ``with shard_lock(...):``?"""
    for ancestor in source.ancestors(node):
        if not isinstance(ancestor, (ast.With, ast.AsyncWith)):
            continue
        for item in ancestor.items:
            expr = item.context_expr
            if isinstance(expr, ast.Call):
                name = call_name(expr)
                if name.split(".")[-1] in _LOCK_CONTEXTS:
                    return True
    return False


def _open_write_mode(node: ast.Call) -> bool:
    mode: Optional[ast.AST] = node.args[1] if len(node.args) > 1 else None
    if mode is None:
        for keyword in node.keywords:
            if keyword.arg == "mode":
                mode = keyword.value
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return any(flag in mode.value for flag in _WRITE_MODES)
    return False


def check_shard_writes_locked(source: SourceFile
                              ) -> Iterator[tuple[int, str]]:
    """L001: every write to a shard path happens under ``shard_lock``."""
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        name = call_name(node)
        tail = name.split(".")[-1] if name else ""
        touched: list[ast.AST] = []
        if tail == "open" and name == "open":
            if node.args and _is_shard_path(node.args[0]) \
                    and _open_write_mode(node):
                touched.append(node.args[0])
        elif tail in _WRITE_CALLS:
            for index in _WRITE_CALLS[tail]:
                if index < len(node.args) and _is_shard_path(
                        node.args[index]):
                    touched.append(node.args[index])
        if not touched:
            continue
        if _under_shard_lock(source, node):
            continue
        yield (node.lineno,
               f"`{name}` writes a cache shard path outside a "
               f"`with shard_lock(...)` block — concurrent flushers "
               f"would reintroduce the lost-update bug")


def _function_touches_dirty_shards(func: ast.AST) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Attribute) and node.attr == "_dirty_shards":
            return True
    return False


def check_evicted_guarded(source: SourceFile) -> Iterator[tuple[int, str]]:
    """L002: ``_evicted`` mutations stay under the flush guard.

    A mutation counts as guarded when it is lexically inside a
    ``shard_lock`` context *or* its enclosing function also marks the
    affected shard dirty (``_dirty_shards``) — the dirty mark is what
    routes the eviction through the locked read-merge-write flush, so an
    eviction without it silently resurrects on the next merge.
    """
    mutators = ("add", "discard", "remove", "clear", "update", "pop")
    for node in ast.walk(source.tree):
        lineno: Optional[int] = None
        if isinstance(node, ast.Call) and isinstance(node.func,
                                                     ast.Attribute):
            receiver = node.func.value
            if node.func.attr in mutators and isinstance(
                    receiver, ast.Attribute) \
                    and receiver.attr == "_evicted":
                lineno = node.lineno
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            if any(isinstance(t, ast.Attribute) and t.attr == "_evicted"
                   for t in targets):
                lineno = node.lineno
        if lineno is None:
            continue
        if _under_shard_lock(source, node):
            continue
        func = source.enclosing_function(node)
        if func is not None and _function_touches_dirty_shards(func):
            continue
        yield (lineno,
               "`_evicted` mutated outside the flush guard: neither under "
               "`shard_lock` nor in a function that marks the shard dirty "
               "(`_dirty_shards`) — the locked merge would resurrect or "
               "drop the eviction")


def _is_stub_body(body: list[ast.stmt]) -> bool:
    """Protocol/ABC stubs (docstring + `...`/pass/raise) are not backends."""
    for stmt in body:
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value,
                                                     ast.Constant):
            continue  # docstring or bare `...`
        if isinstance(stmt, (ast.Pass, ast.Raise)):
            continue
        return False
    return True


def _looks_like_backend_run(method: ast.FunctionDef) -> bool:
    """The ExecutionBackend protocol shape: run(self, points, ...,
    policy=...).  Sweep-level run() methods (session/kwargs bundles, no
    ``points`` parameter) are not backends and are exempt."""
    arg_names = {arg.arg for arg in (method.args.args
                                     + method.args.kwonlyargs)}
    return (method.name == "run" and "policy" in arg_names
            and "points" in arg_names)


def check_backend_contract(source: SourceFile) -> Iterator[tuple[int, str]]:
    """B001: backend ``run`` routes through the indexed policy worker."""
    for node in ast.walk(source.tree):
        # Raw maps of execute_point bypass policy enforcement anywhere.
        if isinstance(node, ast.Call):
            name = call_name(node)
            tail = name.split(".")[-1] if name else ""
            if tail in ("map", "imap", "imap_unordered", "starmap"):
                if any(isinstance(arg, ast.Name)
                       and arg.id == "execute_point" for arg in node.args):
                    yield (node.lineno,
                           "mapping `execute_point` raw bypasses "
                           "ExecutionPolicy (timeout/retries/on_error); "
                           "route through `_execute_indexed`")
            continue
        if not isinstance(node, ast.ClassDef):
            continue
        for method in node.body:
            if not isinstance(method, ast.FunctionDef) \
                    or not _looks_like_backend_run(method):
                continue
            if _is_stub_body(method.body):
                continue  # the ExecutionBackend protocol itself
            routed = False
            for inner in ast.walk(method):
                if isinstance(inner, ast.Name) and inner.id in (
                        "_execute_indexed", "_attempt_point"):
                    routed = True
                    break
                if isinstance(inner, ast.Attribute) and inner.attr in (
                        "_execute_indexed", "_attempt_point"):
                    routed = True
                    break
                # Delegating to another backend's run() (not recursion on
                # self) inherits its policy enforcement.
                if isinstance(inner, ast.Call) and isinstance(
                        inner.func, ast.Attribute) \
                        and inner.func.attr == "run" \
                        and not (isinstance(inner.func.value, ast.Name)
                                 and inner.func.value.id == "self"):
                    routed = True
                    break
            if not routed:
                yield (method.lineno,
                       f"{node.name}.run() never routes points through "
                       f"`_execute_indexed`/`_attempt_point` (or another "
                       f"backend) — ExecutionPolicy timeouts/retries and "
                       f"ordered reassembly are silently unenforced")


register_rule(Rule(
    code="L001", name="shard-writes-locked", category="locking",
    rationale="every shard-file write must sit inside `with shard_lock` — "
              "one unlocked write reintroduces the lost-update bug",
    check=check_shard_writes_locked))

register_rule(Rule(
    code="L002", name="evicted-under-guard", category="locking",
    rationale="_evicted mutations must stay under the flush guard (lock "
              "or dirty-shard mark) so the locked merge honors them",
    check=check_evicted_guarded))

register_rule(Rule(
    code="B001", name="backend-policy-contract", category="backend",
    rationale="a registered backend's run() must route execution through "
              "_execute_indexed/policy enforcement, not raw map",
    check=check_backend_contract))
