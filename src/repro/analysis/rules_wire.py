"""P-rules: pickle/wire safety for objects crossing the backend boundary.

The process backend (and the planned SSH/Slurm backends) ship
:class:`~repro.harness.runner.ScenarioPoint` /
:class:`~repro.harness.runner.ExecutionPolicy` objects to workers and
:class:`~repro.harness.runner.PointOutcome` payloads back — pickled.  A
lambda, nested function, generator or open file handle stored in a field
of one of those classes pickles either not at all or (worse) differently
per process, which surfaces as a crash only when the first distributed
backend fans out.  And the simkit hot-path classes were deliberately made
``__slots__`` classes in the fast-kernel PR — silently losing slots (a
refactor dropping ``slots=True``) would re-grow per-instance dicts and
walk back a measured speedup without any test noticing.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .engine import Rule, SourceFile, register_rule

__all__ = ["WIRE_CLASSES", "HOT_PATH_SLOTS_CLASSES"]

#: Classes whose instances cross the process-backend boundary (or are
#: documented as picklable).  Fields holding lambdas, nested functions,
#: generator expressions, or open handles break that contract.
WIRE_CLASSES = frozenset({
    "ScenarioPoint",
    "ScenarioSet",
    "PointOutcome",
    "ExecutionPolicy",
    "ExperimentConfig",
    "ExperimentResult",
    "FaultSpec",
    "FaultPlan",
    "Session",
    "SerialBackend",
    "ProcessPoolBackend",
    "ThreadPoolBackend",
})

#: (file suffix, class name) pairs that must stay ``__slots__`` classes:
#: the fast-kernel hot path allocates these per event/message, and losing
#: slots re-grows instance dicts (a silent perf regression).
HOT_PATH_SLOTS_CLASSES = (
    ("simkit/core.py", "Event"),
    ("simkit/core.py", "Timeout"),
    ("simkit/core.py", "Process"),
    ("simkit/core.py", "Condition"),
    ("simkit/core.py", "Environment"),
    ("simkit/monitor.py", "Counter"),
    ("simkit/monitor.py", "TimeSeries"),
    ("simkit/rand.py", "BatchedUniform"),
    ("netsim/message.py", "Message"),
    ("netsim/message.py", "HopRecord"),
)


def _nested_function_names(func: ast.AST) -> set[str]:
    """Names of functions defined inside ``func``'s immediate body."""
    names: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and node is not func:
            names.add(node.name)
    return names


def _unpicklable_reason(value: ast.AST,
                        nested_names: set[str]) -> str:
    """Why this assigned expression cannot cross the wire ('' = fine)."""
    if isinstance(value, ast.Lambda):
        return "a lambda (unpicklable)"
    if isinstance(value, ast.GeneratorExp):
        return "a generator (unpicklable, and single-use)"
    if isinstance(value, ast.Call):
        func = value.func
        if isinstance(func, ast.Name) and func.id == "open":
            return "an open file handle (unpicklable, process-local)"
        if isinstance(func, ast.Name) and func.id in nested_names:
            # Calling a nested factory is fine; storing it is the hazard —
            # but a call *returning* its closure is indistinguishable
            # statically, so only direct storage is flagged below.
            return ""
    if isinstance(value, ast.Name) and value.id in nested_names:
        return "a nested function (unpicklable closure)"
    return ""


def check_wire_fields(source: SourceFile) -> Iterator[tuple[int, str]]:
    """P001: wire classes must not store unpicklable values in fields."""
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.ClassDef) or node.name not in WIRE_CLASSES:
            continue
        # Class-level (dataclass field) defaults.
        for stmt in node.body:
            value = None
            if isinstance(stmt, ast.Assign):
                value = stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                value = stmt.value
            if value is not None:
                reason = _unpicklable_reason(value, set())
                if reason:
                    yield (stmt.lineno,
                           f"wire class {node.name} default is {reason}; "
                           f"it cannot cross the process-backend boundary")
        # Instance attributes assigned in methods.
        for method in node.body:
            if not isinstance(method, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                continue
            nested = _nested_function_names(method)
            for stmt in ast.walk(method):
                if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                    continue
                targets = (stmt.targets if isinstance(stmt, ast.Assign)
                           else [stmt.target])
                stores_self_attr = any(
                    isinstance(t, ast.Attribute)
                    and isinstance(t.value, ast.Name)
                    and t.value.id == "self" for t in targets)
                if not stores_self_attr or stmt.value is None:
                    continue
                reason = _unpicklable_reason(stmt.value, nested)
                if reason:
                    yield (stmt.lineno,
                           f"wire class {node.name} stores {reason} in an "
                           f"instance field; it cannot cross the "
                           f"process-backend boundary")


def _has_slots(node: ast.ClassDef) -> bool:
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            if any(isinstance(t, ast.Name) and t.id == "__slots__"
                   for t in stmt.targets):
                return True
        elif isinstance(stmt, ast.AnnAssign):
            target = stmt.target
            if isinstance(target, ast.Name) and target.id == "__slots__":
                return True
    for decorator in node.decorator_list:
        if isinstance(decorator, ast.Call):
            for keyword in decorator.keywords:
                if keyword.arg == "slots" and isinstance(
                        keyword.value, ast.Constant) \
                        and keyword.value.value is True:
                    return True
    return False


def check_hot_path_slots(source: SourceFile) -> Iterator[tuple[int, str]]:
    """P002: hot-path slots classes must keep their ``__slots__``."""
    required = {name for suffix, name in HOT_PATH_SLOTS_CLASSES
                if source.rel_path.endswith(suffix)}
    if not required:
        return
    for node in ast.walk(source.tree):
        if isinstance(node, ast.ClassDef) and node.name in required \
                and not _has_slots(node):
            yield (node.lineno,
                   f"hot-path class {node.name} lost its __slots__ "
                   f"(declare __slots__ or @dataclass(slots=True)); "
                   f"instance dicts walk back the fast-kernel speedup")


register_rule(Rule(
    code="P001", name="wire-safe-fields", category="wire",
    rationale="classes crossing the process-backend boundary must not "
              "hold lambdas, nested functions, generators or open handles",
    check=check_wire_fields))

register_rule(Rule(
    code="P002", name="hot-path-slots", category="wire",
    rationale="slots dataclasses on the simkit/metrics hot path must stay "
              "slots (losing them is a silent perf regression)",
    check=check_hot_path_slots))
