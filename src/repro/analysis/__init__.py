"""repro.analysis — static determinism & concurrency linting.

AST-based rules that encode this repo's own invariants (derived RNG
seeding, no wall-clock in result paths, sorted directory listings,
pickle-safe wire classes, shard-lock write discipline, backend policy
routing) as a checkable contract: ``repro-streamsim lint`` / ``make lint``.

Public surface: the engine (:class:`Rule`, :class:`Finding`,
:func:`analyze_paths`, :func:`all_rules`), the baseline layer
(:class:`Baseline`), and the CLI glue (:func:`configure_lint_parser`,
:func:`run_lint`).
"""

from .baseline import Baseline, BaselineEntry, BASELINE_VERSION
from .cli import (
    DEFAULT_BASELINE,
    DEFAULT_FIXTURES,
    check_fixture_corpus,
    configure_lint_parser,
    run_lint,
    run_self_test,
)
from .engine import (
    AnalysisReport,
    Finding,
    LintError,
    PRAGMA_RE,
    Rule,
    SourceFile,
    all_rules,
    analyze_paths,
    analyze_source,
    call_name,
    get_rule,
    iter_python_files,
    register_rule,
    rule_codes,
)

__all__ = [
    "AnalysisReport",
    "Baseline",
    "BaselineEntry",
    "BASELINE_VERSION",
    "DEFAULT_BASELINE",
    "DEFAULT_FIXTURES",
    "Finding",
    "LintError",
    "PRAGMA_RE",
    "Rule",
    "SourceFile",
    "all_rules",
    "analyze_paths",
    "analyze_source",
    "call_name",
    "check_fixture_corpus",
    "configure_lint_parser",
    "get_rule",
    "iter_python_files",
    "register_rule",
    "rule_codes",
    "run_lint",
    "run_self_test",
]
