"""The ``repro-streamsim lint`` front end.

Exit codes (documented contract, relied on by ``make lint`` and CI):

* ``0`` — clean: no findings beyond pragmas and the baseline.
* ``1`` — findings: at least one new violation (or a self-test failure).
* ``2`` — usage: unknown rule, bad path, unreadable baseline.

Modes:

* default — lint the given paths (default ``src/repro``) against the
  baseline (default ``lint-baseline.json`` next to the current
  directory; a missing baseline file is simply empty).
* ``--update-baseline`` — rewrite the baseline from the current findings
  (post-pragma) and exit 0; the diff is the review surface.
* ``--self-test`` — run the rule fixture corpus
  (``tests/analysis/fixtures/<CODE>_positive.py`` must trip rule CODE,
  ``<CODE>_negative.py`` must not) so the analyzer itself cannot rot: a
  rule whose check stops firing fails the corpus, not just silently
  stops protecting the tree.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys

from .baseline import Baseline
from .engine import (
    LintError,
    SourceFile,
    all_rules,
    analyze_paths,
    analyze_source,
    get_rule,
)

__all__ = ["configure_lint_parser", "run_lint", "run_self_test",
           "DEFAULT_BASELINE", "DEFAULT_FIXTURES"]

#: Baseline committed at the repo root (``make lint`` runs from there).
DEFAULT_BASELINE = "lint-baseline.json"

#: Fixture corpus directory for ``--self-test``.
DEFAULT_FIXTURES = os.path.join("tests", "analysis", "fixtures")


def configure_lint_parser(sub) -> None:
    """Attach the ``lint`` subcommand to the main CLI's subparsers."""
    lint = sub.add_parser(
        "lint",
        help="static determinism/concurrency analysis over the repro "
             "source (AST rules, pragma + baseline suppression); exit "
             "codes: 0 clean, 1 findings, 2 usage")
    lint.add_argument(
        "paths", nargs="*", default=None,
        help="files or directories to lint (default: src/repro, falling "
             "back to the installed repro package)")
    lint.add_argument(
        "--rule", action="append", default=None, metavar="CODE",
        dest="rules",
        help="run only this rule (repeatable; see --list-rules)")
    lint.add_argument(
        "--list-rules", action="store_true", dest="list_rules",
        help="print the rule table (code, name, rationale) and exit")
    lint.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit findings as a JSON document instead of text")
    lint.add_argument(
        "--baseline", default=None, metavar="PATH",
        help=f"baseline file of accepted findings (default "
             f"{DEFAULT_BASELINE}; a missing file is an empty baseline)")
    lint.add_argument(
        "--no-baseline", action="store_true", dest="no_baseline",
        help="ignore any baseline file (report every finding)")
    lint.add_argument(
        "--update-baseline", action="store_true", dest="update_baseline",
        help="rewrite the baseline from the current findings and exit 0")
    lint.add_argument(
        "--root", default=None, metavar="DIR",
        help="directory findings/baseline paths are relative to "
             "(default: current directory)")
    lint.add_argument(
        "--self-test", action="store_true", dest="self_test",
        help="check every rule against its fixture corpus instead of "
             "linting the tree")
    lint.add_argument(
        "--fixtures", default=None, metavar="DIR",
        help=f"fixture corpus directory for --self-test "
             f"(default {DEFAULT_FIXTURES})")


def _default_paths() -> list[str]:
    if os.path.isdir(os.path.join("src", "repro")):
        return [os.path.join("src", "repro")]
    # Fall back to the installed package (linting an installed tree).
    package_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    return [package_root]


def _print_rule_table() -> None:
    rules = all_rules()
    width = max(len(rule.name) for rule in rules)
    for rule in rules:
        print(f"{rule.code}  {rule.name:<{width}}  [{rule.category}] "
              f"{rule.rationale}")


def run_lint(args: argparse.Namespace) -> int:
    """Entry point behind ``repro-streamsim lint``."""
    try:
        if args.list_rules:
            _print_rule_table()
            return 0
        if args.self_test:
            return run_self_test(args.fixtures or DEFAULT_FIXTURES)
        return _lint_tree(args)
    except LintError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _lint_tree(args: argparse.Namespace) -> int:
    paths = args.paths or _default_paths()
    rules = ([get_rule(code) for code in args.rules]
             if args.rules else None)
    report = analyze_paths(paths, rules, root=args.root)

    baseline_path = args.baseline or DEFAULT_BASELINE
    if args.update_baseline:
        Baseline.from_findings(report.findings).save(baseline_path)
        print(f"[lint] baseline updated: {len(report.findings)} entr"
              f"{'y' if len(report.findings) == 1 else 'ies'} written to "
              f"{baseline_path}")
        return 0

    matched = stale = 0
    findings = report.findings
    if not args.no_baseline:
        baseline = Baseline.load(baseline_path)
        findings, matched, stale = baseline.suppress(findings)

    if args.as_json:
        print(json.dumps({
            "version": 1,
            "checked_files": report.checked_files,
            "findings": [f.as_json_dict() for f in findings],
            "suppressed": {"pragmas": report.pragma_suppressed,
                           "baseline": matched},
            "stale_baseline_entries": stale,
        }, indent=2, sort_keys=True))
        return 1 if findings else 0

    for finding in findings:
        print(finding.render())
    summary = (f"[lint] {len(findings)} finding(s) in "
               f"{report.checked_files} file(s) "
               f"({report.pragma_suppressed} pragma-suppressed, "
               f"{matched} baselined)")
    print(summary, file=sys.stderr if findings else sys.stdout)
    if stale:
        print(f"[lint] note: {stale} baseline entr"
              f"{'y' if stale == 1 else 'ies'} no longer match any "
              f"finding — run --update-baseline to retire them",
              file=sys.stderr)
    return 1 if findings else 0


# ---------------------------------------------------------------------------
# Self-test: the fixture corpus
# ---------------------------------------------------------------------------

def check_fixture_corpus(fixtures_dir: str
                         ) -> tuple[list[str], list[str]]:
    """Run every rule against its fixtures: (passed, failures).

    Per rule ``CODE``, ``<CODE>_positive.py`` must produce at least one
    ``CODE`` finding and ``<CODE>_negative.py`` must produce none; a
    missing fixture file is itself a failure, so new rules cannot land
    without corpus coverage.

    A fixture may carry ``# lint-fixture: rel_path=repro/simkit/core.py``
    to impersonate a path — needed by path-scoped rules (P002's hot-path
    class list, D003's allowlist).
    """
    if not os.path.isdir(fixtures_dir):
        raise LintError(f"no fixture corpus at {fixtures_dir!r} "
                        f"(pass --fixtures DIR)")
    passed: list[str] = []
    failures: list[str] = []
    for rule in all_rules():
        for polarity, want in (("positive", True), ("negative", False)):
            name = f"{rule.code}_{polarity}.py"
            path = os.path.join(fixtures_dir, name)
            if not os.path.isfile(path):
                failures.append(f"{rule.code}: missing fixture {name}")
                continue
            with open(path, encoding="utf-8") as handle:
                text = handle.read()
            directive = re.search(
                r"#\s*lint-fixture:\s*rel_path=(\S+)", text)
            source = SourceFile(
                path, text,
                rel_path=directive.group(1) if directive else name)
            hits = [f for f in analyze_source(source, [rule])
                    if f.rule == rule.code]
            if want and not hits:
                failures.append(
                    f"{rule.code}: {name} produced no {rule.code} finding "
                    f"(the rule is not firing)")
            elif not want and hits:
                failures.append(
                    f"{rule.code}: {name} produced unexpected finding(s): "
                    + "; ".join(f.render() for f in hits))
            else:
                passed.append(f"{rule.code} {polarity}")
    return passed, failures


def run_self_test(fixtures_dir: str) -> int:
    passed, failures = check_fixture_corpus(fixtures_dir)
    for failure in failures:
        print(f"[lint self-test] FAIL {failure}", file=sys.stderr)
    print(f"[lint self-test] {len(passed)} fixture check(s) passed, "
          f"{len(failures)} failed "
          f"({len(all_rules())} rule(s) in the registry)")
    return 1 if failures else 0
