"""Committed lint baselines: carry reviewed historical findings.

A baseline file records the findings a reviewer has accepted (e.g.
``bench.py``'s snapshot timestamp — metadata, not result data) so
``repro-streamsim lint`` can exit clean on them while still failing on
anything *new*.  Entries match findings by ``(rule, file, context_hash)``
— the hash covers the rule code plus the stripped source line, never the
line number — so a baselined finding keeps matching after unrelated edits
move it up or down the file.  Matching is count-aware: two identical
baselined lines consume two entries, and a third identical new one still
fails.

The file is JSON (sorted, indented) so diffs review cleanly::

    {"version": 1, "entries": [
        {"rule": "D003", "file": "src/repro/harness/bench.py",
         "line": 408, "context": "created_at=datetime.now(...)",
         "context_hash": "..."}]}

``line`` and ``context`` are recorded for humans; only ``rule``, ``file``
and ``context_hash`` participate in matching.  ``--update-baseline``
rewrites the file from the current findings (after pragma suppression),
which is also how stale entries — findings that were since fixed — are
retired.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from .engine import Finding, LintError

__all__ = ["Baseline", "BaselineEntry", "BASELINE_VERSION"]

BASELINE_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding, matchable by (rule, file, context_hash)."""

    rule: str
    file: str
    context_hash: str
    line: int = 0
    context: str = ""

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.rule, self.file, self.context_hash)

    def as_json_dict(self) -> dict:
        return {"rule": self.rule, "file": self.file, "line": self.line,
                "context": self.context, "context_hash": self.context_hash}


@dataclass
class Baseline:
    """A set of accepted findings with count-aware matching."""

    entries: list[BaselineEntry] = field(default_factory=list)

    # -- construction -----------------------------------------------------------
    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        return cls(entries=[
            BaselineEntry(rule=f.rule, file=f.path,
                          context_hash=f.context_hash,
                          line=f.line, context=f.context)
            for f in findings])

    @classmethod
    def load(cls, path: str) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline (the
        common state for a clean tree), a malformed one is a hard error —
        silently ignoring a corrupt baseline would let every historical
        finding resurface as 'new'."""
        if not os.path.exists(path):
            return cls()
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise LintError(f"unreadable lint baseline {path!r}: {exc}"
                            ) from exc
        if not isinstance(payload, dict) \
                or payload.get("version") != BASELINE_VERSION:
            raise LintError(
                f"lint baseline {path!r} has version "
                f"{payload.get('version') if isinstance(payload, dict) else '?'!r}; "
                f"expected {BASELINE_VERSION}")
        entries = []
        for raw in payload.get("entries", []):
            try:
                entries.append(BaselineEntry(
                    rule=raw["rule"], file=raw["file"],
                    context_hash=raw["context_hash"],
                    line=int(raw.get("line", 0)),
                    context=raw.get("context", "")))
            except (KeyError, TypeError, ValueError) as exc:
                raise LintError(f"malformed baseline entry in {path!r}: "
                                f"{raw!r} ({exc})") from exc
        return cls(entries=entries)

    def save(self, path: str) -> None:
        """Write the baseline, entries sorted for stable diffs."""
        ordered = sorted(self.entries,
                         key=lambda e: (e.file, e.line, e.rule,
                                        e.context_hash))
        payload = {"version": BASELINE_VERSION,
                   "entries": [entry.as_json_dict() for entry in ordered]}
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")

    # -- matching -----------------------------------------------------------
    def suppress(self, findings: Sequence[Finding]
                 ) -> tuple[list[Finding], int, int]:
        """Split findings into (new, matched_count, stale_entry_count).

        Each baseline entry absorbs at most one finding with the same
        (rule, file, context_hash); surplus identical findings stay new.
        ``stale_entry_count`` is how many entries matched nothing — the
        finding was fixed and ``--update-baseline`` should retire it.
        """
        budget = Counter(entry.key for entry in self.entries)
        fresh: list[Finding] = []
        matched = 0
        for finding in findings:
            key = (finding.rule, finding.path, finding.context_hash)
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                matched += 1
            else:
                fresh.append(finding)
        stale = sum(budget.values())
        return fresh, matched, stale
