"""D-rules: determinism invariants.

Every simulation result in this repo is pinned by sha256 golden digests
and a parallel-vs-serial byte-identity matrix.  Those guarantees hold
only because *all* randomness derives from a scenario's config through
:func:`repro.simkit.rand.derive_seed` / :class:`~repro.simkit.rand.RandomStreams`,
no result-bearing code reads the wall clock, and no iteration order
depends on hash seeds or filesystem enumeration.  These rules make each
of those conventions a checkable contract.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from .engine import Rule, SourceFile, call_name, register_rule

__all__ = ["WALL_CLOCK_CALLS", "WALL_CLOCK_ALLOWED_FILES"]

#: (module-ish, attr) tails identifying a wall-clock read.  Matched on the
#: last two dotted components, so ``time.time()``, ``datetime.now()`` and
#: ``datetime.datetime.utcnow()`` all resolve.
WALL_CLOCK_CALLS = frozenset({
    ("time", "time"),
    ("time", "time_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("date", "today"),
})

#: Files (suffix-matched on "/"-separated relative paths) allowed to read
#: the wall clock: cache-admin *metadata* (profile manifests, display
#: timestamps) never feeds a simulation result.  Anything else needs a
#: line pragma or a baseline entry with a reviewed rationale.
WALL_CLOCK_ALLOWED_FILES = (
    "harness/cache_admin.py",
)

#: Calls that enumerate a directory in filesystem order.
_LISTING_CALLS = frozenset({"os.listdir", "os.scandir",
                            "glob.glob", "glob.iglob"})
_LISTING_METHODS = frozenset({"iterdir", "glob", "rglob"})

#: Wrapping one of these normalizes (or is insensitive to) input order.
_ORDER_NORMALIZERS = frozenset({"sorted", "min", "max", "len", "set",
                                "frozenset", "any", "all"})

#: Calls that schedule simulation events or feed ordered accumulators —
#: iteration order reaching one of these from an unordered container is a
#: reproducibility hazard.
_SCHEDULING_CALLS = frozenset({"schedule", "timeout", "succeed", "fail",
                               "process", "heappush", "heappop",
                               "call_later", "defer"})

#: Reductions whose float result depends on operand order.
_ORDER_SENSITIVE_REDUCERS = frozenset({"sum", "fsum", "mean", "median",
                                       "stdev", "variance", "cumsum",
                                       "dot", "prod"})

_ARITH_OPS = (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv, ast.Pow)


def _stdlib_random_aliases(source: SourceFile) -> set[str]:
    """Names the stdlib ``random`` module is bound to in this file."""
    aliases: set[str] = set()
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    aliases.add((alias.asname or alias.name).split(".")[0])
    return aliases


def check_no_stdlib_random(source: SourceFile) -> Iterator[tuple[int, str]]:
    """D001: the stdlib ``random`` module must not be used at all."""
    aliases = _stdlib_random_aliases(source)
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    yield (node.lineno,
                           "stdlib `random` imported; every stream must "
                           "derive from RandomStreams/derive_seed "
                           "(numpy Generators seeded per component)")
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0 and node.module and (
                    node.module == "random"
                    or node.module.startswith("random.")):
                yield (node.lineno,
                       "import from stdlib `random`; use "
                       "RandomStreams/derive_seed-seeded numpy Generators")
        elif isinstance(node, ast.Call):
            name = call_name(node)
            if name and name.split(".")[0] in aliases and "." in name:
                yield (node.lineno,
                       f"call to stdlib `{name}` draws from global, "
                       f"process-wide RNG state — parallel runs would "
                       f"diverge from serial")


def check_derived_rng_seed(source: SourceFile) -> Iterator[tuple[int, str]]:
    """D002: ``default_rng`` needs a derived seed, not a constant/nothing."""
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        name = call_name(node)
        if not name or name.split(".")[-1] != "default_rng":
            continue
        seed = node.args[0] if node.args else None
        if seed is None:
            for keyword in node.keywords:
                if keyword.arg == "seed":
                    seed = keyword.value
        if seed is None:
            yield (node.lineno,
                   "default_rng() without a seed draws OS entropy — "
                   "irreproducible; derive the seed with "
                   "derive_seed/RandomStreams")
        elif isinstance(seed, ast.Constant) and not isinstance(
                seed.value, str):
            yield (node.lineno,
                   f"default_rng({seed.value!r}) hard-codes one seed, "
                   f"collapsing every caller onto the same stream; derive "
                   f"it with derive_seed/RandomStreams instead")


def check_no_wall_clock(source: SourceFile) -> Iterator[tuple[int, str]]:
    """D003: no wall-clock reads outside the metadata allowlist."""
    if any(source.rel_path.endswith(suffix)
           for suffix in WALL_CLOCK_ALLOWED_FILES):
        return
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        name = call_name(node)
        parts = name.split(".")
        if len(parts) >= 2 and tuple(parts[-2:]) in WALL_CLOCK_CALLS:
            yield (node.lineno,
                   f"wall-clock read `{name}()` — results must not depend "
                   f"on when they ran (bench/cache-admin metadata is "
                   f"allowlisted; elsewhere pragma or baseline a reviewed "
                   f"exception)")


def _is_unordered_iterable(node: ast.AST) -> bool:
    """Does this expression enumerate in an order the language does not
    pin?  Sets always; ``.values()``/``.keys()`` views count too — their
    order is insertion order, which concurrent writers and JSON merges do
    not reproduce."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = call_name(node)
        tail = name.split(".")[-1] if name else ""
        if tail in ("set", "frozenset") and "." not in name:
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
                "union", "intersection", "difference",
                "symmetric_difference"):
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
                "values", "keys") and not node.args:
            return True
    return False


def _feeds_arithmetic_or_scheduling(body: list[ast.stmt]) -> Optional[int]:
    """First line in ``body`` doing order-sensitive accumulation or event
    scheduling, or None."""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.AugAssign) and isinstance(
                    node.op, _ARITH_OPS):
                return node.lineno
            if isinstance(node, ast.Call):
                name = call_name(node)
                if name.split(".")[-1] in _SCHEDULING_CALLS:
                    return node.lineno
    return None


def check_ordered_iteration(source: SourceFile
                            ) -> Iterator[tuple[int, str]]:
    """D004: unordered iteration must not feed arithmetic or scheduling."""
    for node in ast.walk(source.tree):
        if isinstance(node, ast.For):
            if not _is_unordered_iterable(node.iter):
                continue
            if source.inside_call_named(node.iter, _ORDER_NORMALIZERS):
                continue
            hazard = _feeds_arithmetic_or_scheduling(node.body)
            if hazard is not None:
                yield (node.lineno,
                       "iterating an unordered container into arithmetic/"
                       "event scheduling (line %d) — float accumulation "
                       "and event order become insertion-order-dependent; "
                       "sort the iterable first" % hazard)
        elif isinstance(node, (ast.GeneratorExp, ast.ListComp)):
            if not any(_is_unordered_iterable(gen.iter)
                       for gen in node.generators):
                continue
            parent = source.parent(node)
            if not isinstance(parent, ast.Call):
                continue
            reducer = call_name(parent).split(".")[-1]
            if reducer in _ORDER_SENSITIVE_REDUCERS:
                yield (node.lineno,
                       f"`{reducer}()` over an unordered container — "
                       f"float reduction order is not pinned; sort the "
                       f"iterable first")


def check_sorted_listings(source: SourceFile) -> Iterator[tuple[int, str]]:
    """D005: directory listings must be wrapped in ``sorted(...)``."""
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        name = call_name(node)
        is_listing = (name in _LISTING_CALLS
                      or (isinstance(node.func, ast.Attribute)
                          and node.func.attr in _LISTING_METHODS))
        if not is_listing:
            continue
        if source.inside_call_named(node, _ORDER_NORMALIZERS):
            continue
        yield (node.lineno,
               f"`{name or node.func.attr}()` enumerates in filesystem "
               f"order; wrap it in sorted(...) so shard census, GC and "
               f"compaction output cannot vary between filesystems")


register_rule(Rule(
    code="D001", name="no-stdlib-random", category="determinism",
    rationale="stdlib random draws from hidden process-global state; "
              "parallel workers would diverge from serial runs",
    check=check_no_stdlib_random))

register_rule(Rule(
    code="D002", name="derived-rng-seed", category="determinism",
    rationale="default_rng() without a derive_seed/stream-factory argument "
              "is either irreproducible (no seed) or stream-collapsing "
              "(constant seed)",
    check=check_derived_rng_seed))

register_rule(Rule(
    code="D003", name="no-wall-clock", category="determinism",
    rationale="time.time()/datetime.now() outside allowlisted metadata "
              "makes results depend on when they ran",
    check=check_no_wall_clock))

register_rule(Rule(
    code="D004", name="ordered-iteration", category="determinism",
    rationale="iterating sets/dict views into float accumulation or event "
              "scheduling ties results to insertion order",
    check=check_ordered_iteration))

register_rule(Rule(
    code="D005", name="sorted-listings", category="determinism",
    rationale="os.listdir/glob/iterdir enumerate in filesystem order; "
              "unsorted results make stats and compaction "
              "filesystem-dependent",
    check=check_sorted_listings))
