"""The ``repro lint`` rule engine: AST passes over the repro source tree.

Every guarantee this reproduction makes — sha256 golden digests,
parallel-vs-serial byte-identity, K=1 population bit-identity,
concurrent-writer-safe cache flushes — is otherwise enforced only
*dynamically*: a violation surfaces when a golden breaks, often long after
the hazard landed.  This package encodes those contracts as static
AST-level rules so a hazard (an unseeded RNG, a wall-clock read feeding a
result, a shard write outside its lock) fails ``make lint`` in the PR that
introduces it.

Architecture:

* :class:`Rule` — one named invariant (``D001``, ``L002``, ...) with a
  ``check`` callable run against each parsed :class:`SourceFile`.
* A module-level registry (:func:`register_rule` / :func:`all_rules`); the
  rule modules (``rules_determinism``, ``rules_wire``,
  ``rules_concurrency``) register themselves on import.
* :func:`analyze_paths` — parse every ``.py`` file under the given paths
  (in sorted order, naturally), run the selected rules, and apply
  ``# repro: allow[RULE]`` line pragmas.  Baseline suppression is layered
  on top by :mod:`repro.analysis.baseline`.

Suppression pragma: a trailing comment ``# repro: allow[D003]`` (or
``allow[D003,L001]``) suppresses findings of exactly those rules on
exactly that line — the narrowest possible escape hatch, reviewable in
diffs.  Findings that survive pragmas can still be matched by a committed
baseline file (see :mod:`repro.analysis.baseline`), which is how the
handful of historical, legitimate hits are carried without littering the
source.
"""

from __future__ import annotations

import ast
import hashlib
import os
import re
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Optional, Sequence

__all__ = [
    "Finding",
    "Rule",
    "SourceFile",
    "LintError",
    "register_rule",
    "rule_codes",
    "all_rules",
    "get_rule",
    "analyze_paths",
    "analyze_source",
    "iter_python_files",
    "call_name",
    "PRAGMA_RE",
]


class LintError(RuntimeError):
    """The analysis cannot proceed (bad path, unparseable source, unknown
    rule name).  The CLI turns this into a clean diagnostic and exit 2."""


#: ``# repro: allow[D001]`` / ``# repro: allow[D001,L002]`` line pragma.
PRAGMA_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_,\s-]+)\]")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    message: str
    #: The stripped source line the finding sits on — what the baseline
    #: hashes, so an entry keeps matching after the line moves.
    context: str = ""

    @property
    def context_hash(self) -> str:
        """Stable hash of (rule, context text) — the baseline match key.

        Deliberately excludes the line number: a finding that merely moved
        (code inserted above it) still matches its baseline entry.
        """
        key = f"{self.rule}\0{self.context}".encode()
        return hashlib.sha256(key).hexdigest()[:16]

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}"

    def as_json_dict(self) -> dict:
        return {
            "rule": self.rule,
            "file": self.path,
            "line": self.line,
            "message": self.message,
            "context": self.context,
            "context_hash": self.context_hash,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


@dataclass(frozen=True)
class Rule:
    """One static invariant, checkable against a parsed source file.

    ``check`` receives a :class:`SourceFile` and yields ``(lineno,
    message)`` pairs; the engine turns them into :class:`Finding` objects
    (attaching path and context) and applies pragma suppression.
    """

    code: str          # e.g. "D001" — what pragmas and --rule refer to
    name: str          # short slug, e.g. "no-stdlib-random"
    category: str      # determinism | wire | locking | backend
    rationale: str     # one line: why the invariant exists
    check: Callable[["SourceFile"], Iterable[tuple[int, str]]]

    def describe(self) -> dict:
        return {"code": self.code, "name": self.name,
                "category": self.category, "rationale": self.rationale}


class SourceFile:
    """One parsed module plus the lookup structures rules need."""

    def __init__(self, path: str, text: str, *, rel_path: str) -> None:
        self.path = path
        #: Path as reported in findings (repo-relative, "/" separators).
        self.rel_path = rel_path
        self.text = text
        self.lines = text.splitlines()
        try:
            self.tree = ast.parse(text, filename=path)
        except SyntaxError as exc:
            raise LintError(f"cannot parse {path}: {exc}") from exc
        self._parents: dict[int, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[id(child)] = parent

    # -- navigation -----------------------------------------------------------
    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(id(node))

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Walk from ``node``'s parent up to the module node."""
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    def enclosing_function(self, node: ast.AST
                           ) -> Optional[ast.FunctionDef]:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    def inside_call_named(self, node: ast.AST, names: frozenset[str]) -> bool:
        """True when ``node`` sits inside a call to one of ``names``
        (e.g. a listing wrapped in ``sorted(...)``)."""
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, ast.Call):
                target = call_name(ancestor)
                if target.split(".")[-1] in names:
                    return True
        return False

    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    # -- pragma handling -----------------------------------------------------------
    def pragma_codes(self, lineno: int) -> frozenset[str]:
        """Rule codes allowed by a ``# repro: allow[...]`` pragma on the
        given line (empty when the line carries none)."""
        if not 1 <= lineno <= len(self.lines):
            return frozenset()
        match = PRAGMA_RE.search(self.lines[lineno - 1])
        if not match:
            return frozenset()
        return frozenset(code.strip() for code in match.group(1).split(",")
                         if code.strip())


def call_name(node: ast.AST) -> str:
    """Dotted name of a call (or attribute chain), '' when not static.

    ``np.random.default_rng(0)`` -> ``"np.random.default_rng"``;
    ``foo()()`` and subscripted targets resolve to ``""``.
    """
    current = node.func if isinstance(node, ast.Call) else node
    parts: list[str] = []
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
    else:
        return ""
    return ".".join(reversed(parts))


# ---------------------------------------------------------------------------
# Rule registry
# ---------------------------------------------------------------------------

_RULES: dict[str, Rule] = {}


def register_rule(rule: Rule) -> Rule:
    """Add a rule to the registry (codes are unique)."""
    if rule.code in _RULES:
        raise ValueError(f"rule {rule.code!r} is already registered")
    _RULES[rule.code] = rule
    return rule


def rule_codes() -> tuple[str, ...]:
    _load_rule_modules()
    return tuple(sorted(_RULES))


def all_rules() -> tuple[Rule, ...]:
    _load_rule_modules()
    return tuple(_RULES[code] for code in sorted(_RULES))


def get_rule(code: str) -> Rule:
    _load_rule_modules()
    try:
        return _RULES[code]
    except KeyError:
        raise LintError(f"unknown rule {code!r}; known rules: "
                        f"{', '.join(sorted(_RULES))}") from None


def _load_rule_modules() -> None:
    """Import the rule modules exactly once (they register on import)."""
    from . import rules_concurrency  # noqa: F401
    from . import rules_determinism  # noqa: F401
    from . import rules_wire  # noqa: F401


# ---------------------------------------------------------------------------
# Running the analysis
# ---------------------------------------------------------------------------

def iter_python_files(paths: Sequence[str]) -> list[str]:
    """Every ``.py`` file under the given files/directories, sorted.

    The sorted walk is load-bearing: findings (and therefore baselines and
    CI logs) must not depend on filesystem enumeration order — the same
    invariant rule D005 enforces on the codebase itself.
    """
    files: list[str] = []
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                files.append(path)
            continue
        if not os.path.isdir(path):
            raise LintError(f"no such file or directory: {path!r}")
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(d for d in dirnames
                                 if d != "__pycache__")
            files.extend(os.path.join(dirpath, name)
                         for name in sorted(filenames)
                         if name.endswith(".py"))
    return sorted(dict.fromkeys(files))


@dataclass
class AnalysisReport:
    """Everything one lint pass produced, pre-baseline."""

    findings: list[Finding] = field(default_factory=list)
    checked_files: int = 0
    pragma_suppressed: int = 0


def _resolve_rules(rules: Optional[Sequence] = None) -> list[Rule]:
    if rules is None:
        return list(all_rules())
    resolved = []
    for rule in rules:
        resolved.append(rule if isinstance(rule, Rule) else get_rule(rule))
    return resolved


def analyze_source(source: SourceFile,
                   rules: Optional[Sequence] = None,
                   report: Optional[AnalysisReport] = None
                   ) -> list[Finding]:
    """Run the selected rules over one parsed file, applying pragmas."""
    findings: list[Finding] = []
    for rule in _resolve_rules(rules):
        for lineno, message in rule.check(source):
            if rule.code in source.pragma_codes(lineno):
                if report is not None:
                    report.pragma_suppressed += 1
                continue
            findings.append(Finding(
                rule=rule.code, path=source.rel_path, line=lineno,
                message=message, context=source.source_line(lineno)))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    if report is not None:
        report.findings.extend(findings)
        report.checked_files += 1
    return findings


def analyze_paths(paths: Sequence[str],
                  rules: Optional[Sequence] = None, *,
                  root: Optional[str] = None) -> AnalysisReport:
    """Lint every ``.py`` file under ``paths`` with the selected rules.

    ``root`` anchors the relative paths findings report (and baselines
    store); it defaults to the current working directory.  Findings come
    back sorted by (file, line, rule) — byte-stable across machines.
    """
    resolved = _resolve_rules(rules)
    root = os.path.abspath(root) if root else os.getcwd()
    report = AnalysisReport()
    for file_path in iter_python_files(paths):
        try:
            with open(file_path, encoding="utf-8") as handle:
                text = handle.read()
        except (OSError, UnicodeDecodeError) as exc:
            raise LintError(f"cannot read {file_path!r}: {exc}") from exc
        rel = os.path.relpath(os.path.abspath(file_path), root)
        source = SourceFile(file_path, text,
                            rel_path=rel.replace(os.sep, "/"))
        analyze_source(source, resolved, report)
    report.findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return report
