"""Firewall, NAT and node-port exposure model.

Performance-wise these elements are nearly free (a DNAT rewrite costs
microseconds); what the paper cares about is *deployment feasibility*: DTS
requires opening node-level ports and firewall pinholes for every deployment,
PRS only needs a pre-authorised gateway endpoint, and MSS needs nothing but
outbound HTTPS.  This module therefore models the control-plane objects —
firewall rules, NAT mappings, NodePort allocations — so the architecture
layer can (a) *validate* that a data path is actually reachable before
streaming, and (b) *count* the administrative burden (rules touched, ports
opened) reported in the deployment-feasibility comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

__all__ = [
    "FirewallRule",
    "Firewall",
    "NATMapping",
    "NATGateway",
    "NodePortAllocator",
    "NODEPORT_RANGE",
]

#: Kubernetes/OpenShift default NodePort range (§4.3).
NODEPORT_RANGE = (30000, 32767)


@dataclass(frozen=True)
class FirewallRule:
    """A single allow rule: who may reach which host:port."""

    source_cidr: str
    dest_host: str
    port: int
    protocol: str = "tcp"
    description: str = ""

    def matches(self, source: str, dest_host: str, port: int,
                protocol: str = "tcp") -> bool:
        if self.protocol != protocol or self.dest_host != dest_host:
            return False
        if self.port != port:
            return False
        return _cidr_contains(self.source_cidr, source)


def _cidr_contains(cidr: str, address: str) -> bool:
    """Very small CIDR matcher supporting 'any', exact and prefix forms."""
    if cidr in ("any", "0.0.0.0/0", "*"):
        return True
    if "/" not in cidr:
        return cidr == address
    prefix, bits_text = cidr.split("/", 1)
    bits = int(bits_text)
    try:
        prefix_int = _ip_to_int(prefix)
        addr_int = _ip_to_int(address)
    except ValueError:
        return False
    if bits == 0:
        return True
    mask = (0xFFFFFFFF << (32 - bits)) & 0xFFFFFFFF
    return (prefix_int & mask) == (addr_int & mask)


def _ip_to_int(address: str) -> int:
    parts = address.split(".")
    if len(parts) != 4:
        raise ValueError(f"not an IPv4 address: {address!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"bad octet in {address!r}")
        value = (value << 8) | octet
    return value


class Firewall:
    """Per-facility firewall holding explicit allow rules (default deny)."""

    def __init__(self, name: str, *, default_outbound_allowed: bool = True) -> None:
        self.name = name
        self.rules: list[FirewallRule] = []
        self.default_outbound_allowed = default_outbound_allowed

    def allow(self, source_cidr: str, dest_host: str, port: int, *,
              protocol: str = "tcp", description: str = "") -> FirewallRule:
        rule = FirewallRule(source_cidr, dest_host, port, protocol, description)
        self.rules.append(rule)
        return rule

    def permits(self, source: str, dest_host: str, port: int,
                protocol: str = "tcp") -> bool:
        return any(rule.matches(source, dest_host, port, protocol)
                   for rule in self.rules)

    @property
    def rule_count(self) -> int:
        return len(self.rules)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Firewall {self.name} rules={self.rule_count}>"


@dataclass(frozen=True)
class NATMapping:
    """A DNAT mapping from an external endpoint to an internal one."""

    external_host: str
    external_port: int
    internal_host: str
    internal_port: int


class NATGateway:
    """Destination-NAT gateway at a facility boundary."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._mappings: dict[tuple[str, int], NATMapping] = {}

    def add_mapping(self, external_host: str, external_port: int,
                    internal_host: str, internal_port: int) -> NATMapping:
        key = (external_host, external_port)
        if key in self._mappings:
            raise ValueError(f"mapping for {external_host}:{external_port} exists")
        mapping = NATMapping(external_host, external_port,
                             internal_host, internal_port)
        self._mappings[key] = mapping
        return mapping

    def translate(self, external_host: str, external_port: int) -> Optional[NATMapping]:
        return self._mappings.get((external_host, external_port))

    @property
    def mapping_count(self) -> int:
        return len(self._mappings)


class NodePortAllocator:
    """Allocates NodePort numbers from the OpenShift range (30000-32767)."""

    def __init__(self, port_range: tuple[int, int] = NODEPORT_RANGE) -> None:
        low, high = port_range
        if low > high:
            raise ValueError("invalid port range")
        self.port_range = port_range
        self._allocated: dict[int, str] = {}

    def allocate(self, service: str, preferred: Optional[int] = None) -> int:
        low, high = self.port_range
        if preferred is not None:
            if not low <= preferred <= high:
                raise ValueError(
                    f"port {preferred} outside NodePort range {self.port_range}")
            if preferred in self._allocated:
                raise ValueError(f"port {preferred} already allocated "
                                 f"to {self._allocated[preferred]!r}")
            self._allocated[preferred] = service
            return preferred
        for port in range(low, high + 1):
            if port not in self._allocated:
                self._allocated[port] = service
                return port
        raise RuntimeError("NodePort range exhausted")

    def release(self, port: int) -> None:
        self._allocated.pop(port, None)

    def owner(self, port: int) -> Optional[str]:
        return self._allocated.get(port)

    def allocated_ports(self, service: Optional[str] = None) -> list[int]:
        if service is None:
            return sorted(self._allocated)
        return sorted(p for p, s in self._allocated.items() if s == service)

    def __len__(self) -> int:
        return len(self._allocated)
