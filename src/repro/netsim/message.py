"""Message representation shared by every layer of the simulator.

A :class:`Message` models one application-level message as produced by a
workload generator: a payload of so many bytes (optionally composed of
multiple batched events, as in the Deleria workload), plus headers, routing
information and a trace of every hop it crosses.  The trace is what lets the
metrics layer attribute latency to individual architecture components.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["Message", "HopRecord", "MessageFactory"]

_message_ids = itertools.count()


@dataclass(slots=True)
class HopRecord:
    """One traversal of a network element by a message.

    One of these is allocated per hop of every message, so it carries
    ``slots=True`` to stay dict-free.
    """

    element: str
    kind: str
    arrived_at: float
    departed_at: float

    @property
    def duration(self) -> float:
        return self.departed_at - self.arrived_at


@dataclass(slots=True)
class Message:
    """An application message flowing producer → service → consumer."""

    #: Unique, monotonically increasing identifier.
    message_id: int
    #: Payload size in bytes (excluding protocol framing).
    payload_bytes: float
    #: Number of workload events batched into this message (Deleria batches 8).
    event_count: int = 1
    #: Payload encoding, informational only ("binary", "hdf5", "json").
    payload_format: str = "binary"
    #: Logical producer identifier.
    producer: str = ""
    #: AMQP routing key / queue name the producer addressed.
    routing_key: str = ""
    #: Identifies request/reply correlation for feedback patterns.
    correlation_id: Optional[int] = None
    #: Reply-to queue for request/reply (direct reply routing).
    reply_to: Optional[str] = None
    #: True for control-plane messages (JSON-encoded in Deleria).
    is_control: bool = False
    #: Simulated time the producer created the message.
    created_at: float = 0.0
    #: Simulated time the broker accepted (routed) the message.
    published_at: Optional[float] = None
    #: Simulated time a consumer finished receiving the message.
    consumed_at: Optional[float] = None
    #: Free-form metadata bag (sequence numbers, run ids, ...).
    headers: dict[str, Any] = field(default_factory=dict)
    #: Per-hop latency trace.
    hops: list[HopRecord] = field(default_factory=list)

    #: Protocol framing overhead added on the wire per message (AMQP frame
    #: headers, TCP/IP overhead amortised per message).
    framing_bytes: float = 512.0

    #: How many logical client messages this object stands for.  Discrete
    #: clients always send multiplicity 1; a
    #: :class:`~repro.workloads.population.ClientPopulation` of K clients
    #: emits one aggregate message with multiplicity K, and every resource
    #: cost and counter along the path scales by it.  ``x * 1`` is exact in
    #: IEEE arithmetic, so the multiplicity-1 path is bit-identical to the
    #: historical per-client accounting.
    multiplicity: int = 1

    @property
    def wire_bytes(self) -> float:
        """Bytes that actually cross a link for this message."""
        return self.payload_bytes + self.framing_bytes

    @property
    def latency(self) -> Optional[float]:
        """Producer-to-consumer latency if the message was consumed."""
        if self.consumed_at is None:
            return None
        return self.consumed_at - self.created_at

    def record_hop(self, element: str, kind: str,
                   arrived_at: float, departed_at: float) -> None:
        self.hops.append(HopRecord(element, kind, arrived_at, departed_at))

    def hop_count(self) -> int:
        return len(self.hops)

    def hop_breakdown(self) -> dict[str, float]:
        """Total time spent per element kind (link, proxy, broker, ...)."""
        breakdown: dict[str, float] = {}
        for hop in self.hops:
            breakdown[hop.kind] = breakdown.get(hop.kind, 0.0) + hop.duration
        return breakdown

    def make_reply(self, payload_bytes: float, now: float) -> "Message":
        """Create the reply message for a request/reply interaction."""
        reply = Message(
            message_id=next(_message_ids),
            payload_bytes=payload_bytes,
            event_count=self.event_count,
            payload_format=self.payload_format,
            producer=self.headers.get("consumer", "consumer"),
            routing_key=self.reply_to or "",
            correlation_id=self.message_id,
            created_at=now,
            multiplicity=self.multiplicity,
        )
        reply.headers["request_id"] = self.message_id
        reply.headers["request_created_at"] = self.created_at
        return reply

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<Message id={self.message_id} {self.payload_bytes:.0f}B "
                f"key={self.routing_key!r}>")


class MessageFactory:
    """Creates messages with process-wide unique identifiers."""

    def __init__(self, producer: str = "", framing_bytes: float = 512.0) -> None:
        self.producer = producer
        self.framing_bytes = framing_bytes

    def create(self, payload_bytes: float, *, now: float,
               routing_key: str = "", event_count: int = 1,
               payload_format: str = "binary",
               reply_to: Optional[str] = None,
               is_control: bool = False,
               multiplicity: int = 1,
               headers: Optional[dict[str, Any]] = None) -> Message:
        if multiplicity < 1:
            raise ValueError(f"multiplicity must be >= 1, got {multiplicity}")
        message = Message(
            message_id=next(_message_ids),
            payload_bytes=float(payload_bytes),
            event_count=int(event_count),
            payload_format=payload_format,
            producer=self.producer,
            routing_key=routing_key,
            reply_to=reply_to,
            is_control=is_control,
            created_at=now,
            framing_bytes=self.framing_bytes,
            multiplicity=int(multiplicity),
        )
        if headers:
            message.headers.update(headers)
        return message
