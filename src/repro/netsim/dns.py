"""DNS / FQDN resolution and the MSS route controller.

MSS exposes the streaming service behind a stable Fully Qualified Domain
Name that terminates at the facility's load balancer; an OpenShift route
controller then maps the hostname onto the backing service endpoints
(§2.3, §4.5).  DTS clients instead use raw ``node-IP:NodePort`` endpoints
and PRS clients use the gateway proxy endpoints handed out by SciStream.

The registry also charges a (small, configurable) resolution latency the
first time a name is looked up, modelling the WAN DNS round trip; results
are cached afterwards, as real resolvers do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from ..simkit import Environment

__all__ = ["Endpoint", "DNSRegistry", "RouteController"]


@dataclass(frozen=True)
class Endpoint:
    """A reachable network endpoint: a node name plus a TCP port."""

    host: str
    port: int
    scheme: str = "amqp"

    @property
    def url(self) -> str:
        return f"{self.scheme}://{self.host}:{self.port}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.url


class DNSRegistry:
    """Maps FQDNs to endpoints, with one-time resolution latency."""

    def __init__(self, env: Environment, *, lookup_latency_s: float = 0.002) -> None:
        self.env = env
        self.lookup_latency_s = float(lookup_latency_s)
        self._records: dict[str, Endpoint] = {}
        self._cache: set[str] = set()
        self.lookups = 0

    def register(self, fqdn: str, endpoint: Endpoint) -> None:
        self._records[fqdn] = endpoint

    def resolve(self, fqdn: str) -> Generator:
        """Simulation process resolving ``fqdn``; returns an Endpoint."""
        self.lookups += 1
        if fqdn not in self._cache:
            yield self.env.timeout(self.lookup_latency_s)
            self._cache.add(fqdn)
        try:
            return self._records[fqdn]
        except KeyError:
            raise KeyError(f"unknown FQDN {fqdn!r}") from None

    def resolve_now(self, fqdn: str) -> Endpoint:
        """Non-blocking lookup (no latency charged); for control-plane use."""
        try:
            return self._records[fqdn]
        except KeyError:
            raise KeyError(f"unknown FQDN {fqdn!r}") from None

    def known_names(self) -> list[str]:
        return sorted(self._records)


class RouteController:
    """OpenShift-style route controller: hostname → backend endpoints.

    Distributes successive connections across the backends (round robin),
    which is how the ingress spreads AMQPS connections over the three
    RabbitMQ pods in the MSS deployment.
    """

    def __init__(self, name: str = "route-controller") -> None:
        self.name = name
        self._routes: dict[str, list[Endpoint]] = {}
        self._cursor: dict[str, int] = {}

    def add_route(self, hostname: str, backends: list[Endpoint]) -> None:
        if not backends:
            raise ValueError("a route needs at least one backend")
        self._routes[hostname] = list(backends)
        self._cursor[hostname] = 0

    def backends(self, hostname: str) -> list[Endpoint]:
        try:
            return list(self._routes[hostname])
        except KeyError:
            raise KeyError(f"no route for {hostname!r}") from None

    def select_backend(self, hostname: str) -> Endpoint:
        """Round-robin selection of the next backend for a new connection."""
        backends = self.backends(hostname)
        index = self._cursor[hostname] % len(backends)
        self._cursor[hostname] += 1
        return backends[index]

    def route_count(self) -> int:
        return len(self._routes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<RouteController routes={len(self._routes)}>"
