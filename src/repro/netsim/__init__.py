"""Network substrate: links, nodes, topologies, TLS, NAT/firewalls and DNS.

This subpackage models the parts of the OLCF ACE infrastructure that shape
streaming performance (1 Gbps links, per-host processing, TLS placement) and
the parts that shape deployment feasibility (firewall rules, NodePorts,
FQDN routes).
"""

from .connection import Connection, SecuredNode, Traversable
from .dns import DNSRegistry, Endpoint, RouteController
from .link import Link
from .message import HopRecord, Message, MessageFactory
from .nat import (
    NODEPORT_RANGE,
    Firewall,
    FirewallRule,
    NATGateway,
    NATMapping,
    NodePortAllocator,
)
from .network import Network, Route
from .node import NetworkNode, NodeSpec
from .tls import DEFAULT_TLS, MUTUAL_TLS, NULL_TLS, TLSProfile
from . import units

__all__ = [
    "Connection",
    "SecuredNode",
    "Traversable",
    "DNSRegistry",
    "Endpoint",
    "RouteController",
    "Link",
    "Message",
    "MessageFactory",
    "HopRecord",
    "Firewall",
    "FirewallRule",
    "NATGateway",
    "NATMapping",
    "NodePortAllocator",
    "NODEPORT_RANGE",
    "Network",
    "Route",
    "NetworkNode",
    "NodeSpec",
    "TLSProfile",
    "DEFAULT_TLS",
    "MUTUAL_TLS",
    "NULL_TLS",
    "units",
]
