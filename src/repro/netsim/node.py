"""Network node (host) model.

A :class:`NetworkNode` represents a host that handles messages: an Andes
compute node, a Data Streaming Node, a gateway node running a proxy, a load
balancer appliance or an ingress node.  What matters for the streaming
evaluation is its *per-message processing cost* (protocol parsing, copying
between sockets, routing decisions) and its *concurrency* (how many messages
it can work on at once, a proxy for core count and the software's internal
parallelism).

Higher-level components (brokers, proxies, load balancers) own a node and
add their own queueing/policy logic; the node supplies the raw CPU model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from ..simkit import Environment, Monitor, Resource
from .message import HopRecord, Message
from .tls import NULL_TLS, TLSProfile

__all__ = ["NodeSpec", "NetworkNode"]


@dataclass(frozen=True)
class NodeSpec:
    """Static description of a host's capabilities.

    The defaults approximate the Andes compute nodes from §5.2 (two 16-core
    3.0 GHz EPYC 7302, 256 GiB RAM); DSNs use a larger spec (§4.1).
    """

    cores: int = 32
    memory_bytes: float = 256 * 1024 ** 3
    #: Fixed CPU time consumed per handled message (s).
    per_message_seconds: float = 20e-6
    #: CPU time consumed per payload byte (s/B): memcpy/parse costs.
    per_byte_seconds: float = 2.0e-10
    #: How many messages the host software works on concurrently.
    concurrency: int = 8


class NetworkNode:
    """A host with bounded processing concurrency and per-message cost."""

    def __init__(self, env: Environment, name: str,
                 spec: Optional[NodeSpec] = None, *,
                 role: str = "host",
                 monitor: Optional[Monitor] = None) -> None:
        self.env = env
        self.name = name
        self.spec = spec or NodeSpec()
        self.role = role
        self.monitor = monitor or Monitor(f"node:{name}")
        # Per-message instruments, resolved by name exactly once.
        self._messages_counter = self.monitor.counter("messages")
        self._bytes_counter = self.monitor.counter("bytes")
        self._service_series = self.monitor.timeseries("service_delay")
        self._cpu = Resource(env, capacity=max(1, self.spec.concurrency))
        self._busy_time = 0.0

    # -- behaviour -----------------------------------------------------------
    def service_time(self, message: Message, tls: TLSProfile = NULL_TLS) -> float:
        """CPU time to handle one message (excluding queueing)."""
        spec = self.spec
        cost = spec.per_message_seconds + spec.per_byte_seconds * message.wire_bytes
        cost += tls.message_cost(message.wire_bytes)
        return cost

    def traverse(self, message: Message,
                 tls: TLSProfile = NULL_TLS) -> Generator:
        """Simulation process: spend CPU handling ``message`` on this host.

        An aggregate message of multiplicity K costs K messages' worth of
        CPU (it stands for K client messages); multiplicity 1 is
        bit-identical to the historical per-message accounting.
        """
        arrived = self.env.now
        multiplicity = message.multiplicity
        with self._cpu.request() as grant:
            yield grant
            cost = self.service_time(message, tls) * multiplicity
            self._busy_time += cost
            yield self.env.timeout(cost)
        departed = self.env.now
        message.hops.append(HopRecord(self.name, self.role, arrived, departed))
        self._messages_counter.value += float(multiplicity)
        self._bytes_counter.value += message.wire_bytes * multiplicity
        self._service_series.record(arrived, departed - arrived)

    # -- reporting -----------------------------------------------------------
    @property
    def queue_length(self) -> int:
        return len(self._cpu.queue)

    @property
    def in_service(self) -> int:
        return self._cpu.count

    def utilization(self, over_seconds: Optional[float] = None) -> float:
        horizon = over_seconds if over_seconds is not None else self.env.now
        if horizon <= 0:
            return 0.0
        return min(1.0, self._busy_time / (horizon * max(1, self.spec.concurrency)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<NetworkNode {self.name} role={self.role}>"
