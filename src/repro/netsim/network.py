"""Network topology: nodes, directed links and route discovery.

The :class:`Network` is a registry of :class:`~repro.netsim.node.NetworkNode`
objects joined by directed :class:`~repro.netsim.link.Link` objects.  Routes
are discovered with a breadth-first search (shortest hop count, deterministic
tie-breaking by insertion order), which is sufficient for the small, mostly
tree-shaped topologies of the three deployments.  Architectures may also
register *named paths* to force traffic through specific intermediaries
(e.g. the MSS load balancer even when a shorter physical path exists).
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional

from ..simkit import Environment, Monitor
from .link import Link
from .node import NetworkNode, NodeSpec

__all__ = ["Network", "Route"]


class Route:
    """An ordered sequence of network elements (nodes and links)."""

    def __init__(self, elements: Iterable) -> None:
        self.elements = list(elements)

    @property
    def nodes(self) -> list[NetworkNode]:
        return [e for e in self.elements if isinstance(e, NetworkNode)]

    @property
    def links(self) -> list[Link]:
        return [e for e in self.elements if isinstance(e, Link)]

    @property
    def hop_count(self) -> int:
        """Number of link traversals (the paper's notion of 'hops')."""
        return len(self.links)

    def __iter__(self):
        return iter(self.elements)

    def __len__(self) -> int:
        return len(self.elements)

    def __add__(self, other: "Route") -> "Route":
        if not isinstance(other, Route):
            return NotImplemented
        elements = list(self.elements)
        tail = list(other.elements)
        # Avoid duplicating the junction node when concatenating.
        if elements and tail and elements[-1] is tail[0]:
            tail = tail[1:]
        return Route(elements + tail)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        names = [getattr(e, "name", "?") for e in self.elements]
        return "Route(" + " -> ".join(names) + ")"


class Network:
    """A registry of hosts and links with shortest-path routing."""

    def __init__(self, env: Environment, name: str = "net") -> None:
        self.env = env
        self.name = name
        self.monitor = Monitor(f"network:{name}")
        self.nodes: dict[str, NetworkNode] = {}
        #: Directed adjacency: src name -> {dst name: Link}.
        self._adjacency: dict[str, dict[str, Link]] = {}
        self._named_routes: dict[tuple[str, str], Route] = {}

    # -- construction --------------------------------------------------------
    def add_node(self, name: str, spec: Optional[NodeSpec] = None, *,
                 role: str = "host") -> NetworkNode:
        if name in self.nodes:
            raise ValueError(f"node {name!r} already exists")
        node = NetworkNode(self.env, name, spec, role=role)
        self.nodes[name] = node
        self._adjacency[name] = {}
        return node

    def get_node(self, name: str) -> NetworkNode:
        try:
            return self.nodes[name]
        except KeyError:
            raise KeyError(f"unknown node {name!r}") from None

    def add_link(self, src: str, dst: str, *, bandwidth_bps: float,
                 latency_s: float = 0.0005, jitter_s: float = 0.0,
                 rng=None) -> Link:
        """Add a single *directed* link from ``src`` to ``dst``."""
        if src not in self.nodes or dst not in self.nodes:
            raise KeyError(f"both endpoints must exist: {src!r} -> {dst!r}")
        if dst in self._adjacency[src]:
            raise ValueError(f"link {src!r} -> {dst!r} already exists")
        link = Link(self.env, f"{src}->{dst}", bandwidth_bps=bandwidth_bps,
                    latency_s=latency_s, jitter_s=jitter_s, rng=rng)
        self._adjacency[src][dst] = link
        return link

    def connect(self, a: str, b: str, *, bandwidth_bps: float,
                latency_s: float = 0.0005, jitter_s: float = 0.0,
                rng=None) -> tuple[Link, Link]:
        """Add a full-duplex connection (two directed links) between hosts."""
        forward = self.add_link(a, b, bandwidth_bps=bandwidth_bps,
                                latency_s=latency_s, jitter_s=jitter_s, rng=rng)
        backward = self.add_link(b, a, bandwidth_bps=bandwidth_bps,
                                 latency_s=latency_s, jitter_s=jitter_s, rng=rng)
        return forward, backward

    def links(self) -> list[Link]:
        """Every directed link, sorted by (src, dst) name.

        The sorted order makes link listings a pure function of the
        topology, so fault injection can pick targets deterministically.
        """
        return [self._adjacency[src][dst]
                for src in sorted(self._adjacency)
                for dst in sorted(self._adjacency[src])]

    def link_between(self, src: str, dst: str) -> Link:
        try:
            return self._adjacency[src][dst]
        except KeyError:
            raise KeyError(f"no link {src!r} -> {dst!r}") from None

    def has_link(self, src: str, dst: str) -> bool:
        return dst in self._adjacency.get(src, {})

    def neighbors(self, src: str) -> list[str]:
        return list(self._adjacency.get(src, {}))

    # -- routing ---------------------------------------------------------------
    def register_route(self, src: str, dst: str, waypoints: list[str]) -> Route:
        """Force traffic src→dst through the given node waypoints."""
        full = [src, *waypoints, dst]
        elements: list = []
        for a, b in zip(full, full[1:]):
            elements.append(self.nodes[a])
            elements.append(self.link_between(a, b))
        elements.append(self.nodes[dst])
        route = Route(elements)
        self._named_routes[(src, dst)] = route
        return route

    def route(self, src: str, dst: str) -> Route:
        """Return the registered or shortest route from ``src`` to ``dst``."""
        named = self._named_routes.get((src, dst))
        if named is not None:
            return named
        if src == dst:
            return Route([self.get_node(src)])
        parents: dict[str, str] = {}
        queue: deque[str] = deque([src])
        visited = {src}
        while queue:
            here = queue.popleft()
            for nxt in self._adjacency[here]:
                if nxt in visited:
                    continue
                visited.add(nxt)
                parents[nxt] = here
                if nxt == dst:
                    queue.clear()
                    break
                queue.append(nxt)
        if dst not in parents and src != dst:
            raise KeyError(f"no route from {src!r} to {dst!r}")
        # Reconstruct the node sequence.
        seq = [dst]
        while seq[-1] != src:
            seq.append(parents[seq[-1]])
        seq.reverse()
        elements: list = []
        for a, b in zip(seq, seq[1:]):
            elements.append(self.nodes[a])
            elements.append(self.link_between(a, b))
        elements.append(self.nodes[dst])
        return Route(elements)

    def hop_count(self, src: str, dst: str) -> int:
        return self.route(src, dst).hop_count

    # -- reporting ---------------------------------------------------------------
    def describe(self) -> dict:
        return {
            "name": self.name,
            "nodes": sorted(self.nodes),
            "links": sorted(f"{s}->{d}" for s, targets in self._adjacency.items()
                            for d in targets),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        # Integer counts are order-insensitive; cosmetic repr only.
        nlinks = sum(len(t) for t in self._adjacency.values())  # repro: allow[D004]
        return f"<Network {self.name} nodes={len(self.nodes)} links={nlinks}>"
