"""Transport Layer Security cost model.

The three architectures place encryption differently (§4 of the paper):

* **DTS** uses AMQPS end-to-end — every producer/consumer connection to the
  broker pays TLS handshake and per-byte crypto cost.
* **PRS** uses plain AMQP inside the facilities and lets the SciStream
  overlay tunnel (Stunnel / HAProxy with mTLS) carry the encryption — only
  the tunnel hop pays crypto cost, but it pays it for *all* multiplexed
  flows.
* **MSS** terminates TLS at the ingress: producers/consumers speak AMQPS to
  the FQDN, the load balancer forwards TCP, and the ingress decrypts before
  handing plaintext to the broker pods.

A :class:`TLSProfile` captures the three knobs that matter at message
granularity: connection handshake latency, a fixed per-record cost, and a
per-byte encryption/decryption cost (which models the throughput hit of the
cipher on the 2.7 GHz EPYC cores described in §4.1).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TLSProfile", "NULL_TLS", "DEFAULT_TLS", "MUTUAL_TLS"]


@dataclass(frozen=True)
class TLSProfile:
    """Per-connection and per-message cryptographic overhead."""

    #: Human-readable name ("none", "tls", "mtls").
    name: str = "tls"
    #: Whether encryption is applied at all.
    enabled: bool = True
    #: One-time handshake latency when the connection is established (s).
    handshake_seconds: float = 0.010
    #: Extra round trips for mutual authentication (client certificates).
    mutual: bool = False
    #: Fixed per-message record-processing cost (s).
    per_message_seconds: float = 4.0e-6
    #: Per-byte symmetric crypto cost (s/byte).  2e-10 s/B ≈ 5 GB/s AES-GCM,
    #: far faster than a 1 Gbps link, so crypto only matters on loaded hops.
    per_byte_seconds: float = 2.0e-10

    def handshake_cost(self) -> float:
        """Connection-establishment latency contributed by TLS."""
        if not self.enabled:
            return 0.0
        cost = self.handshake_seconds
        if self.mutual:
            cost *= 1.5  # extra certificate exchange/verification
        return cost

    def message_cost(self, nbytes: float) -> float:
        """Per-message crypto cost for a payload of ``nbytes``."""
        if not self.enabled:
            return 0.0
        return self.per_message_seconds + self.per_byte_seconds * float(nbytes)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


#: No encryption (plain AMQP inside a facility).
NULL_TLS = TLSProfile(name="none", enabled=False,
                      handshake_seconds=0.0, per_message_seconds=0.0,
                      per_byte_seconds=0.0)

#: Server-authenticated TLS (AMQPS, ingress termination).
DEFAULT_TLS = TLSProfile(name="tls")

#: Mutual TLS as used by the SciStream overlay tunnel.
MUTUAL_TLS = TLSProfile(name="mtls", mutual=True,
                        per_message_seconds=6.0e-6,
                        per_byte_seconds=2.5e-10)
