"""Unit helpers for data sizes, bandwidths and times.

The paper mixes binary data sizes (KiB, MiB, GiB), decimal network rates
(Gbps = 1e9 bits per second) and seconds/milliseconds.  Centralising the
conversions here avoids the classic factor-of-8 and 1000-vs-1024 mistakes.
All simulator-internal quantities are plain floats: bytes, bits-per-second
and seconds.
"""

from __future__ import annotations

__all__ = [
    "KIB",
    "MIB",
    "GIB",
    "kib",
    "mib",
    "gib",
    "kbps",
    "mbps",
    "gbps",
    "transmission_time",
    "bits",
    "megabits",
    "pretty_size",
    "pretty_rate",
    "MICROSECOND",
    "MILLISECOND",
]

#: One kibibyte in bytes.
KIB = 1024
#: One mebibyte in bytes.
MIB = 1024 ** 2
#: One gibibyte in bytes.
GIB = 1024 ** 3

#: One microsecond in seconds.
MICROSECOND = 1e-6
#: One millisecond in seconds.
MILLISECOND = 1e-3


def kib(value: float) -> float:
    """Kibibytes → bytes."""
    return float(value) * KIB


def mib(value: float) -> float:
    """Mebibytes → bytes."""
    return float(value) * MIB


def gib(value: float) -> float:
    """Gibibytes → bytes."""
    return float(value) * GIB


def kbps(value: float) -> float:
    """Kilobits per second → bits per second."""
    return float(value) * 1e3


def mbps(value: float) -> float:
    """Megabits per second → bits per second."""
    return float(value) * 1e6


def gbps(value: float) -> float:
    """Gigabits per second → bits per second."""
    return float(value) * 1e9


def bits(nbytes: float) -> float:
    """Bytes → bits."""
    return float(nbytes) * 8.0


def megabits(nbytes: float) -> float:
    """Bytes → megabits (useful for Gb/s style reporting)."""
    return bits(nbytes) / 1e6


def transmission_time(nbytes: float, bandwidth_bps: float) -> float:
    """Serialization delay of ``nbytes`` over a ``bandwidth_bps`` link."""
    if bandwidth_bps <= 0:
        raise ValueError("bandwidth must be positive")
    if nbytes < 0:
        raise ValueError("size must be non-negative")
    return bits(nbytes) / float(bandwidth_bps)


def pretty_size(nbytes: float) -> str:
    """Human-readable binary size (e.g. ``16.0 KiB``)."""
    value = float(nbytes)
    for unit, factor in (("GiB", GIB), ("MiB", MIB), ("KiB", KIB)):
        if abs(value) >= factor:
            return f"{value / factor:.1f} {unit}"
    return f"{value:.0f} B"


def pretty_rate(bps: float) -> str:
    """Human-readable decimal rate (e.g. ``1.0 Gbps``)."""
    value = float(bps)
    for unit, factor in (("Gbps", 1e9), ("Mbps", 1e6), ("Kbps", 1e3)):
        if abs(value) >= factor:
            return f"{value / factor:.1f} {unit}"
    return f"{value:.0f} bps"
