"""Network link model.

A :class:`Link` is a unidirectional, fixed-bandwidth channel between two
network elements.  Messages are serialized onto the link one at a time
(FIFO), which is what creates the saturation behaviour the paper observes on
its 1 Gbps Andes ↔ DSN paths: the serialization delay of one message is
``wire_bytes * 8 / bandwidth``, and concurrent messages queue behind each
other.  Propagation latency and optional jitter are added after
serialization and do not occupy the link.

Bidirectional cabling is modelled as a pair of links (see
:meth:`Network.connect <repro.netsim.network.Network.connect>`), giving
full-duplex behaviour: traffic producer→broker does not contend with
broker→consumer traffic on the same physical port.
"""

from __future__ import annotations

from typing import Generator, Optional

import numpy as np

from ..simkit import BatchedUniform, Environment, Monitor, Resource
from .message import HopRecord, Message
from .units import transmission_time

__all__ = ["Link"]


class Link:
    """A unidirectional serialized link with bandwidth, latency and jitter."""

    def __init__(self, env: Environment, name: str, *,
                 bandwidth_bps: float,
                 latency_s: float = 0.0005,
                 jitter_s: float = 0.0,
                 rng: Optional["np.random.Generator | BatchedUniform"] = None,
                 monitor: Optional[Monitor] = None) -> None:
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if latency_s < 0 or jitter_s < 0:
            raise ValueError("latency and jitter must be non-negative")
        self.env = env
        self.name = name
        self.bandwidth_bps = float(bandwidth_bps)
        self.latency_s = float(latency_s)
        self.jitter_s = float(jitter_s)
        self._rng = rng
        self.monitor = monitor or Monitor(f"link:{name}")
        # Per-message instruments, resolved by name exactly once.
        self._messages_counter = self.monitor.counter("messages")
        self._bytes_counter = self.monitor.counter("bytes")
        self._queueing_series = self.monitor.timeseries("queueing_delay")
        #: Serialization resource: one frame on the wire at a time.
        self._wire = Resource(env, capacity=1)
        self._busy_time = 0.0
        #: Fault-injection state (see :mod:`repro.faults`): the link is
        #: down until this simulated time (0 = up), and serialization is
        #: scaled by ``slowdown`` (1.0 = nominal).  The defaults add no
        #: events and change no floats, so fault-free runs stay
        #: byte-identical to the pre-fault engine.
        self.down_until = 0.0
        self.slowdown = 1.0

    # -- behaviour -----------------------------------------------------------
    def serialization_delay(self, nbytes: float) -> float:
        """Time to clock ``nbytes`` onto the wire."""
        return transmission_time(nbytes, self.bandwidth_bps)

    def propagation_delay(self) -> float:
        """Latency plus a jitter sample (if a jitter RNG was provided)."""
        delay = self.latency_s
        if self.jitter_s > 0.0 and self._rng is not None:
            delay += float(self._rng.uniform(0.0, self.jitter_s))
        elif self.jitter_s > 0.0:
            delay += self.jitter_s / 2.0
        return delay

    def traverse(self, message: Message) -> Generator:
        """Simulation process: move ``message`` across this link.

        An aggregate message of multiplicity K occupies the wire for K
        back-to-back serializations (preserving saturation behaviour) but
        pays propagation latency — and draws jitter — once, like a burst of
        K frames pipelined behind each other.  Multiplicity 1 is
        bit-identical to the historical per-message accounting.
        """
        arrived = self.env.now
        multiplicity = message.multiplicity
        if self.down_until > self.env.now:
            # Link-flap outage: frames wait for the link to come back
            # before contending for the wire (guarded so fault-free runs
            # schedule no extra event).
            yield self.env.timeout(self.down_until - self.env.now)
        with self._wire.request() as grant:
            yield grant
            tx = (self.serialization_delay(message.wire_bytes)
                  * multiplicity * self.slowdown)
            self._busy_time += tx
            yield self.env.timeout(tx)
        yield self.env.timeout(self.propagation_delay())
        departed = self.env.now
        message.hops.append(HopRecord(self.name, "link", arrived, departed))
        self._messages_counter.value += float(multiplicity)
        self._bytes_counter.value += message.wire_bytes * multiplicity
        self._queueing_series.record(arrived, departed - arrived)

    # -- reporting -----------------------------------------------------------
    @property
    def queue_length(self) -> int:
        """Messages currently waiting to be serialized."""
        return len(self._wire.queue)

    def utilization(self, over_seconds: Optional[float] = None) -> float:
        """Fraction of (simulated) time the wire was busy."""
        horizon = over_seconds if over_seconds is not None else self.env.now
        if horizon <= 0:
            return 0.0
        return min(1.0, self._busy_time / horizon)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Link {self.name} {self.bandwidth_bps/1e9:.1f}Gbps>"
