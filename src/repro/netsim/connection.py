"""Client connection abstraction over a network route.

A :class:`Connection` strings together *traversable* stages — anything with a
``traverse(message)`` generator method: links, nodes, SciStream proxies,
load balancers, ingress controllers — into a data path a message follows in
order.  It also accounts for connection setup (TCP + TLS handshakes), which
the paper pays once per producer/consumer connection at experiment start.

The same abstraction is used for all three architectures; they differ only in
which stages appear on the path and where TLS terminates.
"""

from __future__ import annotations

from typing import Generator, Iterable, Optional, Protocol, runtime_checkable

from ..simkit import Environment, Monitor
from .message import Message
from .node import NetworkNode
from .tls import NULL_TLS, TLSProfile

__all__ = ["Traversable", "SecuredNode", "Connection"]


@runtime_checkable
class Traversable(Protocol):
    """Anything a message can pass through on a data path."""

    name: str

    def traverse(self, message: Message) -> Generator:  # pragma: no cover
        ...


class SecuredNode:
    """A node traversal that also pays TLS record costs.

    Wraps a :class:`NetworkNode` with the :class:`TLSProfile` that applies at
    that hop (e.g. a broker node speaking AMQPS in DTS, or an ingress node
    terminating TLS in MSS) without modifying the shared node object.
    """

    def __init__(self, node: NetworkNode, tls: TLSProfile = NULL_TLS) -> None:
        self.node = node
        self.tls = tls

    @property
    def name(self) -> str:
        return self.node.name

    def traverse(self, message: Message) -> Generator:
        yield from self.node.traverse(message, tls=self.tls)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<SecuredNode {self.node.name} tls={self.tls.name}>"


class Connection:
    """An established data path from one endpoint to another."""

    def __init__(self, env: Environment, name: str,
                 stages: Iterable[Traversable], *,
                 tls_handshakes: Iterable[TLSProfile] = (),
                 tcp_handshake_s: float = 0.001,
                 monitor: Optional[Monitor] = None) -> None:
        self.env = env
        self.name = name
        self.stages: list[Traversable] = list(stages)
        if not self.stages:
            raise ValueError("a connection needs at least one stage")
        self.tls_handshakes = list(tls_handshakes)
        self.tcp_handshake_s = float(tcp_handshake_s)
        self.monitor = monitor or Monitor(f"connection:{name}")
        # Per-message instruments, resolved by name exactly once.
        self._messages_counter = self.monitor.counter("messages")
        self._bytes_counter = self.monitor.counter("bytes")
        self._path_delay_series = self.monitor.timeseries("path_delay")
        self.established = False
        self.messages_sent = 0

    # -- lifecycle -----------------------------------------------------------
    def setup_cost(self) -> float:
        """Total one-time connection establishment latency."""
        cost = self.tcp_handshake_s
        cost += sum(profile.handshake_cost() for profile in self.tls_handshakes)
        return cost

    def establish(self) -> Generator:
        """Simulation process performing connection setup (idempotent)."""
        if not self.established:
            yield self.env.timeout(self.setup_cost())
            self.established = True
        return self

    # -- data path -------------------------------------------------------------
    def send(self, message: Message) -> Generator:
        """Simulation process moving one message across every stage in order."""
        if not self.established:
            yield from self.establish()
        started = self.env.now
        for stage in self.stages:
            yield from stage.traverse(message)
        # Counters account logical client messages: an aggregate message of
        # multiplicity K counts as K sends (exact at K=1).
        multiplicity = message.multiplicity
        self.messages_sent += multiplicity
        self._messages_counter.value += float(multiplicity)
        self._bytes_counter.value += message.wire_bytes * multiplicity
        self._path_delay_series.record(started, self.env.now - started)
        return message

    # -- introspection -----------------------------------------------------------
    @property
    def stage_names(self) -> list[str]:
        return [stage.name for stage in self.stages]

    def describe(self) -> dict:
        return {
            "name": self.name,
            "stages": self.stage_names,
            "setup_cost_s": self.setup_cost(),
            "messages_sent": self.messages_sent,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Connection {self.name} stages={len(self.stages)}>"
