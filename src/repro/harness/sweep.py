"""Parameter sweeps: the consumer-count scaling studies behind every figure.

The paper varies the number of consumers from 1 to 64 (powers of two) and,
except for broadcast and gather, keeps the number of producers equal to the
number of consumers (§5.2).  A :class:`ConsumerSweep` runs one experiment
per (architecture, consumer-count) pair and collects the results in a form
the figure generators consume directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Optional, Sequence

from .config import ExperimentConfig
from .results import ExperimentResult, PointFailure
from .runner import (
    ExecutionBackend,
    ExecutionPolicy,
    PointOutcome,
    ScenarioPoint,
    ScenarioSet,
    run_scenarios,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .cache import ResultCache

__all__ = ["PAPER_CONSUMER_COUNTS", "SweepResult", "ConsumerSweep"]

#: The x-axis of Figures 4–8.
PAPER_CONSUMER_COUNTS = (1, 2, 4, 8, 16, 32, 64)


@dataclass
class SweepResult:
    """Results of a consumer sweep over several architectures."""

    workload: str
    pattern: str
    consumer_counts: tuple[int, ...]
    #: results[architecture][consumers] -> ExperimentResult
    results: dict[str, dict[int, ExperimentResult]] = field(default_factory=dict)
    #: Points that exhausted their execution policy under on_error="record"
    #: (on_error="skip" drops failed points before the sweep sees them).
    failures: list[PointFailure] = field(default_factory=list)

    def record_failure(self, outcome: PointOutcome) -> None:
        self.failures.append(PointFailure(
            label=outcome.point.label, axes=dict(outcome.point.axes),
            error=outcome.error or "", attempts=outcome.attempts))

    def series(self, architecture: str, metric: str = "throughput_msgs_per_s"
               ) -> list[tuple[int, float]]:
        """(consumers, value) pairs for one architecture; infeasible = omitted."""
        points = []
        for consumers in self.consumer_counts:
            result = self.results.get(architecture, {}).get(consumers)
            if result is None or not result.feasible:
                continue
            points.append((consumers, getattr(result, metric)))
        return points

    def architectures(self) -> list[str]:
        return list(self.results)

    def rows(self, metric: str = "throughput_msgs_per_s") -> list[dict]:
        """Long-format rows (architecture, consumers, value) for tables/CSV."""
        rows = []
        for architecture, by_consumers in self.results.items():
            for consumers in self.consumer_counts:
                result = by_consumers.get(consumers)
                if result is None:
                    continue
                rows.append({
                    "workload": self.workload,
                    "pattern": self.pattern,
                    "architecture": architecture,
                    "consumers": consumers,
                    "feasible": result.feasible,
                    metric: getattr(result, metric) if result.feasible else float("nan"),
                })
        return rows

    def get(self, architecture: str, consumers: int) -> Optional[ExperimentResult]:
        return self.results.get(architecture, {}).get(consumers)


class ConsumerSweep:
    """Sweep consumer counts for several architectures from one base config."""

    def __init__(self, base_config: ExperimentConfig, *,
                 architectures: Sequence[str],
                 consumer_counts: Iterable[int] = PAPER_CONSUMER_COUNTS,
                 equal_producers: bool = True) -> None:
        self.base_config = base_config
        self.architectures = list(architectures)
        self.consumer_counts = tuple(consumer_counts)
        self.equal_producers = equal_producers

    def scenario_set(self) -> ScenarioSet:
        """The sweep as scenario points, in the historical execution order."""
        return ScenarioSet.consumer_sweep(
            self.base_config, architectures=self.architectures,
            consumer_counts=self.consumer_counts,
            equal_producers=self.equal_producers)

    def run(self, *, progress: Optional[Callable[[str, int], None]] = None,
            jobs: Optional[int] = None,
            backend: Optional[ExecutionBackend] = None,
            cache: Optional["ResultCache"] = None,
            policy: Optional[ExecutionPolicy] = None) -> SweepResult:
        """Run every (architecture, consumer-count) point.

        ``jobs > 1`` (or an explicit ``backend``) fans the points out over
        the unified scenario runner's process pool; results are identical to
        serial execution for the same seeds.  ``policy`` adds per-point
        timeout/retry handling; with ``on_error="record"`` a failed point
        lands in ``SweepResult.failures`` instead of killing the sweep.
        """
        sweep = SweepResult(workload=self.base_config.workload,
                            pattern=self.base_config.pattern,
                            consumer_counts=self.consumer_counts)
        for label in self.architectures:
            sweep.results.setdefault(label, {})

        def point_progress(point: ScenarioPoint) -> None:
            if progress is not None:
                progress(point.label, point.axes["consumers"])

        outcomes = run_scenarios(self.scenario_set(), jobs=jobs,
                                 backend=backend, cache=cache, policy=policy,
                                 progress=point_progress)
        for outcome in outcomes:
            if not outcome.ok:
                sweep.record_failure(outcome)
                continue
            point = outcome.point
            sweep.results[point.label][point.axes["consumers"]] = outcome.result
        return sweep
