"""Parameter sweeps: consumer scaling and testbed-axis sensitivity studies.

The paper varies the number of consumers from 1 to 64 (powers of two) and,
except for broadcast and gather, keeps the number of producers equal to the
number of consumers (§5.2).  A :class:`ConsumerSweep` runs one experiment
per (architecture, consumer-count) pair and collects the results in a form
the figure generators consume directly.

Beyond the paper's five axes, :func:`sensitivity_sweep` runs a
:meth:`~repro.harness.runner.ScenarioSet.product` grid over arbitrary
config/testbed axes (``testbed.link_bandwidth_bps``, ``testbed.dsn_count``,
``testbed.ack_policy.mode``, ...) and collects the outcomes into a
:class:`SensitivitySweep` of long-format rows keyed by axis values — the
engine behind the ``repro-streamsim sensitivity`` subcommand and the §6
bandwidth ablation figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Iterable, Optional, Sequence

from .config import ExperimentConfig
from .results import ExperimentResult, PointFailure
from .runner import (
    ExecutionBackend,
    ExecutionPolicy,
    PointOutcome,
    ScenarioPoint,
    ScenarioSet,
    run_scenarios,
)
from .session import Session

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .cache import ResultCache

__all__ = ["PAPER_CONSUMER_COUNTS", "SweepResult", "ConsumerSweep",
           "SensitivitySweep", "sensitivity_sweep", "scale_link_tiers"]

#: The x-axis of Figures 4–8.
PAPER_CONSUMER_COUNTS = (1, 2, 4, 8, 16, 32, 64)


@dataclass
class SweepResult:
    """Results of a consumer sweep over several architectures."""

    workload: str
    pattern: str
    consumer_counts: tuple[int, ...]
    #: results[architecture][consumers] -> ExperimentResult
    results: dict[str, dict[int, ExperimentResult]] = field(default_factory=dict)
    #: Points that exhausted their execution policy under on_error="record"
    #: (on_error="skip" drops failed points before the sweep sees them).
    failures: list[PointFailure] = field(default_factory=list)

    def record_failure(self, outcome: PointOutcome) -> None:
        self.failures.append(PointFailure(
            label=outcome.point.label, axes=dict(outcome.point.axes),
            error=outcome.error or "", attempts=outcome.attempts,
            coordinates=outcome.point.describe()))

    def series(self, architecture: str, metric: str = "throughput_msgs_per_s"
               ) -> list[tuple[int, float]]:
        """(consumers, value) pairs for one architecture; infeasible = omitted."""
        points = []
        for consumers in self.consumer_counts:
            result = self.results.get(architecture, {}).get(consumers)
            if result is None or not result.feasible:
                continue
            points.append((consumers, getattr(result, metric)))
        return points

    def architectures(self) -> list[str]:
        return list(self.results)

    def rows(self, metric: str = "throughput_msgs_per_s") -> list[dict]:
        """Long-format rows (architecture, consumers, value) for tables/CSV."""
        rows = []
        for architecture, by_consumers in self.results.items():
            for consumers in self.consumer_counts:
                result = by_consumers.get(consumers)
                if result is None:
                    continue
                rows.append({
                    "workload": self.workload,
                    "pattern": self.pattern,
                    "architecture": architecture,
                    "consumers": consumers,
                    "feasible": result.feasible,
                    metric: getattr(result, metric) if result.feasible else float("nan"),
                })
        return rows

    def get(self, architecture: str, consumers: int) -> Optional[ExperimentResult]:
        return self.results.get(architecture, {}).get(consumers)


class ConsumerSweep:
    """Sweep consumer counts for several architectures from one base config."""

    def __init__(self, base_config: ExperimentConfig, *,
                 architectures: Sequence[str],
                 consumer_counts: Iterable[int] = PAPER_CONSUMER_COUNTS,
                 equal_producers: bool = True) -> None:
        self.base_config = base_config
        self.architectures = list(architectures)
        self.consumer_counts = tuple(consumer_counts)
        self.equal_producers = equal_producers

    def scenario_set(self) -> ScenarioSet:
        """The sweep as scenario points, in the historical execution order."""
        return ScenarioSet.consumer_sweep(
            self.base_config, architectures=self.architectures,
            consumer_counts=self.consumer_counts,
            equal_producers=self.equal_producers)

    def run(self, *,
            session: Optional[Session] = None,
            progress: Optional[Callable[[str, Optional[int], dict],
                                        None]] = None,
            jobs: Optional[int] = None,
            backend: Optional[ExecutionBackend] = None,
            cache: Optional["ResultCache"] = None,
            policy: Optional[ExecutionPolicy] = None) -> SweepResult:
        """Run every (architecture, consumer-count) point.

        ``session`` carries the execution context (backend/jobs, cache,
        policy); a parallel session's results are identical to serial
        execution for the same seeds, and under a session policy with
        ``on_error="record"`` a failed point lands in
        ``SweepResult.failures`` instead of killing the sweep.  The
        ``jobs``/``backend``/``cache``/``policy`` keywords are the
        deprecated pre-session bundle (they build a session internally and
        warn once per process).

        ``progress`` receives ``(label, consumers, axes)`` per point —
        ``consumers`` is ``None`` for points without that axis, and ``axes``
        is the point's full coordinate dict.
        """
        session = Session.resolve(session, backend=backend, jobs=jobs,
                                  cache=cache, policy=policy,
                                  where="ConsumerSweep.run")
        sweep = SweepResult(workload=self.base_config.workload,
                            pattern=self.base_config.pattern,
                            consumer_counts=self.consumer_counts)
        for label in self.architectures:
            sweep.results.setdefault(label, {})

        point_progress: Optional[Callable[[ScenarioPoint], None]] = None
        if progress is not None:
            def point_progress(point: ScenarioPoint) -> None:
                progress(point.label, point.axes.get("consumers"),
                         dict(point.axes))

        outcomes = run_scenarios(self.scenario_set(), session=session,
                                 progress=point_progress)
        for outcome in outcomes:
            if not outcome.ok:
                sweep.record_failure(outcome)
                continue
            point = outcome.point
            consumers = point.axes.get("consumers")
            if consumers is None:  # foreign point without a consumer axis
                continue
            sweep.results.setdefault(point.label, {})[consumers] = outcome.result
        return sweep


# ---------------------------------------------------------------------------
# Testbed-axis sensitivity sweeps
# ---------------------------------------------------------------------------

@dataclass
class SensitivitySweep:
    """Results of a :meth:`ScenarioSet.product` grid over arbitrary axes.

    ``axes`` maps each axis name (``"architecture"``, ``"consumers"``,
    ``"testbed.link_bandwidth_bps"``, ...) to the swept values, in the
    deterministic execution order.  ``results`` is keyed by coordinate
    tuples — one value per axis, in ``axis_names`` order — so every result
    is addressable by its exact grid position; :meth:`rows` flattens the
    grid into long-format records for tables, CSV export and figures.
    """

    axes: dict[str, tuple]
    #: results[(v1, v2, ...)] -> ExperimentResult, keys in axis_names order.
    results: dict[tuple, ExperimentResult] = field(default_factory=dict)
    #: Points that exhausted their execution policy under on_error="record".
    failures: list[PointFailure] = field(default_factory=list)

    @property
    def axis_names(self) -> tuple[str, ...]:
        return tuple(self.axes)

    def __len__(self) -> int:
        return len(self.results)

    def coordinates(self, point_axes: dict) -> tuple:
        return tuple(point_axes[name] for name in self.axes)

    def record(self, outcome: PointOutcome) -> None:
        if not outcome.ok:
            self.failures.append(PointFailure(
                label=outcome.point.label, axes=dict(outcome.point.axes),
                error=outcome.error or "", attempts=outcome.attempts,
                coordinates=outcome.point.describe()))
            return
        self.results[self.coordinates(outcome.point.axes)] = outcome.result

    def get(self, *coordinate) -> Optional[ExperimentResult]:
        """The result at one grid position (values in axis order)."""
        return self.results.get(tuple(coordinate))

    def rows(self, metric: str = "throughput_msgs_per_s") -> list[dict]:
        """Long-format rows: one dict per point with an axis column each.

        Columns are the axis names (dotted paths kept as-is, so rows from
        different sweeps stay joinable), plus ``architecture``, ``feasible``
        and the requested metric (NaN when infeasible).
        """
        rows = []
        for coordinate, result in self.results.items():
            row = dict(zip(self.axis_names, coordinate))
            row.setdefault("architecture", result.architecture)
            row["feasible"] = result.feasible
            row[metric] = (getattr(result, metric) if result.feasible
                           else float("nan"))
            rows.append(row)
        return rows

    def series(self, axis: str, metric: str = "throughput_msgs_per_s",
               **fixed) -> list[tuple]:
        """(axis value, metric) pairs along one axis, other axes fixed.

        ``fixed`` pins the remaining axes by name (dotted names are passed
        via ``**{"testbed.dsn_count": 3}``); axes left unpinned must not
        vary or the pairing would be ambiguous (ValueError).
        """
        if axis not in self.axes:
            raise ValueError(f"unknown axis {axis!r}; have {self.axis_names}")
        unknown = sorted(name for name in fixed if name not in self.axes)
        if unknown:
            raise ValueError(f"unknown fixed axes {unknown}; "
                             f"have {self.axis_names}")
        free = [name for name in self.axes
                if name != axis and name not in fixed and len(self.axes[name]) > 1]
        if free:
            raise ValueError(f"axes {free} vary; pin them via keyword "
                             f"arguments to get an unambiguous series")
        pairs = []
        for coordinate, result in self.results.items():
            position = dict(zip(self.axis_names, coordinate))
            if any(position[name] != value for name, value in fixed.items()):
                continue
            if not result.feasible:
                continue
            pairs.append((position[axis], getattr(result, metric)))
        return pairs


def scale_link_tiers(config: ExperimentConfig) -> ExperimentConfig:
    """Per-point transform for bandwidth sweeps: rescale the backbone and
    gateway tiers to their default ratios against the point's (possibly
    swept) access-link bandwidth — the §6 ablation shape.  Pass as
    ``transform=`` so a ``testbed.link_bandwidth_bps`` axis moves the whole
    operating point, not just the access links.
    """
    return replace(config, testbed=config.testbed.with_link_bandwidth(
        config.testbed.link_bandwidth_bps))


def sensitivity_sweep(base: ExperimentConfig, axes: dict, *,
                      equal_producers: bool = True,
                      transform: Optional[Callable[[ExperimentConfig],
                                                   ExperimentConfig]] = None,
                      session: Optional[Session] = None,
                      jobs: Optional[int] = None,
                      backend: Optional[ExecutionBackend] = None,
                      cache: Optional["ResultCache"] = None,
                      policy: Optional[ExecutionPolicy] = None,
                      progress: Optional[Callable[[ScenarioPoint],
                                                  None]] = None
                      ) -> SensitivitySweep:
    """Run a product grid over arbitrary axes and collect a sensitivity sweep.

    ``axes`` follows :meth:`ScenarioSet.product` exactly (special
    ``architecture``/``consumers`` coordinates plus dotted config paths);
    execution goes through :func:`run_scenarios` under ``session``, so the
    backend, cache and policy behave identically to every other sweep (the
    ``jobs``/``backend``/``cache``/``policy`` keywords are the deprecated
    pre-session bundle).  ``transform`` (applied via
    :meth:`ScenarioSet.map_configs`) lets the sweep derive coupled config
    changes from each point — e.g. rescaling the backbone links along with
    a swept access-link bandwidth.
    """
    session = Session.resolve(session, backend=backend, jobs=jobs,
                              cache=cache, policy=policy,
                              where="sensitivity_sweep")
    scenarios = ScenarioSet.product(base, axes,
                                    equal_producers=equal_producers)
    if transform is not None:
        scenarios.map_configs(transform)
    ordered_axes = ({} if not scenarios else
                    {name: () for name in scenarios[0].axes})
    for name in ordered_axes:
        seen = dict.fromkeys(point.axes[name] for point in scenarios)
        ordered_axes[name] = tuple(seen)
    sweep = SensitivitySweep(axes=ordered_axes)
    for outcome in run_scenarios(scenarios, session=session,
                                 progress=progress):
        sweep.record(outcome)
    return sweep
