"""Persistent benchmark subsystem: the repo's recorded perf trajectory.

The figure/table regeneration benches under ``benchmarks/`` need
pytest-benchmark for nice statistics; this module is the dependency-free
core that CI and the CLI use instead.  It runs the kernel / link / broker /
experiment micro-benches plus a small end-to-end sweep with
``time.perf_counter`` directly, and persists each run as a numbered
``BENCH_<n>.json`` snapshot so speedups and regressions stay visible
across PRs:

* ``repro-streamsim bench`` runs the suite and writes the next
  ``BENCH_<n>.json`` (``BENCH_0.json`` on first run);
* ``repro-streamsim bench --compare`` additionally diffs the fresh run
  against the latest committed snapshot and fails (exit code 1) when any
  bench's median regressed beyond ``--threshold``;
* ``repro-streamsim bench --profile`` dumps cProfile output for one full
  experiment point (the standard profiling recipe).

Snapshots are machine-readable: per-bench median/stdev/min/max seconds
plus the repro version and git SHA that produced them (see
:meth:`BenchReport.to_json_dict` for the schema).
"""

from __future__ import annotations

import gc
import json
import platform
import re
import statistics
import subprocess
import time
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, Optional

from .._version import __version__

__all__ = [
    "BenchResult",
    "BenchReport",
    "bench_names",
    "run_benches",
    "list_snapshots",
    "latest_snapshot",
    "next_snapshot_path",
    "compare_reports",
    "measure_calibration",
    "profile_point",
    "BENCH_SCHEMA_VERSION",
]

BENCH_SCHEMA_VERSION = 1

_SNAPSHOT_RE = re.compile(r"^BENCH_(\d+)\.json$")


# ---------------------------------------------------------------------------
# Bench bodies.  Each returns a check value asserted after the timed call so
# a silently-broken bench cannot masquerade as a fast one.
# ---------------------------------------------------------------------------

def _bench_simkit_event_loop() -> float:
    """Throughput of the bare discrete-event loop (heap timeout chains)."""
    from ..simkit import Environment

    env = Environment()

    def ticker(env, n):
        for _ in range(n):
            yield env.timeout(0.001)

    for _ in range(10):
        env.process(ticker(env, 500))
    env.run()
    assert abs(env.now - 0.5) < 1e-9, env.now
    return env.now


def _bench_simkit_zero_delay() -> float:
    """Throughput of the zero-delay FIFO lane (yield None chains)."""
    from ..simkit import Environment

    env = Environment()

    def spinner(env, n):
        for _ in range(n):
            yield env.timeout(0)

    for _ in range(10):
        env.process(spinner(env, 500))
    env.run()
    assert env._eid >= 5000, env._eid  # every zero-timeout got an eid
    return 1.0


def _bench_link_transfer() -> float:
    """Cost of pushing 1000 messages through a contended 1 Gbps link."""
    from ..netsim import MessageFactory, Network, units
    from ..simkit import Environment

    env = Environment()
    net = Network(env)
    net.add_node("a")
    net.add_node("b")
    link, _ = net.connect("a", "b", bandwidth_bps=units.gbps(1))
    factory = MessageFactory("p")

    def sender(env, link):
        for _ in range(100):
            message = factory.create(units.kib(16), now=env.now)
            yield from link.traverse(message)

    for _ in range(10):
        env.process(sender(env, link))
    env.run()
    transferred = link.monitor.counter("messages").value
    assert transferred == 1000, transferred
    return transferred


def _bench_broker_publish_consume() -> float:
    """Broker-cluster publish/dispatch loop without any network stages."""
    from ..amqp import Broker, BrokerCluster
    from ..netsim import MessageFactory, Network, units
    from ..simkit import Environment

    env = Environment()
    net = Network(env)
    net.add_node("dsn1")
    broker = Broker(env, "rmqs1", net.get_node("dsn1"))
    cluster = BrokerCluster(env, "c", [broker], net)
    queue = cluster.declare_queue("work")
    received = []

    def deliver(message):
        yield env.timeout(0)
        received.append(message)

    queue.subscribe("c1", deliver, prefetch=0)
    factory = MessageFactory("p")

    def producer(env):
        for _ in range(500):
            message = factory.create(units.kib(16), now=env.now,
                                     routing_key="work")
            yield from cluster.publish(broker, message, "", "work")

    env.process(producer(env))
    env.run()
    assert len(received) == 500, len(received)
    return float(len(received))


def _experiment_config():
    from ..architectures import TestbedConfig
    from .config import ExperimentConfig

    return ExperimentConfig(
        architecture="DTS", workload="Dstream", pattern="work_sharing",
        num_producers=4, num_consumers=4, messages_per_producer=25,
        testbed=TestbedConfig(producer_nodes=4, consumer_nodes=4))


def _bench_experiment_point() -> float:
    """Wall-clock cost of one full experiment point (DTS, 4x4, Dstream)."""
    from .experiment import Experiment

    result = Experiment(_experiment_config()).run_single(0)
    assert result.completed
    return float(result.consumed)


def _bench_sweep_end_to_end() -> float:
    """End-to-end scenario sweep (4 points, serial backend, no cache)."""
    from ..architectures import TestbedConfig
    from .config import ExperimentConfig
    from .runner import ScenarioSet
    from .session import Session

    base = ExperimentConfig(
        architecture="DTS", workload="Dstream", pattern="work_sharing",
        num_producers=2, num_consumers=2, messages_per_producer=10,
        testbed=TestbedConfig(producer_nodes=4, consumer_nodes=4))
    scenarios = ScenarioSet.grid(base, architectures=["DTS", "MSS"],
                                 consumer_counts=[1, 2])
    with Session(backend="serial") as session:
        outcomes = session.run(scenarios)
    assert all(outcome.result.feasible for outcome in outcomes)
    return float(len(outcomes))


def _bench_discrete_clients_point() -> float:
    """Baseline: one point with 100 *discrete* clients (population=1).

    The foil for ``population_sweep``: the same testbed and per-client
    workload, but every client is its own producer process, so the cost
    is O(clients).
    """
    from dataclasses import replace

    from .experiment import Experiment

    config = replace(_experiment_config(), num_producers=100)
    result = Experiment(config).run_single(0)
    assert result.completed
    return float(result.consumed)


def _bench_population_sweep() -> float:
    """Aggregate-client scaling: 10^4 logical clients via the population axis.

    Sweeps the opt-in ``populations`` scenario coordinate over {1, 2500}
    on the standard 4-producer point — the K=2500 point stands for
    4 x 2500 = 10^4 logical clients yet simulates only 4 aggregate
    producers, so the whole two-point sweep should stay within ~2x of the
    100-discrete-client baseline above.
    """
    from .runner import ScenarioSet
    from .session import Session

    scenarios = ScenarioSet.grid(_experiment_config(),
                                 populations=[1, 2500])
    with Session(backend="serial") as session:
        outcomes = session.run(scenarios)
    assert len(outcomes) == 2, len(outcomes)
    assert all(outcome.result.feasible for outcome in outcomes)
    # 4 producers x 25 messages x (1 + 2500) logical clients.
    consumed = sum(outcome.result.consumed for outcome in outcomes)
    assert consumed == 250_100, consumed
    return float(consumed)


def _bench_chaos_sweep() -> float:
    """Fault-injected sweep: the standard point at broker-kill rates 0/1.

    Times the whole chaos machinery — plan expansion, the injector's
    event-scheduled kills, queue failover, producer backoff through the
    outage — against the fault-free baseline point sharing the sweep.
    Both points must still deliver every message (faults degrade, they
    do not corrupt).
    """
    from dataclasses import replace

    from ..faults import FaultPlan
    from .runner import ScenarioSet
    from .session import Session

    base = replace(_experiment_config(), faults=FaultPlan())
    scenarios = ScenarioSet.product(
        base, {"faults.broker_kill_rate": [0.0, 1.0]})
    with Session(backend="serial") as session:
        outcomes = session.run(scenarios)
    assert len(outcomes) == 2, len(outcomes)
    assert all(outcome.result.feasible for outcome in outcomes)
    # 4 producers x 25 messages, at each of the two kill rates.
    consumed = sum(outcome.result.consumed for outcome in outcomes)
    assert consumed == 200, consumed
    return float(consumed)


#: Registered benches in execution (and report) order.
_BENCHES: dict[str, Callable[[], float]] = {
    "simkit_event_loop": _bench_simkit_event_loop,
    "simkit_zero_delay": _bench_simkit_zero_delay,
    "link_transfer": _bench_link_transfer,
    "broker_publish_consume": _bench_broker_publish_consume,
    "experiment_point": _bench_experiment_point,
    "sweep_end_to_end": _bench_sweep_end_to_end,
    "discrete_clients_point": _bench_discrete_clients_point,
    "population_sweep": _bench_population_sweep,
    "chaos_sweep": _bench_chaos_sweep,
}


def bench_names() -> list[str]:
    """Names of the registered benches, in execution order."""
    return list(_BENCHES)


# ---------------------------------------------------------------------------
# Running and reporting
# ---------------------------------------------------------------------------

@dataclass
class BenchResult:
    """Timing summary of one bench across its rounds."""

    name: str
    rounds: int
    median_s: float
    stdev_s: float
    min_s: float
    max_s: float
    check: float

    def as_dict(self) -> dict:
        return {
            "rounds": self.rounds,
            "median_s": self.median_s,
            "stdev_s": self.stdev_s,
            "min_s": self.min_s,
            "max_s": self.max_s,
            "check": self.check,
        }

    def as_row(self) -> dict:
        return {"bench": self.name, "rounds": self.rounds,
                "median_s": self.median_s, "stdev_s": self.stdev_s,
                "min_s": self.min_s}


@dataclass
class BenchReport:
    """One benchmark run: per-bench results plus provenance metadata."""

    results: dict[str, BenchResult]
    rounds: int
    repro_version: str
    git_sha: str
    created_at: str
    calibration_s: float

    def to_json_dict(self) -> dict:
        return {
            "schema": BENCH_SCHEMA_VERSION,
            "kind": "repro-streamsim-bench",
            "created_at": self.created_at,
            "repro_version": self.repro_version,
            "git_sha": self.git_sha,
            "python": platform.python_version(),
            "platform": platform.platform(),
            "rounds": self.rounds,
            "calibration_s": self.calibration_s,
            "benches": {name: result.as_dict()
                        for name, result in self.results.items()},
        }

    def rows(self) -> list[dict]:
        return [result.as_row() for result in self.results.values()]

    def save(self, directory: str | Path) -> Path:
        """Write this report as the next ``BENCH_<n>.json`` snapshot."""
        path = next_snapshot_path(directory)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_json_dict(), indent=2,
                                   sort_keys=False) + "\n")
        return path


def measure_calibration(rounds: int = 5) -> float:
    """Best-of-``rounds`` time of a fixed CPU spin loop, in seconds.

    Recorded in every snapshot so comparisons can normalise out
    machine-state drift (background load, frequency scaling, different
    hardware): bench times are gated on the ratio *relative to the spin
    loop*, not on absolute wall time.
    """
    def spin() -> int:
        total = 0
        for value in range(100_000):
            total += value * value
        return total

    spin()  # warmup
    times = []
    for _ in range(max(1, rounds)):
        start = time.perf_counter()
        spin()
        times.append(time.perf_counter() - start)
    return min(times)


def _git_sha() -> str:
    repo_root = Path(__file__).resolve().parents[3]
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=repo_root, timeout=5.0,
            capture_output=True, text=True, check=True)
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    return out.stdout.strip() or "unknown"


def run_benches(names: Optional[Iterable[str]] = None, *,
                rounds: int = 5,
                progress: Optional[Callable[[str], None]] = None) -> BenchReport:
    """Run the selected benches and reduce their timings.

    ``rounds`` timed repetitions per bench (median/stdev over them), after
    one untimed warmup round so import and allocator effects do not
    pollute the samples (essential for single-round smoke comparisons
    against warmed snapshots).
    """
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    selected = list(names) if names is not None else bench_names()
    unknown = [name for name in selected if name not in _BENCHES]
    if unknown:
        raise ValueError(
            f"unknown bench(es): {', '.join(unknown)} "
            f"(available: {', '.join(bench_names())})")

    results: dict[str, BenchResult] = {}
    gc_was_enabled = gc.isenabled()
    try:
        for name in selected:
            func = _BENCHES[name]
            if progress is not None:
                progress(name)
            func()  # warmup
            # Collect once, then keep the collector out of the timed rounds
            # so background GC pauses do not pollute the medians.
            gc.collect()
            gc.disable()
            times = []
            check = 0.0
            for _ in range(rounds):
                start = time.perf_counter()
                check = func()
                times.append(time.perf_counter() - start)
            if gc_was_enabled:
                gc.enable()
            results[name] = BenchResult(
                name=name, rounds=rounds,
                median_s=statistics.median(times),
                stdev_s=statistics.stdev(times) if len(times) >= 2 else 0.0,
                min_s=min(times), max_s=max(times), check=check)
    finally:
        if gc_was_enabled:
            gc.enable()

    return BenchReport(
        results=results, rounds=rounds, repro_version=__version__,
        git_sha=_git_sha(),
        created_at=datetime.now(timezone.utc).isoformat(timespec="seconds"),
        calibration_s=measure_calibration())


# ---------------------------------------------------------------------------
# Snapshot trajectory on disk
# ---------------------------------------------------------------------------

def list_snapshots(directory: str | Path) -> list[tuple[int, Path]]:
    """``(index, path)`` of every ``BENCH_<n>.json`` under ``directory``."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    snapshots = []
    for path in sorted(directory.iterdir()):
        match = _SNAPSHOT_RE.match(path.name)
        if match:
            snapshots.append((int(match.group(1)), path))
    return sorted(snapshots)


def latest_snapshot(directory: str | Path) -> Optional[tuple[int, dict]]:
    """Load the highest-numbered snapshot, or None when there is none."""
    snapshots = list_snapshots(directory)
    if not snapshots:
        return None
    index, path = snapshots[-1]
    try:
        return index, json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"unreadable benchmark snapshot {path}: {exc}") from exc


def next_snapshot_path(directory: str | Path) -> Path:
    """Path of the snapshot a fresh ``bench`` run should write."""
    snapshots = list_snapshots(directory)
    index = snapshots[-1][0] + 1 if snapshots else 0
    return Path(directory) / f"BENCH_{index}.json"


# ---------------------------------------------------------------------------
# Comparison (regression gate)
# ---------------------------------------------------------------------------

def _gate_time(bench: Mapping[str, Any], *, side: str) -> float:
    """The statistic the regression gate compares for one side.

    The gate is deliberately asymmetric: the *current* run contributes its
    best round (scheduler/allocator noise only ever makes a round slower,
    so the minimum is the robust cheap estimate of true cost), while the
    recorded snapshot contributes its median (its typical round).  A run
    whose *best* round is still ``threshold`` slower than the recorded
    *typical* round has genuinely regressed; transient machine noise
    rarely survives that test.  Falls back to whichever statistic a
    hand-written snapshot provides.
    """
    first, second = (("min_s", "median_s") if side == "current"
                     else ("median_s", "min_s"))
    value = bench.get(first)
    if value is None:
        value = bench[second]
    return float(value)


def compare_reports(current: Mapping[str, Any], previous: Mapping[str, Any],
                    *, threshold: float = 0.2,
                    current_calibration: Optional[float] = None,
                    previous_calibration: Optional[float] = None,
                    ) -> tuple[list[dict], list[str]]:
    """Diff two snapshot ``benches`` mappings (see :func:`_gate_time`).

    Returns ``(rows, regressions)``: one row per bench present in either
    snapshot and the names that regressed by more than ``threshold`` (a
    fraction: 0.2 means 20 % slower fails).

    Two layers of machine-drift normalisation keep the gate meaningful on
    shared/noisy hardware:

    * when both calibration times are given (:func:`measure_calibration`),
      current times are scaled by ``previous_calibration /
      current_calibration`` (CPU-speed drift);
    * with at least three benches on both sides, each bench additionally
      gets its ratio *relative to the suite's median ratio* (``vs_suite``
      in the rows): allocator/cache pressure slows every bench together
      and cancels out of that comparison, while a regression in one hot
      path stands out against the rest of the suite.

    A bench is flagged only when BOTH views exceed the threshold — slower
    in absolute (calibration-scaled) terms AND slower than the suite
    moved as a whole; either alone is indistinguishable from machine
    state.  With fewer than three common benches the absolute ratio gates
    alone.
    """
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    scale = 1.0
    if (current_calibration and previous_calibration
            and current_calibration > 0):
        scale = previous_calibration / current_calibration

    ratios: dict[str, float] = {}
    for name in previous:
        prev = previous.get(name)
        cur = current.get(name)
        if prev is None or cur is None:
            continue
        prev_time = _gate_time(prev, side="previous")
        cur_time = _gate_time(cur, side="current") * scale
        ratios[name] = (cur_time / prev_time if prev_time > 0
                        else float("inf"))
    drift = statistics.median(ratios.values()) if len(ratios) >= 3 else 1.0

    rows: list[dict] = []
    regressions: list[str] = []
    names = list(dict.fromkeys([*previous, *current]))
    for name in names:
        prev = previous.get(name)
        cur = current.get(name)
        if cur is None:
            rows.append({"bench": name,
                         "previous_s": _gate_time(prev, side="previous"),
                         "current_s": None, "ratio": None, "vs_suite": None,
                         "status": "missing"})
            continue
        if prev is None:
            rows.append({"bench": name, "previous_s": None,
                         "current_s": _gate_time(cur, side="current"),
                         "ratio": None, "vs_suite": None, "status": "new"})
            continue
        prev_time = _gate_time(prev, side="previous")
        cur_time = _gate_time(cur, side="current") * scale
        ratio = ratios[name]
        vs_suite = ratio / drift if drift > 0 else float("inf")
        if min(ratio, vs_suite) > 1.0 + threshold:
            status = "REGRESSION"
            regressions.append(name)
        elif max(ratio, vs_suite) < 1.0 - threshold:
            status = "improved"
        else:
            status = "ok"
        rows.append({"bench": name, "previous_s": prev_time,
                     "current_s": cur_time, "ratio": ratio,
                     "vs_suite": vs_suite, "status": status})
    return rows, regressions


# ---------------------------------------------------------------------------
# Profiling recipe
# ---------------------------------------------------------------------------

def profile_point(out_path: Optional[str | Path] = None, *,
                  top: int = 25) -> str:
    """cProfile one full experiment point; return the formatted hot spots.

    With ``out_path`` the raw stats are also dumped for ``snakeviz`` /
    ``pstats`` consumption.
    """
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    _bench_experiment_point()
    profiler.disable()
    if out_path is not None:
        profiler.dump_stats(str(out_path))
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(top)
    return buffer.getvalue()
