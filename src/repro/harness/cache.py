"""On-disk result cache for the scenario runner.

Format: one JSON file, ``{"version": 1, "entries": {<key>: <entry>}}``,
where ``<key>`` is :meth:`ScenarioPoint.cache_key` (a content hash of the
point's config and kind) and ``<entry>`` holds the point description, a
*code fingerprint* (see :func:`code_fingerprint`) and the
:meth:`~repro.harness.results.ExperimentResult.to_json_dict` payload.
Figure regeneration passes the same cache file back in and every
already-computed point is loaded instead of re-simulated, so e.g.
``repro-streamsim figure fig5 --cache fig.json`` after ``fig6 --cache
fig.json`` only runs the points fig6 did not cover.

Version awareness: every entry records the fingerprint of the ``repro``
source tree that produced it.  An entry whose fingerprint no longer matches
the running code is treated as a miss and evicted (its result may reflect
old simulation semantics); pass ``allow_stale=True`` (CLI:
``--allow-stale``) to serve such entries anyway.

Robustness: a corrupt or truncated cache file (interrupted write, disk
full, hand editing) is quarantined to ``<path>.corrupt[-N]`` with a warning
and the cache starts empty, instead of crashing the sweep that tried to use
it.  A file whose declared format version is unknown still raises — that is
a deliberate mismatch, not corruption.

Results are also persisted *incrementally* while a sweep runs (see
``run_scenarios``): :meth:`ResultCache.maybe_save` flushes to disk every
``autosave_interval`` stores, so killing a long parallel sweep midway
leaves its completed points reusable.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import warnings
from typing import Optional

from .._version import __version__
from .results import ExperimentResult
from .runner import ScenarioPoint

__all__ = ["ResultCache", "CACHE_VERSION", "code_fingerprint"]

CACHE_VERSION = 1

_fingerprint: Optional[str] = None


def code_fingerprint() -> str:
    """Hash of the ``repro`` package source plus its version string.

    Computed once per process by walking every ``.py`` file under the
    installed ``repro`` package in a deterministic order.  Any source edit
    or version bump changes the fingerprint, which is what invalidates
    cache entries written by older code.
    """
    global _fingerprint
    if _fingerprint is None:
        package_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        digest = hashlib.sha256()
        digest.update(__version__.encode())
        for dirpath, dirnames, filenames in os.walk(package_root):
            dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
            for name in sorted(filenames):
                if not name.endswith(".py"):
                    continue
                path = os.path.join(dirpath, name)
                digest.update(os.path.relpath(path, package_root).encode())
                digest.update(b"\0")
                with open(path, "rb") as handle:
                    digest.update(handle.read())
                digest.update(b"\0")
        _fingerprint = digest.hexdigest()[:16]
    return _fingerprint


def _quarantine_path(path: str) -> str:
    candidate = f"{path}.corrupt"
    counter = 1
    while os.path.exists(candidate):
        candidate = f"{path}.corrupt-{counter}"
        counter += 1
    return candidate


class ResultCache:
    """A dict of experiment results keyed by scenario content hash."""

    def __init__(self, path: str, *, allow_stale: bool = False,
                 autosave_interval: int = 1,
                 autosave_min_s: float = 1.0) -> None:
        self.path = path
        self.allow_stale = allow_stale
        self.autosave_interval = max(1, autosave_interval)
        #: Wall-clock throttle between autosaves.  Each save rewrites the
        #: whole file, so per-point saving would cost O(N^2) serialization
        #: over a long sweep; throttling bounds a kill's losses to about
        #: this much completed work instead.
        self.autosave_min_s = autosave_min_s
        self._entries: dict[str, dict] = {}
        self._dirty = False
        self._stores_since_save = 0
        self._last_autosave = 0.0
        #: Entries evicted because their code fingerprint went stale.
        self.stale_evicted = 0
        if os.path.exists(path):
            payload = self._load_payload(path)
            if payload is not None:
                if payload.get("version") != CACHE_VERSION:
                    raise ValueError(
                        f"result cache {path!r} has version "
                        f"{payload.get('version')!r}; expected {CACHE_VERSION}")
                self._entries = dict(payload.get("entries", {}))

    @staticmethod
    def _load_payload(path: str) -> Optional[dict]:
        """Parse the cache file; quarantine and warn instead of raising on
        a corrupt/truncated file (returns None so the cache starts empty)."""
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
            if not isinstance(payload, dict):
                raise ValueError(f"top-level JSON value is "
                                 f"{type(payload).__name__}, not an object")
        except (json.JSONDecodeError, UnicodeDecodeError, ValueError) as exc:
            quarantined = _quarantine_path(path)
            os.replace(path, quarantined)
            warnings.warn(
                f"result cache {path!r} is corrupt ({exc}); moved it to "
                f"{quarantined!r} and starting with an empty cache",
                RuntimeWarning, stacklevel=3)
            return None
        return payload

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, point: ScenarioPoint) -> bool:
        entry = self._entries.get(point.cache_key())
        if entry is None:
            return False
        return self.allow_stale or entry.get("fingerprint") == code_fingerprint()

    def load(self, point: ScenarioPoint) -> Optional[ExperimentResult]:
        """The cached result for ``point``, or ``None`` on a miss.

        An entry written by a different version of the ``repro`` source is
        stale: it is evicted and reported as a miss (so the point gets
        recomputed), unless the cache was opened with ``allow_stale=True``.
        """
        key = point.cache_key()
        entry = self._entries.get(key)
        if entry is None:
            return None
        if not self.allow_stale and entry.get("fingerprint") != code_fingerprint():
            del self._entries[key]
            self.stale_evicted += 1
            self._dirty = True
            return None
        return ExperimentResult.from_json_dict(entry["result"])

    def store(self, point: ScenarioPoint, result: ExperimentResult) -> None:
        self._entries[point.cache_key()] = {
            "point": point.describe(),
            "fingerprint": code_fingerprint(),
            "result": result.to_json_dict(),
        }
        self._dirty = True
        self._stores_since_save += 1

    def maybe_save(self) -> None:
        """Flush to disk if enough stores *and* wall clock have accumulated
        (``autosave_interval`` / ``autosave_min_s``); :meth:`save` at the end
        of a run is unconditional."""
        if (self._stores_since_save >= self.autosave_interval
                and time.monotonic() - self._last_autosave >= self.autosave_min_s):
            self.save()

    def save(self) -> None:
        """Write the cache back to disk (atomically) if anything changed."""
        if not self._dirty:
            return
        payload = {"version": CACHE_VERSION, "entries": self._entries}
        tmp_path = f"{self.path}.tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(tmp_path, self.path)
        self._dirty = False
        self._stores_since_save = 0
        self._last_autosave = time.monotonic()
