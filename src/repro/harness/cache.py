"""On-disk result cache for the scenario runner (sharded by key prefix).

Format: a *directory* of shard files, ``<path>/<xx>.json``, where ``xx`` is
the first two hex characters of :meth:`ScenarioPoint.cache_key` (a content
hash of the point's config and kind).  Each shard holds ``{"version": 1,
"entries": {<key>: <entry>}}`` and each ``<entry>`` holds the point
description, a *code fingerprint* (see :func:`code_fingerprint`) and the
:meth:`~repro.harness.results.ExperimentResult.to_json_dict` payload.
Figure regeneration passes the same cache path back in and every
already-computed point is loaded instead of re-simulated, so e.g.
``repro-streamsim figure fig5 --cache fig-cache`` after ``fig6 --cache
fig-cache`` only runs the points fig6 did not cover.

Sharding keeps flushes O(dirty shard), not O(total entries): the runner
persists results incrementally as points complete, and with one monolithic
file every flush rewrote the entire cache — quadratic over a long sweep.
With 256 shards only the files whose entries changed since the last flush
are rewritten (each atomically, via a temp file).  Caches written by the
old single-file layout are migrated automatically on open: the file's
entries are resharded into a directory at the same path and the original is
removed.  A crash mid-migration leaves the original as
``<path>.migrating``; the next open folds it back into the shard directory
(fresher shard entries win) and deletes it.

Version awareness: every entry records the fingerprint of the ``repro``
source tree that produced it.  An entry whose fingerprint no longer matches
the running code is treated as a miss and evicted (its result may reflect
old simulation semantics); pass ``allow_stale=True`` (CLI:
``--allow-stale``) to serve such entries anyway.

Robustness: a corrupt or truncated shard (interrupted write, disk full,
hand editing) is quarantined to ``<shard>.corrupt[-N]`` with a warning and
that shard starts empty, instead of crashing the sweep that tried to use
it.  A file whose declared format version is unknown still raises — that is
a deliberate mismatch, not corruption.

Concurrent writers: flushing is *read-merge-write* per shard under a
per-shard lock file (``<shard>.json.lock``; ``flock`` where available,
else an exclusive-create spin lock with stale-lock breaking).  Before the
atomic ``os.replace`` the flusher folds any on-disk entries it has not
seen — another process's completed points — into the outgoing payload, so
N independent writer processes sharing one cache directory lose nothing
(the wire model for distributed backends).  Keys this process deliberately
evicted (stale fingerprints) stay evicted rather than resurrecting from
disk; conflicting writes to the *same* key resolve last-writer-wins.
Lock files are tiny and persist between runs (removing one under a live
``flock`` holder would break mutual exclusion); ``cache gc``/``compact``
leave them alone.

Results are also persisted *incrementally* while a sweep runs (see
``run_scenarios``): :meth:`ResultCache.maybe_save` flushes to disk every
``autosave_interval`` stores, so killing a long parallel sweep midway
leaves its completed points reusable.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import warnings
from contextlib import contextmanager
from typing import Iterator, Optional

try:  # POSIX; Windows falls back to the exclusive-create spin lock
    import fcntl
except ImportError:  # pragma: no cover - platform-dependent
    fcntl = None  # type: ignore[assignment]

from .._version import __version__
from .results import ExperimentResult
from .runner import ScenarioPoint

__all__ = ["ResultCache", "CACHE_VERSION", "code_fingerprint",
           "shard_lock", "LOCK_SUFFIX"]

CACHE_VERSION = 1

#: Suffix of the per-shard lock files (``<shard>.json.lock``).
LOCK_SUFFIX = ".lock"

#: How long :func:`shard_lock` waits before giving up (spin-lock fallback).
LOCK_TIMEOUT_S = 30.0

#: Age past which a fallback lock file is presumed abandoned (holder died
#: without cleanup) and broken.  ``flock`` locks release with the process
#: and never need this.
LOCK_STALE_S = 60.0

_fingerprint: Optional[str] = None


def code_fingerprint() -> str:
    """Hash of the ``repro`` package source plus its version string.

    Computed once per process by walking every ``.py`` file under the
    installed ``repro`` package in a deterministic order.  Any source edit
    or version bump changes the fingerprint, which is what invalidates
    cache entries written by older code.
    """
    global _fingerprint
    if _fingerprint is None:
        package_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        digest = hashlib.sha256()
        digest.update(__version__.encode())
        for dirpath, dirnames, filenames in os.walk(package_root):
            dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
            for name in sorted(filenames):
                if not name.endswith(".py"):
                    continue
                path = os.path.join(dirpath, name)
                digest.update(os.path.relpath(path, package_root).encode())
                digest.update(b"\0")
                with open(path, "rb") as handle:
                    digest.update(handle.read())
                digest.update(b"\0")
        _fingerprint = digest.hexdigest()[:16]
    return _fingerprint


def _quarantine_path(path: str) -> str:
    candidate = f"{path}.corrupt"
    counter = 1
    while os.path.exists(candidate):
        candidate = f"{path}.corrupt-{counter}"
        counter += 1
    return candidate


def _shard_name(key: str) -> str:
    return key[:2]


@contextmanager
def shard_lock(shard_path: str, *,
               timeout_s: float = LOCK_TIMEOUT_S) -> Iterator[None]:
    """Cross-process mutual exclusion for one shard file.

    Holds ``<shard_path>.lock`` for the duration of the ``with`` block.
    Where ``fcntl`` exists the lock is an exclusive ``flock`` on that file
    (released automatically if the holder dies); elsewhere it is an
    exclusive-create spin lock that breaks locks older than
    ``LOCK_STALE_S`` seconds and raises ``TimeoutError`` after
    ``timeout_s``.  Under ``flock`` the lock file persists between runs —
    deleting it under a live holder would hand a second process a fresh
    inode and break the exclusion — while the fallback removes it on
    release (its existence *is* the lock).
    """
    lock_path = f"{shard_path}{LOCK_SUFFIX}"
    parent = os.path.dirname(lock_path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    if fcntl is not None:
        handle = open(lock_path, "a")
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        finally:
            handle.close()
        return
    # Fallback: O_CREAT|O_EXCL succeeds for exactly one process at a time.
    deadline = time.monotonic() + timeout_s
    while True:
        try:
            fd = os.open(lock_path,
                         os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            break
        except FileExistsError:
            try:
                # Lock-staleness detection is inherently wall-clock: it
                # measures how long a *dead* flusher has held the lock,
                # never anything result-bearing.
                age = time.time() - os.stat(lock_path).st_mtime  # repro: allow[D003]
            except OSError:  # released in the gap; retry immediately
                continue
            if age > LOCK_STALE_S:
                try:  # the holder died mid-flush; break its lock
                    os.remove(lock_path)
                except OSError:
                    pass
                continue
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"could not acquire shard lock {lock_path!r} within "
                    f"{timeout_s}s (remove it manually if its owner is "
                    f"dead)") from None
            time.sleep(0.01)
    try:
        yield
    finally:
        os.close(fd)
        try:
            os.remove(lock_path)
        except OSError:  # pragma: no cover - best effort
            pass


class ResultCache:
    """A dict of experiment results keyed by scenario content hash,
    persisted as one JSON shard per two-hex-character key prefix."""

    def __init__(self, path: str, *, allow_stale: bool = False,
                 autosave_interval: int = 1,
                 autosave_min_s: float = 1.0) -> None:
        self.path = path
        self.allow_stale = allow_stale
        self.autosave_interval = max(1, autosave_interval)
        #: Wall-clock throttle between autosaves.  Sharding already bounds a
        #: flush to the shards that changed; the throttle additionally keeps
        #: very fast sweeps from hitting the filesystem per point, at the
        #: cost of a kill losing about this much completed work.
        self.autosave_min_s = autosave_min_s
        self._entries: dict[str, dict] = {}
        self._dirty_shards: set[str] = set()
        #: Keys this process deliberately evicted (stale fingerprints).
        #: The merge-on-flush must not resurrect them from disk.
        self._evicted: set[str] = set()
        self._stores_since_save = 0
        self._last_autosave = 0.0
        #: Entries evicted because their code fingerprint went stale.
        self.stale_evicted = 0
        if os.path.isfile(path):
            self._migrate_single_file(path)
        else:
            if os.path.isdir(path):
                self._load_shards(path)
            self._recover_interrupted_migration(path)

    # -- on-disk layout -----------------------------------------------------------
    @staticmethod
    def _load_payload(path: str) -> Optional[dict]:
        """Parse one cache file; quarantine and warn instead of raising on
        a corrupt/truncated file (returns None so that shard starts empty)."""
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
            if not isinstance(payload, dict):
                raise ValueError(f"top-level JSON value is "
                                 f"{type(payload).__name__}, not an object")
        except (json.JSONDecodeError, UnicodeDecodeError, ValueError) as exc:
            quarantined = _quarantine_path(path)
            os.replace(path, quarantined)
            warnings.warn(
                f"result cache {path!r} is corrupt ({exc}); moved it to "
                f"{quarantined!r} and starting with an empty cache",
                RuntimeWarning, stacklevel=3)
            return None
        if payload.get("version") != CACHE_VERSION:
            raise ValueError(
                f"result cache {path!r} has version "
                f"{payload.get('version')!r}; expected {CACHE_VERSION}")
        return payload

    def _migrate_single_file(self, path: str) -> None:
        """Reshard a pre-sharding single-file cache into the directory
        layout, preserving every entry (auto-migration on open)."""
        payload = self._load_payload(path)
        if payload is None:  # corrupt: quarantined; nothing to migrate
            return
        self._entries = dict(payload.get("entries", {}))
        staging = f"{path}.migrating"
        os.replace(path, staging)
        os.makedirs(path, exist_ok=True)
        self._dirty_shards = {_shard_name(key) for key in self._entries}
        self._write_dirty_shards()
        os.remove(staging)

    def _recover_interrupted_migration(self, path: str) -> None:
        """Finish a migration that crashed mid-reshard: fold the stranded
        ``<path>.migrating`` backup into the shard directory (shards win —
        they may already hold fresher post-crash entries)."""
        staging = f"{path}.migrating"
        if not os.path.isfile(staging):
            return
        payload = self._load_payload(staging)
        if payload is not None:
            recovered = {key: entry
                         for key, entry in payload.get("entries", {}).items()
                         if key not in self._entries}
            if recovered:
                self._entries.update(recovered)
                self._dirty_shards.update(_shard_name(key)
                                          for key in recovered)
                os.makedirs(path, exist_ok=True)
                self._write_dirty_shards()
        if os.path.exists(staging):  # _load_payload quarantines corruption
            os.remove(staging)

    def _load_shards(self, path: str) -> None:
        for name in sorted(os.listdir(path)):
            if len(name) != 7 or not name.endswith(".json"):
                continue
            payload = self._load_payload(os.path.join(path, name))
            if payload is not None:
                self._entries.update(payload.get("entries", {}))

    # -- mapping protocol -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def _evict_stale(self, key: str) -> None:
        """Drop a stale-fingerprint entry: it never comes back (not even
        via the merge-on-flush) and its shard is rewritten on save."""
        del self._entries[key]
        self.stale_evicted += 1
        self._evicted.add(key)
        self._dirty_shards.add(_shard_name(key))

    def __contains__(self, point: ScenarioPoint) -> bool:
        entry = self._entries.get(point.cache_key())
        if entry is None:
            return False
        if self.allow_stale or entry.get("fingerprint") == code_fingerprint():
            return True
        # Same semantics as load(): a membership-only probe evicts the
        # stale entry too, so `point in cache` and cache.load(point) agree
        # and stale entries cannot outlive either kind of lookup.
        self._evict_stale(point.cache_key())
        return False

    def load(self, point: ScenarioPoint) -> Optional[ExperimentResult]:
        """The cached result for ``point``, or ``None`` on a miss.

        An entry written by a different version of the ``repro`` source is
        stale: it is evicted and reported as a miss (so the point gets
        recomputed), unless the cache was opened with ``allow_stale=True``.
        """
        key = point.cache_key()
        entry = self._entries.get(key)
        if entry is None:
            return None
        if not self.allow_stale and entry.get("fingerprint") != code_fingerprint():
            self._evict_stale(key)
            return None
        return ExperimentResult.from_json_dict(entry["result"])

    def store(self, point: ScenarioPoint, result: ExperimentResult) -> None:
        key = point.cache_key()
        self._entries[key] = {
            "point": point.describe(),
            "fingerprint": code_fingerprint(),
            "result": result.to_json_dict(),
        }
        self._evicted.discard(key)
        self._dirty_shards.add(_shard_name(key))
        self._stores_since_save += 1

    def maybe_save(self) -> None:
        """Flush to disk if enough stores *and* wall clock have accumulated
        (``autosave_interval`` / ``autosave_min_s``); :meth:`save` at the end
        of a run is unconditional."""
        if (self._stores_since_save >= self.autosave_interval
                and time.monotonic() - self._last_autosave >= self.autosave_min_s):
            self.save()

    def save(self) -> None:
        """Write the dirty shards back to disk (each atomically)."""
        if not self._dirty_shards:
            return
        os.makedirs(self.path, exist_ok=True)
        self._write_dirty_shards()
        self._stores_since_save = 0
        self._last_autosave = time.monotonic()

    def _merge_on_disk(self, shard_path: str, entries: dict) -> None:
        """Fold a concurrent writer's entries into the outgoing payload.

        Called under the shard lock, just before the atomic replace: any
        key on disk that this process has neither seen nor deliberately
        evicted was completed by another writer since our last read — it
        joins both the payload and our in-memory view, so N independent
        flushers lose zero points.  Keys present on both sides resolve to
        this process's value (last writer wins per key).
        """
        if not os.path.exists(shard_path):
            return
        payload = self._load_payload(shard_path)
        if payload is None:  # corrupt: quarantined, nothing to merge
            return
        for key, entry in payload.get("entries", {}).items():
            if key in self._entries or key in self._evicted:
                continue
            entries[key] = entry
            self._entries[key] = entry

    def _write_dirty_shards(self) -> None:
        by_shard: dict[str, dict[str, dict]] = {name: {}
                                                for name in self._dirty_shards}
        for key, entry in self._entries.items():
            shard = _shard_name(key)
            if shard in by_shard:
                by_shard[shard][key] = entry
        for shard, entries in by_shard.items():
            shard_path = os.path.join(self.path, f"{shard}.json")
            with shard_lock(shard_path):
                self._merge_on_disk(shard_path, entries)
                if not entries:
                    # Every entry in the shard was evicted.
                    if os.path.exists(shard_path):
                        os.remove(shard_path)
                    continue
                tmp_path = f"{shard_path}.tmp"
                with open(tmp_path, "w", encoding="utf-8") as handle:
                    json.dump({"version": CACHE_VERSION, "entries": entries},
                              handle)
                os.replace(tmp_path, shard_path)
        self._dirty_shards.clear()
