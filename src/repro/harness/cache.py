"""On-disk result cache for the scenario runner.

Format: one JSON file, ``{"version": 1, "entries": {<key>: <entry>}}``,
where ``<key>`` is :meth:`ScenarioPoint.cache_key` (a content hash of the
point's config and kind) and ``<entry>`` holds the point description plus
the :meth:`~repro.harness.results.ExperimentResult.to_json_dict` payload.
Figure regeneration passes the same cache file back in and every
already-computed point is loaded instead of re-simulated, so e.g.
``repro-streamsim figure fig5 --cache fig.json`` after ``fig6 --cache
fig.json`` only runs the points fig6 did not cover.
"""

from __future__ import annotations

import json
import os
from typing import Optional

from .results import ExperimentResult
from .runner import ScenarioPoint

__all__ = ["ResultCache", "CACHE_VERSION"]

CACHE_VERSION = 1


class ResultCache:
    """A dict of experiment results keyed by scenario content hash."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._entries: dict[str, dict] = {}
        self._dirty = False
        if os.path.exists(path):
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
            if payload.get("version") != CACHE_VERSION:
                raise ValueError(
                    f"result cache {path!r} has version "
                    f"{payload.get('version')!r}; expected {CACHE_VERSION}")
            self._entries = dict(payload.get("entries", {}))

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, point: ScenarioPoint) -> bool:
        return point.cache_key() in self._entries

    def load(self, point: ScenarioPoint) -> Optional[ExperimentResult]:
        """The cached result for ``point``, or ``None`` on a miss."""
        entry = self._entries.get(point.cache_key())
        if entry is None:
            return None
        return ExperimentResult.from_json_dict(entry["result"])

    def store(self, point: ScenarioPoint, result: ExperimentResult) -> None:
        self._entries[point.cache_key()] = {
            "point": point.describe(),
            "result": result.to_json_dict(),
        }
        self._dirty = True

    def save(self) -> None:
        """Write the cache back to disk (atomically) if anything changed."""
        if not self._dirty:
            return
        payload = {"version": CACHE_VERSION, "entries": self._entries}
        tmp_path = f"{self.path}.tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(tmp_path, self.path)
        self._dirty = False
