"""Cache lifecycle administration: stats, GC, compaction, named profiles.

The sharded :class:`~repro.harness.cache.ResultCache` accumulates history:
versioned fingerprints mean every source change strands the previous
entries as dead weight in their shards, quarantined ``.corrupt`` files
pile up next to them, and nothing ever rewrites a shard that is mostly
stale.  This module is the administrative surface over a cache *directory*
(the CLI front end is ``repro-streamsim cache ...``):

* :func:`collect_stats` — entries/bytes/shards broken down per code
  fingerprint, the stale fraction, quarantined-file counts and the list of
  saved profiles.  Read-only: unlike opening a ``ResultCache``, statistics
  never quarantine or evict anything.
* :func:`gc_cache` — evict every entry whose fingerprint is not the
  running code's, delete shards that empty out, and optionally purge
  ``.corrupt`` quarantine files.  ``dry_run=True`` reports without writing.
* :func:`compact_cache` — rewrite every shard with its entries in sorted
  key order and clear leftover ``.tmp`` files.  Surviving entries are
  byte-identical before and after (the JSON round-trip preserves key
  order, escaping and float repr), so compaction is safe under the
  bit-identity goldens.
* :func:`snapshot_cache` / :func:`rollback_cache` — **named cache
  profiles** under ``<path>/.profiles/<name>/``: snapshot the shard set
  before a risky kernel change, roll back after.  A rollback restores
  exactly the snapshot-time shard set — byte-identical shard files, extra
  shards removed — and touches nothing else (lock files, quarantines and
  other profiles stay).

Every operation that writes takes the same per-shard lock
(:func:`~repro.harness.cache.shard_lock`) as the flush path, so admin
commands are safe to run next to live writers; a rollback concurrent with
a writer is last-writer-wins per shard, like any other flush.
"""

from __future__ import annotations

import glob
import json
import os
import re
import shutil
import time
from dataclasses import dataclass, field
from typing import Optional

from .._version import __version__
from .cache import CACHE_VERSION, code_fingerprint, shard_lock

__all__ = [
    "CacheAdminError",
    "CacheStats",
    "FingerprintStats",
    "GCReport",
    "CompactReport",
    "ProfileInfo",
    "RollbackReport",
    "collect_stats",
    "gc_cache",
    "compact_cache",
    "snapshot_cache",
    "rollback_cache",
    "list_profiles",
    "delete_profile",
    "PROFILES_DIR",
]

#: Subdirectory of a cache that holds named profiles.
PROFILES_DIR = ".profiles"

#: Manifest file written into each profile directory.
PROFILE_MANIFEST = "profile.json"

#: Profile names: filesystem-safe, no leading dot (the profiles directory
#: itself is the only dotted name under a cache).
_PROFILE_NAME = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


class CacheAdminError(RuntimeError):
    """A cache admin operation cannot proceed (bad path, unknown profile,
    name collision...).  The CLI turns this into a clean diagnostic."""


def _shard_paths(path: str) -> list[str]:
    """Every shard file of a cache directory, sorted by name."""
    return sorted(p for p in glob.glob(os.path.join(path, "??.json"))
                  if os.path.isfile(p))


def _read_shard(shard_path: str) -> Optional[dict]:
    """Parse one shard without side effects: ``None`` when unreadable
    (admin statistics must not quarantine), raise on a version mismatch
    (that is a deliberate incompatibility, not corruption)."""
    try:
        with open(shard_path, encoding="utf-8") as handle:
            payload = json.load(handle)
        if not isinstance(payload, dict):
            return None
    except (json.JSONDecodeError, UnicodeDecodeError, OSError):
        return None
    if payload.get("version") != CACHE_VERSION:
        raise CacheAdminError(
            f"cache shard {shard_path!r} has version "
            f"{payload.get('version')!r}; expected {CACHE_VERSION}")
    return payload


def _require_directory(path: str, *, verb: str) -> None:
    if os.path.isfile(path):
        raise CacheAdminError(
            f"{path!r} is a pre-sharding single-file cache; open it once "
            f"with ResultCache (any sweep with --cache does) to migrate "
            f"it, then {verb} the directory")


def _quarantine_files(path: str) -> list[str]:
    return sorted(glob.glob(os.path.join(path, "*.corrupt*")))


def _tmp_files(path: str) -> list[str]:
    return sorted(glob.glob(os.path.join(path, "??.json.tmp")))


# ---------------------------------------------------------------------------
# Statistics
# ---------------------------------------------------------------------------

@dataclass
class FingerprintStats:
    """Entry/byte totals for one code fingerprint found in a cache."""

    fingerprint: str
    entries: int = 0
    bytes: int = 0
    shards: set = field(default_factory=set)
    #: True when the fingerprint is not the running code's (a GC target).
    stale: bool = False

    def as_row(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "entries": self.entries,
            "bytes": self.bytes,
            "shards": len(self.shards),
            "status": "stale" if self.stale else "current",
        }


@dataclass
class CacheStats:
    """One read-only census of a sharded cache directory."""

    path: str
    shards: int = 0
    entries: int = 0
    total_bytes: int = 0
    stale_entries: int = 0
    #: Shard files present but unreadable (quarantine candidates).
    corrupt_shards: int = 0
    quarantined: int = 0
    quarantined_bytes: int = 0
    profiles: list = field(default_factory=list)
    fingerprints: dict = field(default_factory=dict)

    @property
    def stale_fraction(self) -> float:
        return self.stale_entries / self.entries if self.entries else 0.0

    def rows(self) -> list[dict]:
        """Per-fingerprint rows (current first, then by entry count)."""
        return [stats.as_row() for stats in
                sorted(self.fingerprints.values(),
                       key=lambda s: (s.stale, -s.entries, s.fingerprint))]

    def summary(self) -> str:
        return (f"{self.entries} entries in {self.shards} shard(s), "
                f"{self.total_bytes} bytes; {self.stale_entries} stale "
                f"({self.stale_fraction:.0%}), {self.corrupt_shards} "
                f"unreadable shard(s), {self.quarantined} quarantined "
                f"file(s), {len(self.profiles)} profile(s)")


def collect_stats(path: str) -> CacheStats:
    """Census a cache directory without modifying it.

    A missing directory reads as an empty cache (a session whose cache
    never flushed has no directory yet); a legacy single-file cache is an
    error directing the caller to migrate it first.
    """
    _require_directory(path, verb="inspect")
    stats = CacheStats(path=path)
    if not os.path.isdir(path):
        return stats
    current = code_fingerprint()
    for shard_path in _shard_paths(path):
        payload = _read_shard(shard_path)
        if payload is None:
            stats.corrupt_shards += 1
            continue
        stats.shards += 1
        stats.total_bytes += os.path.getsize(shard_path)
        shard = os.path.basename(shard_path)
        # Stats are integer counters and set unions — commutative, so the
        # JSON dict's insertion order cannot leak into the output.
        for entry in payload.get("entries", {}).values():  # repro: allow[D004]
            fingerprint = entry.get("fingerprint") or "<none>"
            per = stats.fingerprints.get(fingerprint)
            if per is None:
                per = stats.fingerprints[fingerprint] = FingerprintStats(
                    fingerprint=fingerprint, stale=fingerprint != current)
            per.entries += 1
            per.bytes += len(json.dumps(entry))
            per.shards.add(shard)
            stats.entries += 1
            if per.stale:
                stats.stale_entries += 1
    for name in _quarantine_files(path):
        stats.quarantined += 1
        stats.quarantined_bytes += os.path.getsize(name)
    stats.profiles = [profile.name for profile in list_profiles(path)]
    return stats


# ---------------------------------------------------------------------------
# Garbage collection
# ---------------------------------------------------------------------------

@dataclass
class GCReport:
    """What one :func:`gc_cache` pass did (or would do, under dry_run)."""

    path: str
    dry_run: bool = False
    scanned_shards: int = 0
    scanned_entries: int = 0
    evicted: int = 0
    rewritten_shards: int = 0
    deleted_shards: int = 0
    purged_quarantine: int = 0
    bytes_reclaimed: int = 0

    def summary(self) -> str:
        verb = "would evict" if self.dry_run else "evicted"
        return (f"{verb} {self.evicted}/{self.scanned_entries} entries "
                f"({self.rewritten_shards} shard(s) rewritten, "
                f"{self.deleted_shards} deleted, {self.purged_quarantine} "
                f"quarantine file(s) purged, {self.bytes_reclaimed} bytes "
                f"reclaimed)")


def gc_cache(path: str, *, purge_quarantine: bool = False,
             dry_run: bool = False) -> GCReport:
    """Evict every stale-fingerprint entry from a cache directory.

    Entries whose fingerprint matches the running code survive untouched
    (their bytes are not rewritten unless the shard lost a neighbor);
    shards that empty out are deleted.  ``purge_quarantine`` also removes
    ``<shard>.corrupt[-N]`` files.  ``dry_run`` reports the same counts
    without writing anything.  Each shard is processed under its lock, so
    GC is safe next to live writers.
    """
    _require_directory(path, verb="gc")
    report = GCReport(path=path, dry_run=dry_run)
    if not os.path.isdir(path):
        return report
    current = code_fingerprint()
    for shard_path in _shard_paths(path):
        with shard_lock(shard_path):
            payload = _read_shard(shard_path)
            if payload is None:
                continue
            entries = payload.get("entries", {})
            report.scanned_shards += 1
            report.scanned_entries += len(entries)
            fresh = {key: entry for key, entry in entries.items()
                     if entry.get("fingerprint") == current}
            dead = len(entries) - len(fresh)
            if not dead:
                continue
            report.evicted += dead
            size_before = os.path.getsize(shard_path)
            if dry_run:
                if fresh:
                    survivor = json.dumps({"version": CACHE_VERSION,
                                           "entries": fresh})
                    report.bytes_reclaimed += size_before - len(survivor)
                    report.rewritten_shards += 1
                else:
                    report.bytes_reclaimed += size_before
                    report.deleted_shards += 1
                continue
            if not fresh:
                os.remove(shard_path)
                report.deleted_shards += 1
                report.bytes_reclaimed += size_before
                continue
            tmp_path = f"{shard_path}.tmp"
            with open(tmp_path, "w", encoding="utf-8") as handle:
                json.dump({"version": CACHE_VERSION, "entries": fresh},
                          handle)
            os.replace(tmp_path, shard_path)
            report.rewritten_shards += 1
            report.bytes_reclaimed += size_before - os.path.getsize(shard_path)
    if purge_quarantine:
        for name in _quarantine_files(path):
            report.purged_quarantine += 1
            report.bytes_reclaimed += os.path.getsize(name)
            if not dry_run:
                os.remove(name)
    return report


# ---------------------------------------------------------------------------
# Compaction
# ---------------------------------------------------------------------------

@dataclass
class CompactReport:
    """What one :func:`compact_cache` pass rewrote."""

    path: str
    shards: int = 0
    entries: int = 0
    bytes_before: int = 0
    bytes_after: int = 0
    removed_tmp: int = 0

    def summary(self) -> str:
        return (f"compacted {self.entries} entries across {self.shards} "
                f"shard(s): {self.bytes_before} -> {self.bytes_after} "
                f"bytes, {self.removed_tmp} leftover .tmp file(s) removed")


def compact_cache(path: str) -> CompactReport:
    """Rewrite every shard with entries in sorted key order.

    Interleaved multi-writer flushes leave shard entries in arrival order;
    compaction normalizes that (deterministic diffs, stable downstream
    hashing) and clears ``.tmp`` leftovers from crashed flushes.  Each
    surviving entry is byte-identical before and after — the JSON
    round-trip preserves the entry's own key order, string escaping and
    float repr — so compaction never perturbs the bit-identity goldens.
    """
    _require_directory(path, verb="compact")
    report = CompactReport(path=path)
    if not os.path.isdir(path):
        return report
    for shard_path in _shard_paths(path):
        with shard_lock(shard_path):
            payload = _read_shard(shard_path)
            if payload is None:
                continue
            entries = payload.get("entries", {})
            report.shards += 1
            report.entries += len(entries)
            report.bytes_before += os.path.getsize(shard_path)
            ordered = {key: entries[key] for key in sorted(entries)}
            tmp_path = f"{shard_path}.tmp"
            with open(tmp_path, "w", encoding="utf-8") as handle:
                json.dump({"version": CACHE_VERSION, "entries": ordered},
                          handle)
            os.replace(tmp_path, shard_path)
            report.bytes_after += os.path.getsize(shard_path)
    for name in _tmp_files(path):
        os.remove(name)
        report.removed_tmp += 1
    return report


# ---------------------------------------------------------------------------
# Named profiles (snapshot / rollback)
# ---------------------------------------------------------------------------

@dataclass
class ProfileInfo:
    """One named profile: a frozen copy of the cache's shard set."""

    name: str
    path: str
    created: float = 0.0
    fingerprint: str = ""
    repro_version: str = ""
    shards: int = 0
    entries: int = 0

    def as_row(self) -> dict:
        return {
            "profile": self.name,
            "entries": self.entries,
            "shards": self.shards,
            "fingerprint": self.fingerprint or "?",
            "repro": self.repro_version or "?",
            "created": (time.strftime("%Y-%m-%d %H:%M:%S",
                                      time.localtime(self.created))
                        if self.created else "?"),
        }


@dataclass
class RollbackReport:
    """What one :func:`rollback_cache` restored."""

    profile: ProfileInfo
    restored_shards: int = 0
    removed_shards: int = 0

    def summary(self) -> str:
        return (f"rolled back to profile {self.profile.name!r}: "
                f"{self.restored_shards} shard(s) restored "
                f"({self.profile.entries} entries), "
                f"{self.removed_shards} newer shard(s) removed")


def _profiles_root(path: str) -> str:
    return os.path.join(path, PROFILES_DIR)


def _profile_path(path: str, name: str) -> str:
    if not _PROFILE_NAME.match(name):
        raise CacheAdminError(
            f"invalid profile name {name!r}; use letters, digits, dots, "
            f"dashes and underscores (no leading dot)")
    return os.path.join(_profiles_root(path), name)


def _read_manifest(profile_dir: str) -> dict:
    manifest = os.path.join(profile_dir, PROFILE_MANIFEST)
    try:
        with open(manifest, encoding="utf-8") as handle:
            payload = json.load(handle)
        return payload if isinstance(payload, dict) else {}
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        return {}


def _profile_info(profile_dir: str) -> ProfileInfo:
    manifest = _read_manifest(profile_dir)
    shards = _shard_paths(profile_dir)
    entries = manifest.get("entries")
    if entries is None:  # manifest lost: recount from the shard copies
        entries = 0
        for shard_path in shards:
            payload = _read_shard(shard_path)
            entries += len(payload.get("entries", {})) if payload else 0
    return ProfileInfo(
        name=os.path.basename(profile_dir),
        path=profile_dir,
        created=manifest.get("created", 0.0),
        fingerprint=manifest.get("fingerprint", ""),
        repro_version=manifest.get("repro_version", ""),
        shards=len(shards),
        entries=entries,
    )


def snapshot_cache(path: str, name: str, *, force: bool = False
                   ) -> ProfileInfo:
    """Freeze the cache's current shard set as profile ``name``.

    The shard files are copied byte-for-byte (each under its shard lock,
    so a concurrent flush cannot tear the copy) into
    ``<path>/.profiles/<name>/`` along with a small manifest.  An existing
    profile of the same name is an error unless ``force=True`` replaces
    it.  Quarantine files, lock files and other profiles are not part of
    a snapshot.
    """
    _require_directory(path, verb="snapshot")
    if not os.path.isdir(path):
        raise CacheAdminError(f"no cache directory at {path!r}; run a "
                              f"sweep with --cache first")
    profile_dir = _profile_path(path, name)
    if os.path.isdir(profile_dir):
        if not force:
            raise CacheAdminError(
                f"profile {name!r} already exists; pass --force to "
                f"replace it")
        shutil.rmtree(profile_dir)
    os.makedirs(profile_dir)
    entries = 0
    shards = 0
    for shard_path in _shard_paths(path):
        with shard_lock(shard_path):
            payload = _read_shard(shard_path)
            if payload is None:
                continue
            shutil.copyfile(shard_path,
                            os.path.join(profile_dir,
                                         os.path.basename(shard_path)))
        entries += len(payload.get("entries", {}))
        shards += 1
    manifest = {
        "name": name,
        "created": time.time(),
        "fingerprint": code_fingerprint(),
        "repro_version": __version__,
        "shards": shards,
        "entries": entries,
    }
    with open(os.path.join(profile_dir, PROFILE_MANIFEST), "w",
              encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2)
    return _profile_info(profile_dir)


def rollback_cache(path: str, name: str) -> RollbackReport:
    """Restore the shard set saved as profile ``name``.

    After a rollback the cache's shard files are byte-identical to the
    snapshot: every profile shard is copied back (atomically, under its
    shard lock) and shards created *since* the snapshot are removed.
    Lock files, quarantine files and the profiles directory itself are
    untouched — a rollback rewinds results, not administrative state.
    """
    _require_directory(path, verb="roll back")
    profile_dir = _profile_path(path, name)
    if not os.path.isdir(profile_dir):
        known = ", ".join(p.name for p in list_profiles(path)) or "none"
        raise CacheAdminError(f"unknown profile {name!r} "
                              f"(saved profiles: {known})")
    report = RollbackReport(profile=_profile_info(profile_dir))
    saved = {os.path.basename(p) for p in _shard_paths(profile_dir)}
    for shard_path in _shard_paths(path):
        if os.path.basename(shard_path) not in saved:
            with shard_lock(shard_path):
                os.remove(shard_path)
            report.removed_shards += 1
    for shard_name in sorted(saved):
        shard_path = os.path.join(path, shard_name)
        with shard_lock(shard_path):
            tmp_path = f"{shard_path}.tmp"
            shutil.copyfile(os.path.join(profile_dir, shard_name), tmp_path)
            os.replace(tmp_path, shard_path)
        report.restored_shards += 1
    return report


def list_profiles(path: str) -> list[ProfileInfo]:
    """Every saved profile of a cache, sorted by name."""
    root = _profiles_root(path)
    if not os.path.isdir(root):
        return []
    return [_profile_info(os.path.join(root, name))
            for name in sorted(os.listdir(root))
            if os.path.isdir(os.path.join(root, name))]


def delete_profile(path: str, name: str) -> None:
    """Remove a saved profile (unknown names are an error)."""
    profile_dir = _profile_path(path, name)
    if not os.path.isdir(profile_dir):
        raise CacheAdminError(f"unknown profile {name!r}")
    shutil.rmtree(profile_dir)
