"""Unified scenario runner: one execution engine behind every sweep.

The paper's evaluation is a grid of *scenario points* — architecture x
workload x pattern x scale x seed — reduced into figures and tables.  This
module is the single place where that grid is executed:

* :class:`ScenarioPoint` — one picklable unit of work (an
  :class:`~repro.harness.config.ExperimentConfig` plus a series label and
  axis metadata used when reassembling results into sweeps/figures).
* :class:`ScenarioSet` — builder API for grids and sweeps, with a
  deterministic point order.
* :class:`ExecutionBackend` — how the points run: :class:`SerialBackend`
  (in-process, the reference semantics), :class:`ProcessPoolBackend`
  (chunked ``multiprocessing``) or :class:`ThreadPoolBackend` (a thread
  pool, for I/O-light points).  Every simulation seeds its own random
  streams from the config, so parallel execution is bit-identical to serial
  for the same seeds; outcomes are always returned in submission order.
  Backends are addressable by *name* through a registry
  (:func:`register_backend` / :func:`resolve_backend`), which is how future
  distributed backends (``"ssh"``, ``"slurm"``) plug in without growing any
  call signature — they must honor the same :class:`ExecutionPolicy`
  contract in their workers.
* :func:`run_scenarios` — the one entry point used by
  :class:`~repro.harness.sweep.ConsumerSweep`,
  :func:`~repro.core.study.compare_architectures`,
  :func:`~repro.core.study.deployment_comparison`, the figure generators and
  the CLI.  Execution context (backend, cache, policy, progress) is carried
  by a :class:`~repro.harness.session.Session`; the historical
  ``jobs/backend/cache/policy`` keyword bundle still works as a deprecated
  shim that builds a session internally.

Results can be cached to disk (:class:`~repro.harness.cache.ResultCache`) and
reused by figure regeneration: run under a ``Session(cache=...)`` and
already-computed points are loaded instead of re-simulated.
"""

from __future__ import annotations

import concurrent.futures
import hashlib
import itertools
import json
import multiprocessing
import os
import signal
import threading
import time
import traceback
from dataclasses import dataclass, field, fields, is_dataclass, replace
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Iterable,
    Iterator,
    Optional,
    Protocol,
    Sequence,
    Union,
    runtime_checkable,
)

from ..architectures import Testbed, make_architecture
from ..faults import FaultPlan
from ..simkit import Environment
from .config import ExperimentConfig
from .results import ExperimentResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .cache import ResultCache
    from .session import Session

__all__ = [
    "ScenarioPoint",
    "ScenarioSet",
    "PointOutcome",
    "ScenarioError",
    "PointTimeout",
    "ExecutionPolicy",
    "ON_ERROR_MODES",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "ThreadPoolBackend",
    "BackendFactory",
    "register_backend",
    "unregister_backend",
    "backend_names",
    "create_backend",
    "resolve_backend",
    "run_scenarios",
]

#: ``ScenarioPoint.kind`` values understood by the execution engine.
POINT_KINDS = ("experiment", "deployment")


class ScenarioError(RuntimeError):
    """A scenario point crashed (as opposed to being infeasible).

    Infeasible deployments are *results* (``feasible=False``); this error
    means the simulation itself raised.  Both backends surface it the same
    way: the first failing point in submission order wins.
    """

    def __init__(self, label: str, message: str, attempts: int = 1) -> None:
        noun = "attempt" if attempts == 1 else "attempts"
        super().__init__(f"scenario point {label!r} failed "
                         f"after {attempts} {noun}: {message}")
        self.label = label
        self.attempts = attempts


class PointTimeout(Exception):
    """A scenario point exceeded its :class:`ExecutionPolicy` timeout."""


#: Failure-handling modes understood by :class:`ExecutionPolicy`.
ON_ERROR_MODES = ("raise", "skip", "record")


@dataclass(frozen=True)
class ExecutionPolicy:
    """Per-point fault-tolerance policy, enforced inside the worker.

    The policy is picklable and travels with each point across the process
    boundary, so :class:`SerialBackend` and :class:`ProcessPoolBackend`
    enforce it identically:

    * ``timeout_s`` — wall-clock budget for one attempt.  A point that
      exceeds it is interrupted with :class:`PointTimeout` (via
      ``SIGALRM``; enforcement is skipped when the platform has no alarm
      signal or the attempt runs outside the process's main thread).
    * ``retries`` — extra attempts after the first failure or timeout.
      Every attempt calls :func:`execute_point` afresh, and every
      simulation derives all of its randomness from the point's config, so
      a retried point is bit-identical to one that succeeded first try.
    * ``backoff_s`` — linear backoff: attempt *n* (1-based) waits
      ``backoff_s * n`` seconds before retrying.
    * ``on_error`` — what :func:`run_scenarios` does with a point whose
      attempts are exhausted: ``"raise"`` (the default, and the historical
      behavior) raises :class:`ScenarioError`, ``"skip"`` drops the point
      from the outcomes (submission order of the survivors is preserved),
      ``"record"`` returns a failed :class:`PointOutcome` (``result is
      None``, ``error`` holds the worker traceback).
    """

    timeout_s: Optional[float] = None
    retries: int = 0
    backoff_s: float = 0.0
    on_error: str = "raise"

    def __post_init__(self) -> None:
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive (or None)")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.backoff_s < 0:
            raise ValueError("backoff_s must be >= 0")
        if self.on_error not in ON_ERROR_MODES:
            raise ValueError(f"unknown on_error mode {self.on_error!r}; "
                             f"expected one of {ON_ERROR_MODES}")

    @property
    def max_attempts(self) -> int:
        return self.retries + 1


@dataclass
class ScenarioPoint:
    """One unit of work for the execution engine.

    ``label`` names the series the point belongs to (usually the
    architecture); ``axes`` carries whatever coordinates the caller needs to
    reassemble results (consumer count, workload, sweep variable...).  The
    whole point must be picklable so it can cross a process boundary.
    """

    config: ExperimentConfig
    label: str = ""
    axes: dict = field(default_factory=dict)
    #: "experiment" runs the full measurement; "deployment" deploys the
    #: architecture control-plane only and returns a DeploymentReport.
    kind: str = "experiment"

    def __post_init__(self) -> None:
        if not self.label:
            self.label = self.config.architecture
        if self.kind not in POINT_KINDS:
            raise ValueError(f"unknown point kind {self.kind!r}; "
                             f"expected one of {POINT_KINDS}")

    def cache_key(self) -> str:
        """Stable content hash of the point (config + kind)."""
        canonical = json.dumps({"kind": self.kind,
                                "config": self.config.to_json_dict()},
                               sort_keys=True, default=str)
        return hashlib.sha256(canonical.encode()).hexdigest()[:32]

    def describe(self) -> dict:
        info = {"label": self.label, "kind": self.kind, **self.axes}
        info.update(self.config.describe())
        return info


@dataclass
class PointOutcome:
    """A scenario point paired with whatever it produced.

    Under ``ExecutionPolicy(on_error="record")`` a point whose attempts are
    exhausted still yields an outcome: ``result`` is ``None`` and ``error``
    holds the worker's traceback text.  Check :attr:`ok` before touching
    ``result`` when a policy is in play.
    """

    point: ScenarioPoint
    #: ExperimentResult for "experiment" points, DeploymentReport for
    #: "deployment" points; None when the point failed (``error`` is set).
    result: Any
    #: True when the result came from a ResultCache instead of a simulation.
    cached: bool = False
    #: Worker traceback text when the point exhausted its attempts.
    error: Optional[str] = None
    #: How many attempts the point took (1 on first-try success or cache hit).
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.error is None


def _axis_values(name: str, values, default: Sequence) -> list:
    """Resolve one grid axis: ``None`` keeps the base config's value; an
    explicitly empty sequence is an error (``seeds=[]`` silently falling
    back to the base seed has bitten real sweeps)."""
    if values is None:
        return list(default)
    values = list(values)
    if not values:
        raise ValueError(f"axis {name!r} is an empty sequence; pass None "
                         f"(or omit it) to keep the base config's value")
    return values


def _validate_axis_path(base: ExperimentConfig, path: str) -> None:
    """Check a dotted axis path against the config dataclasses.

    ``testbed.link_bandwidth_bps`` walks ExperimentConfig -> TestbedConfig;
    an unknown segment raises a ValueError naming the valid fields so CLI
    typos fail before any simulation runs.
    """
    obj = base
    parts = path.split(".")
    for depth, part in enumerate(parts):
        if not is_dataclass(obj):
            prefix = ".".join(parts[:depth])
            raise ValueError(
                f"invalid axis {path!r}: {prefix!r} is a plain "
                f"{type(obj).__name__} value, not a config object")
        names = {f.name for f in fields(obj)}
        if part not in names:
            raise ValueError(
                f"unknown axis {path!r}: {type(obj).__name__} has no field "
                f"{part!r} (valid fields: {', '.join(sorted(names))})")
        if depth < len(parts) - 1:
            obj = getattr(obj, part)


def _replace_dotted(obj, parts: Sequence[str], value):
    """Functional update of a dotted dataclass path (nested ``replace``)."""
    if len(parts) == 1:
        return replace(obj, **{parts[0]: value})
    child = _replace_dotted(getattr(obj, parts[0]), parts[1:], value)
    return replace(obj, **{parts[0]: child})


def _clean_architecture(base: ExperimentConfig, architecture: str
                        ) -> ExperimentConfig:
    """Move ``base`` to another architecture without leaking options.

    ``base.architecture_options`` travels only with the base's own
    architecture; other points on the axis start from clean options so e.g.
    PRS-specific options cannot mis-configure the MSS/DTS factories.
    """
    options = (dict(base.architecture_options)
               if architecture == base.architecture else {})
    return replace(base, architecture=architecture,
                   architecture_options=options)


class ScenarioSet:
    """An ordered collection of scenario points with grid builders.

    Order is deterministic and significant: backends return outcomes in
    exactly this order, which is what makes parallel sweeps bit-identical to
    serial ones.
    """

    def __init__(self, points: Iterable[ScenarioPoint] = ()) -> None:
        self._points: list[ScenarioPoint] = list(points)

    # -- collection protocol -----------------------------------------------------
    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[ScenarioPoint]:
        return iter(self._points)

    def __getitem__(self, index: int) -> ScenarioPoint:
        return self._points[index]

    @property
    def points(self) -> tuple[ScenarioPoint, ...]:
        return tuple(self._points)

    # -- builders -----------------------------------------------------------
    def add(self, point: ScenarioPoint) -> "ScenarioSet":
        self._points.append(point)
        return self

    def add_config(self, config: ExperimentConfig, *, label: str = "",
                   kind: str = "experiment", **axes) -> "ScenarioSet":
        return self.add(ScenarioPoint(config=config, label=label,
                                      axes=axes, kind=kind))

    def extend(self, points: Iterable[ScenarioPoint]) -> "ScenarioSet":
        self._points.extend(points)
        return self

    def map_configs(self, transform: Callable[[ExperimentConfig],
                                              ExperimentConfig]
                    ) -> "ScenarioSet":
        """Rewrite every point's config through ``transform`` (builder).

        Point order, labels and axes are untouched — this is how derived
        sweeps apply coupled changes a single axis cannot express (e.g.
        rescaling the backbone links along with the access links).
        """
        for point in self._points:
            point.config = transform(point.config)
        return self

    @classmethod
    def grid(cls, base: ExperimentConfig, *,
             architectures: Optional[Sequence[str]] = None,
             workloads: Optional[Sequence[str]] = None,
             patterns: Optional[Sequence[str]] = None,
             consumer_counts: Optional[Sequence[int]] = None,
             populations: Optional[Sequence[int]] = None,
             seeds: Optional[Sequence[int]] = None,
             equal_producers: bool = True) -> "ScenarioSet":
        """Cartesian grid over the paper's scenario axes.

        Any axis left as ``None`` stays fixed at the base config's value; an
        explicitly empty axis raises ``ValueError`` instead of silently
        collapsing onto the base value.  Points are ordered
        architecture-major (matching the historical sweep loops), then
        workload, pattern, consumer count, population and seed.  ``base``'s
        ``architecture_options`` apply only to points whose architecture is
        the base's own — other architectures on the axis start from clean
        options.

        ``populations`` is the opt-in aggregate-client axis: each value K
        makes every producer endpoint stand for K clients (see
        :class:`~repro.workloads.population.ClientPopulation`).  When the
        axis is omitted the points carry no ``population`` coordinate and
        the grid is identical to the historical one.
        """
        scenarios = cls()
        for architecture in _axis_values("architectures", architectures,
                                         [base.architecture]):
            arch_base = _clean_architecture(base, architecture)
            for workload in _axis_values("workloads", workloads,
                                         [base.workload]):
                for pattern in _axis_values("patterns", patterns,
                                            [base.pattern]):
                    config = replace(arch_base, workload=workload,
                                     pattern=pattern)
                    for consumers in _axis_values("consumer_counts",
                                                  consumer_counts,
                                                  [base.num_consumers]):
                        point_config = config.with_consumers(
                            consumers, equal_producers=equal_producers)
                        for population in _axis_values(
                                "populations", populations,
                                [base.population]):
                            pop_config = replace(point_config,
                                                 population=population)
                            # Record the coordinate only when the axis was
                            # requested, so existing grids keep their axes.
                            pop_axes = ({"population": population}
                                        if populations is not None else {})
                            for seed in _axis_values("seeds", seeds,
                                                     [base.seed]):
                                scenarios.add_config(
                                    replace(pop_config, seed=seed),
                                    label=architecture,
                                    workload=workload, pattern=pattern,
                                    consumers=consumers, **pop_axes,
                                    seed=seed)
        return scenarios

    @classmethod
    def product(cls, base: ExperimentConfig, axes: dict, *,
                equal_producers: bool = True) -> "ScenarioSet":
        """Cartesian grid over *arbitrary* config/testbed axes.

        ``axes`` maps axis names to non-empty value sequences.  An axis name
        is either one of two special coordinates —

        * ``"architecture"`` — moves the point to another architecture with
          clean ``architecture_options`` (the base's options travel only
          with the base's own architecture);
        * ``"consumers"`` — applies :meth:`ExperimentConfig.with_consumers`
          so the producer count follows the paper's equal-producers rule
          (disable with ``equal_producers=False``);

        — or a dotted path into the config dataclasses, validated before
        anything runs: ``"seed"``, ``"workload"``, ``"population"``,
        ``"testbed.link_bandwidth_bps"``, ``"testbed.dsn_count"``,
        ``"testbed.ack_policy.mode"``, ...

        Points are ordered architecture-major (when an ``architecture`` axis
        is present), then by the remaining axes in ``axes``' own order,
        rightmost axis fastest — deterministic, so parallel backends stay
        bit-identical to serial.  Every point records its coordinates in
        ``ScenarioPoint.axes`` keyed by the axis names given here.
        """
        if not axes:
            raise ValueError("product needs at least one axis; use "
                             "add_config for a single point")
        names = list(axes)
        if "architecture" in names:  # architecture-major, like grid
            names.remove("architecture")
            names.insert(0, "architecture")
        # ``faults.*`` axes need a plan object to walk into: give a
        # fault-free base the inactive default plan (byte-identical to
        # ``faults=None``) so chaos axes sweep like any other dotted path.
        if base.faults is None and any(
                name.split(".", 1)[0] == "faults" for name in names):
            base = replace(base, faults=FaultPlan())
        ordered: dict[str, list] = {}
        for name in names:
            values = axes[name]
            if values is None:
                raise ValueError(f"axis {name!r} is None; omit the axis to "
                                 f"keep the base config's value")
            ordered[name] = _axis_values(name, values, ())
            if name not in ("architecture", "consumers"):
                _validate_axis_path(base, name)
        scenarios = cls()
        for combo in itertools.product(*ordered.values()):
            coords = dict(zip(ordered, combo))
            config = base
            if "architecture" in coords:
                config = _clean_architecture(config, coords["architecture"])
            # Plain fields before the consumer coordinate: with_consumers
            # reads the (possibly swept) pattern to decide producer counts.
            for name, value in coords.items():
                if name in ("architecture", "consumers"):
                    continue
                config = _replace_dotted(config, name.split("."), value)
            if "consumers" in coords:
                config = config.with_consumers(
                    coords["consumers"], equal_producers=equal_producers)
            scenarios.add(ScenarioPoint(config=config,
                                        label=config.architecture,
                                        axes=coords))
        return scenarios

    @classmethod
    def consumer_sweep(cls, base: ExperimentConfig, *,
                       architectures: Sequence[str],
                       consumer_counts: Sequence[int],
                       equal_producers: bool = True) -> "ScenarioSet":
        """The (architecture, consumer-count) grid behind Figures 4-8."""
        return cls.grid(base, architectures=architectures,
                        consumer_counts=consumer_counts,
                        equal_producers=equal_producers)

    @classmethod
    def deployments(cls, architectures: Sequence[str],
                    base: Optional[ExperimentConfig] = None) -> "ScenarioSet":
        """Control-plane-only deployment points (the Table comparison)."""
        scenarios = cls()
        base = base or ExperimentConfig()
        for offset, label in enumerate(dict.fromkeys(architectures)):
            config = replace(_clean_architecture(base, label),
                             seed=base.seed + offset)
            scenarios.add_config(config, label=label, kind="deployment")
        return scenarios


# ---------------------------------------------------------------------------
# Point execution (shared by every backend; must be picklable, hence
# module-level).
# ---------------------------------------------------------------------------

def execute_point(point: ScenarioPoint) -> Any:
    """Run one scenario point to completion in the current process."""
    if point.kind == "deployment":
        config = point.config
        env = Environment()
        testbed = Testbed(env, replace(config.testbed, seed=config.seed))
        architecture = make_architecture(config.architecture, testbed,
                                         **config.architecture_options)
        env.run(until=env.process(architecture.deploy()))
        return architecture.deployment_report()
    from .experiment import Experiment
    return Experiment(point.config).run()


def _call_with_timeout(point: ScenarioPoint,
                       timeout_s: Optional[float]) -> Any:
    """Run one attempt, interrupted by SIGALRM once ``timeout_s`` elapses.

    Alarm-based enforcement needs the process's main thread and a platform
    with ``SIGALRM`` (pool workers and the serial backend both qualify on
    POSIX); anywhere else the attempt runs unbounded rather than crashing.

    A pre-existing ``ITIMER_REAL`` (an outer timeout wrapping the whole
    sweep, say) is suspended for the attempt and re-armed with its
    remaining time on the way out, so nested timeouts compose instead of
    the inner one silently disarming the outer.
    """
    if (timeout_s is None or not hasattr(signal, "SIGALRM")
            or threading.current_thread() is not threading.main_thread()):
        return execute_point(point)

    running = True

    def _on_alarm(signum, frame):
        # The alarm can fire in the gap between execute_point returning and
        # the timer being cleared below; a completed attempt must not be
        # reclassified as a timeout.
        if running:
            raise PointTimeout(
                f"scenario point {point.label!r} exceeded {timeout_s}s")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    outer_delay, outer_interval = signal.setitimer(signal.ITIMER_REAL,
                                                   timeout_s)
    started = time.monotonic()
    try:
        result = execute_point(point)
        running = False
        return result
    finally:
        # Quiesce our timer before swapping the handler back, then re-arm
        # any pre-existing ITIMER_REAL with its *remaining* time (the old
        # code zeroed it, silently disarming an outer timeout).  An outer
        # timer that expired while we ran is re-armed with a near-zero
        # delay so its handler still fires, just late.
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)
        if outer_delay:
            remaining = outer_delay - (time.monotonic() - started)
            signal.setitimer(signal.ITIMER_REAL, max(remaining, 1e-6),
                             outer_interval)


def _attempt_point(point: ScenarioPoint,
                   policy: Optional[ExecutionPolicy]
                   ) -> tuple[bool, Any, int]:
    """Run a point under a policy: (ok, result-or-traceback, attempts)."""
    max_attempts = policy.max_attempts if policy is not None else 1
    timeout_s = policy.timeout_s if policy is not None else None
    last_failure = ""
    for attempt in range(1, max_attempts + 1):
        if attempt > 1 and policy is not None and policy.backoff_s:
            time.sleep(policy.backoff_s * (attempt - 1))
        try:
            return True, _call_with_timeout(point, timeout_s), attempt
        except Exception:  # noqa: BLE001 - reported to the parent
            last_failure = traceback.format_exc()
    return False, last_failure, max_attempts


def _execute_indexed(
        item: tuple[int, ScenarioPoint, Optional[ExecutionPolicy]]
        ) -> tuple[int, bool, Any, int]:
    """Pool worker: never lets an exception escape (it would lose ordering);
    failures travel back as (index, False, traceback-text, attempts) and are
    handled by the parent in submission order per the policy's on_error."""
    index, point, policy = item
    ok, value, attempts = _attempt_point(point, policy)
    return index, ok, value, attempts


# ---------------------------------------------------------------------------
# Backends
# ---------------------------------------------------------------------------

#: Per-completed-point callback: (index-into-submitted-points, ok, value,
#: attempts), invoked in *completion* order in the parent process.
ResultCallback = Callable[[int, bool, Any, int], None]


@runtime_checkable
class ExecutionBackend(Protocol):
    """How a list of scenario points gets executed.

    ``run`` returns one ``(ok, value, attempts)`` triple per point, *in
    point order*; ``value`` is the point's result when ``ok`` is true and
    the worker's traceback text otherwise.  Implementations must preserve
    ordering — the reassembly code in sweeps and figures depends on it.
    ``policy`` (an :class:`ExecutionPolicy`) governs per-point timeout and
    retries inside the worker.

    ``progress`` timing is backend-defined: the serial backend calls it just
    before each point starts (submission order); the process pool calls it
    as each point completes (completion order).  ``on_result`` fires in the
    parent process as each point finishes (completion order) — it is how
    :func:`run_scenarios` persists results incrementally, so a killed sweep
    leaves its completed points on disk.  Callbacks must not rely on either
    timing for correctness.
    """

    def run(self, points: Sequence[ScenarioPoint],
            progress: Optional[Callable[[ScenarioPoint], None]] = None, *,
            policy: Optional[ExecutionPolicy] = None,
            on_result: Optional[ResultCallback] = None
            ) -> list[tuple[bool, Any, int]]:
        ...  # pragma: no cover - protocol


class SerialBackend:
    """Reference backend: run every point in-process, one after another."""

    def run(self, points: Sequence[ScenarioPoint],
            progress: Optional[Callable[[ScenarioPoint], None]] = None, *,
            policy: Optional[ExecutionPolicy] = None,
            on_result: Optional[ResultCallback] = None
            ) -> list[tuple[bool, Any, int]]:
        outcomes: list[tuple[bool, Any, int]] = []
        for index, point in enumerate(points):
            if progress is not None:
                progress(point)
            ok, value, attempts = _attempt_point(point, policy)
            outcomes.append((ok, value, attempts))
            if on_result is not None:
                on_result(index, ok, value, attempts)
        return outcomes


class ProcessPoolBackend:
    """Chunked multiprocessing backend.

    Points are distributed over ``jobs`` worker processes; results are
    reassembled into submission order, so for the same seeds the output is
    bit-identical to :class:`SerialBackend` (each simulation derives all of
    its randomness from the point's config, never from process state).
    """

    def __init__(self, jobs: Optional[int] = None, *,
                 chunksize: Optional[int] = None,
                 start_method: Optional[str] = None) -> None:
        self.jobs = jobs or os.cpu_count() or 1
        self.chunksize = chunksize
        self.start_method = start_method

    def _chunksize(self, total: int) -> int:
        if self.chunksize is not None:
            return max(1, self.chunksize)
        # ~4 chunks per worker balances load without drowning in IPC.
        return max(1, total // (self.jobs * 4) or 1)

    def run(self, points: Sequence[ScenarioPoint],
            progress: Optional[Callable[[ScenarioPoint], None]] = None, *,
            policy: Optional[ExecutionPolicy] = None,
            on_result: Optional[ResultCallback] = None
            ) -> list[tuple[bool, Any, int]]:
        if not points:
            return []
        if self.jobs <= 1 or len(points) == 1:
            return SerialBackend().run(points, progress, policy=policy,
                                       on_result=on_result)
        context = (multiprocessing.get_context(self.start_method)
                   if self.start_method else multiprocessing.get_context())
        slots: list[Optional[tuple[bool, Any, int]]] = [None] * len(points)
        with context.Pool(processes=min(self.jobs, len(points))) as pool:
            indexed = [(index, point, policy)
                       for index, point in enumerate(points)]
            for index, ok, value, attempts in pool.imap_unordered(
                    _execute_indexed, indexed,
                    chunksize=self._chunksize(len(points))):
                slots[index] = (ok, value, attempts)
                # Persist before the user callback: a progress hook that
                # raises (or a Ctrl-C landing there) must not lose results.
                if on_result is not None:
                    on_result(index, ok, value, attempts)
                if progress is not None:
                    progress(points[index])
        return [slot for slot in slots if slot is not None]


class ThreadPoolBackend:
    """Thread-pool backend for I/O-light points (no process start-up cost).

    Points run on ``jobs`` worker threads via the same indexed worker as the
    process pool, and results are reassembled into submission order, so the
    output is bit-identical to :class:`SerialBackend` for the same seeds
    (every simulation derives all randomness from its own config — no
    process- or thread-global state).  ``on_result``/``progress`` fire in
    the submitting thread, in completion order, mirroring
    :class:`ProcessPoolBackend`.

    Caveat: ``ExecutionPolicy.timeout_s`` is enforced with ``SIGALRM``,
    which only works on the process's main thread — under this backend an
    attempt runs unbounded instead (retries and ``on_error`` handling are
    unaffected).  Simulations are CPU-bound pure Python, so the GIL limits
    speed-up; prefer ``"process"`` for wide sweeps and this backend where
    fork/spawn overhead dominates tiny points.
    """

    def __init__(self, jobs: Optional[int] = None) -> None:
        self.jobs = jobs or os.cpu_count() or 1

    def run(self, points: Sequence[ScenarioPoint],
            progress: Optional[Callable[[ScenarioPoint], None]] = None, *,
            policy: Optional[ExecutionPolicy] = None,
            on_result: Optional[ResultCallback] = None
            ) -> list[tuple[bool, Any, int]]:
        if not points:
            return []
        if self.jobs <= 1 or len(points) == 1:
            return SerialBackend().run(points, progress, policy=policy,
                                       on_result=on_result)
        slots: list[Optional[tuple[bool, Any, int]]] = [None] * len(points)
        with concurrent.futures.ThreadPoolExecutor(
                max_workers=min(self.jobs, len(points))) as pool:
            futures = [pool.submit(_execute_indexed, (index, point, policy))
                       for index, point in enumerate(points)]
            for future in concurrent.futures.as_completed(futures):
                index, ok, value, attempts = future.result()
                slots[index] = (ok, value, attempts)
                # Same discipline as the process pool: persist before the
                # user callback so a raising progress hook loses nothing.
                if on_result is not None:
                    on_result(index, ok, value, attempts)
                if progress is not None:
                    progress(points[index])
        return [slot for slot in slots if slot is not None]


# ---------------------------------------------------------------------------
# Named-backend registry
# ---------------------------------------------------------------------------

#: A backend factory takes ``jobs`` (worker count or None) and returns a
#: ready :class:`ExecutionBackend`.
BackendFactory = Callable[..., ExecutionBackend]

_BACKEND_REGISTRY: dict[str, BackendFactory] = {}


def register_backend(name: str, factory: BackendFactory, *,
                     overwrite: bool = False) -> None:
    """Register a backend factory under a name usable everywhere a backend
    is accepted (``Session(backend="process")``, ``--backend process``,
    :func:`resolve_backend`).

    ``factory`` is called as ``factory(jobs=N_or_None)`` and must return an
    object satisfying the :class:`ExecutionBackend` protocol *and* the
    :class:`ExecutionPolicy` contract (per-point timeout/retry enforced in
    its workers, outcomes in submission order) — that contract, not the
    transport, is what makes a backend a drop-in registry entry; future
    distributed backends (``"ssh"``, ``"slurm"``) register here instead of
    adding kwargs to every entry point.  Re-registering an existing name
    raises unless ``overwrite=True``.
    """
    if not name or not isinstance(name, str):
        raise ValueError("backend name must be a non-empty string")
    if name in _BACKEND_REGISTRY and not overwrite:
        raise ValueError(f"backend {name!r} is already registered; pass "
                         f"overwrite=True to replace it")
    _BACKEND_REGISTRY[name] = factory


def unregister_backend(name: str) -> None:
    """Remove a registered backend name (unknown names are a no-op)."""
    _BACKEND_REGISTRY.pop(name, None)


def backend_names() -> tuple[str, ...]:
    """The registered backend names, sorted."""
    return tuple(sorted(_BACKEND_REGISTRY))


def create_backend(name: str, *, jobs: Optional[int] = None
                   ) -> ExecutionBackend:
    """Build a backend from its registered name."""
    try:
        factory = _BACKEND_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; registered backends: "
            f"{', '.join(backend_names())}") from None
    backend = factory(jobs=jobs)
    if not isinstance(backend, ExecutionBackend):
        raise TypeError(f"backend factory {name!r} returned "
                        f"{type(backend).__name__}, which does not "
                        f"implement the ExecutionBackend protocol")
    return backend


register_backend("serial", lambda jobs=None: SerialBackend())
register_backend("process", lambda jobs=None: ProcessPoolBackend(jobs))
register_backend("thread", lambda jobs=None: ThreadPoolBackend(jobs))


def resolve_backend(backend: Union[ExecutionBackend, str, None] = None,
                    jobs: Optional[int] = None) -> ExecutionBackend:
    """Pick a backend: an explicit instance wins, a registry name is built
    with ``jobs``, then ``jobs > 1`` => process pool, else serial."""
    if isinstance(backend, str):
        return create_backend(backend, jobs=jobs)
    if backend is not None:
        return backend
    if jobs is not None and jobs > 1:
        return ProcessPoolBackend(jobs)
    return SerialBackend()


# ---------------------------------------------------------------------------
# The one entry point
# ---------------------------------------------------------------------------

def run_scenarios(scenarios: Iterable[ScenarioPoint], *,
                  session: Optional["Session"] = None,
                  backend: Union[ExecutionBackend, str, None] = None,
                  jobs: Optional[int] = None,
                  progress: Optional[Callable[[ScenarioPoint], None]] = None,
                  cache: Optional["ResultCache"] = None,
                  policy: Optional[ExecutionPolicy] = None
                  ) -> list[PointOutcome]:
    """Execute scenario points and return outcomes in submission order.

    ``session`` (a :class:`~repro.harness.session.Session`) carries the
    whole execution context — backend, result cache, execution policy and a
    default progress callback.  The legacy ``backend``/``jobs``/``cache``/
    ``policy`` keywords are a deprecation shim: they build a session
    internally and warn once per process; passing both styles is an error.

    The session's cache short-circuits points whose results are already on
    disk and records fresh ones; only "experiment" points are cacheable.
    Fresh results are persisted *as they complete* (not just at the end),
    so a sweep killed midway can be resumed from the points on disk.

    The session's policy (an :class:`ExecutionPolicy`) adds per-point
    timeout and retries, and chooses what exhausted points become: with
    ``on_error="raise"`` (the default, and the behavior without a policy)
    the first failure in submission order raises :class:`ScenarioError`
    regardless of backend; ``"skip"`` drops failed points, keeping the
    survivors in submission order; ``"record"`` returns them as failed
    :class:`PointOutcome` objects (``result=None``, ``error`` set).
    """
    from .session import Session
    session = Session.resolve(session, backend=backend, jobs=jobs,
                              cache=cache, policy=policy,
                              where="run_scenarios")
    backend = session.backend
    cache = session.cache
    policy = session.policy
    if progress is None:
        progress = session.progress
    points = list(scenarios)
    on_error = policy.on_error if policy is not None else "raise"

    outcomes: list[Optional[PointOutcome]] = [None] * len(points)
    pending: list[tuple[int, ScenarioPoint]] = []
    for index, point in enumerate(points):
        cached = (cache.load(point) if cache is not None
                  and point.kind == "experiment" else None)
        if cached is not None:
            outcomes[index] = PointOutcome(point=point, result=cached,
                                           cached=True)
        else:
            pending.append((index, point))

    if pending:
        pending_points = [point for _, point in pending]

        def persist(local_index: int, ok: bool, value: Any,
                    attempts: int) -> None:
            point = pending_points[local_index]
            if ok and cache is not None and point.kind == "experiment":
                cache.store(point, value)
                cache.maybe_save()

        executed = backend.run(pending_points, progress, policy=policy,
                               on_result=persist if cache is not None
                               else None)
        failure: Optional[ScenarioError] = None
        # Every completed result is already persisted (incrementally, via
        # the on_result callback), so one crashed point does not discard
        # the rest of a long sweep's work even under on_error="raise".
        for (index, point), (ok, value, attempts) in zip(pending, executed):
            if not ok:
                if on_error == "record":
                    outcomes[index] = PointOutcome(
                        point=point, result=None, error=value,
                        attempts=attempts)
                elif on_error == "raise" and failure is None:
                    failure = ScenarioError(point.label, value, attempts)
                continue
            outcomes[index] = PointOutcome(point=point, result=value,
                                           attempts=attempts)
        if cache is not None:
            cache.save()
        if failure is not None:
            raise failure
    elif cache is not None:
        cache.save()
    return [outcome for outcome in outcomes if outcome is not None]
