"""Execution sessions: one context object for every sweep's knobs.

PRs 1–3 grew the execution engine three knobs at a time — ``jobs=``,
``backend=``, ``cache=``, ``policy=`` — threaded as a keyword bundle
through every public entry point.  A :class:`Session` replaces that bundle
with a single object holding the resolved backend, the result cache, the
execution policy and a default progress callback::

    from repro.harness import Session

    with Session(backend="process", jobs=8, cache="out/cache",
                 policy=ExecutionPolicy(retries=2)) as session:
        outcomes = session.run(scenarios)
        sweep = ConsumerSweep(base, architectures=archs).run(session=session)

Backends are addressed by *registry name* (``"serial"``, ``"process"``,
``"thread"``; see :func:`~repro.harness.runner.register_backend`), so a
future distributed backend is one ``register_backend("slurm", factory)``
call away from every sweep, figure and CLI subcommand — no new kwargs.

:meth:`Session.from_env` builds the same object from ``REPRO_*``
environment variables and :meth:`Session.from_args` from a parsed CLI
namespace (falling back to the environment for options the command line
left unset), so library code, scripts and the CLI all configure execution
the same way:

=====================  ====================================================
Environment variable   Session field
=====================  ====================================================
``REPRO_BACKEND``      ``backend`` (registry name)
``REPRO_JOBS``         ``jobs`` (worker count, >= 1)
``REPRO_CACHE``        ``cache`` (sharded result-cache directory)
``REPRO_ALLOW_STALE``  ``allow_stale`` (1/true/yes/on)
``REPRO_TIMEOUT``      ``policy.timeout_s`` (seconds)
``REPRO_RETRIES``      ``policy.retries``
``REPRO_BACKOFF``      ``policy.backoff_s`` (seconds)
``REPRO_ON_ERROR``     ``policy.on_error`` (raise|skip|record)
=====================  ====================================================

The legacy keyword bundle still works everywhere it used to: entry points
coerce it through :meth:`Session.resolve`, which builds an equivalent
session and emits one :class:`DeprecationWarning` per process.  A session
is picklable where needed (no live pool is held between runs); a
``progress`` callback travels only if it is itself picklable.
"""

from __future__ import annotations

import os
from dataclasses import asdict
from typing import Any, Callable, Iterable, Mapping, Optional, Union
import warnings

from .cache import ResultCache
from .runner import (
    ON_ERROR_MODES,
    ExecutionBackend,
    ExecutionPolicy,
    PointOutcome,
    ScenarioPoint,
    SerialBackend,
    resolve_backend,
    run_scenarios,
)

__all__ = ["Session", "ENV_PREFIX", "reset_legacy_warning"]

#: Prefix of the environment variables read by :meth:`Session.from_env`.
ENV_PREFIX = "REPRO_"

#: Accepted truthy spellings for boolean environment variables.
_TRUTHY = ("1", "true", "yes", "on")

#: Names of the deprecated per-call keywords the session replaces.
LEGACY_KWARGS = ("jobs", "backend", "cache", "policy")

_legacy_warned = False


def _warn_legacy(where: str) -> None:
    """Deprecation warning for the pre-session kwarg bundle, once/process."""
    global _legacy_warned
    if _legacy_warned:
        return
    _legacy_warned = True
    warnings.warn(
        f"passing jobs=/backend=/cache=/policy= to {where}() is deprecated; "
        f"build a repro.harness.Session and pass session= instead "
        f"(warned once per process)",
        DeprecationWarning, stacklevel=4)


def reset_legacy_warning() -> None:
    """Re-arm the once-per-process legacy-kwarg warning (test hook)."""
    global _legacy_warned
    _legacy_warned = False


class Session:
    """One execution context: backend + cache + policy + progress.

    Parameters
    ----------
    backend:
        A registry name (``"serial"``, ``"process"``, ``"thread"``, or any
        name added via :func:`~repro.harness.runner.register_backend`), an
        :class:`~repro.harness.runner.ExecutionBackend` instance, or
        ``None`` to pick serial/process from ``jobs``.
    jobs:
        Worker count handed to the backend factory (``>= 1``); with no
        explicit backend, ``jobs > 1`` selects the process pool.
    cache:
        A sharded :class:`~repro.harness.cache.ResultCache`, or a path that
        one is opened at (honoring ``allow_stale``), or ``None``.
    policy:
        The :class:`~repro.harness.runner.ExecutionPolicy` enforced inside
        every backend worker, or ``None`` for fail-fast defaults.
    progress:
        Default per-point progress callback for :meth:`run` /
        :func:`~repro.harness.runner.run_scenarios` calls that do not pass
        their own.

    The session is a context manager: leaving the ``with`` block flushes
    the cache to disk (results are also persisted incrementally while runs
    execute, so the final flush is belt and braces).
    """

    def __init__(self, backend: Union[ExecutionBackend, str, None] = None, *,
                 jobs: Optional[int] = None,
                 cache: Union["ResultCache", str, os.PathLike, None] = None,
                 policy: Optional[ExecutionPolicy] = None,
                 allow_stale: bool = False,
                 progress: Optional[Callable[[ScenarioPoint], None]] = None
                 ) -> None:
        if jobs is not None and jobs < 1:
            raise ValueError("jobs must be >= 1")
        if policy is not None and not isinstance(policy, ExecutionPolicy):
            raise TypeError(f"policy must be an ExecutionPolicy, got "
                            f"{type(policy).__name__}")
        self.jobs = jobs
        #: The registry name the backend was built from (None for explicit
        #: instances) — kept for reporting and repr, not dispatch.
        self.backend_name = backend if isinstance(backend, str) else None
        self.backend = resolve_backend(backend, jobs)
        if jobs is not None and jobs > 1 and isinstance(self.backend,
                                                        SerialBackend):
            # e.g. REPRO_BACKEND=serial colliding with REPRO_JOBS=8: the
            # worker count is silently unused, which makes slow sweeps
            # hard to diagnose.
            warnings.warn(f"jobs={jobs} has no effect with the serial "
                          f"backend (points run one at a time)",
                          RuntimeWarning, stacklevel=2)
        if isinstance(cache, (str, os.PathLike)):
            cache = ResultCache(os.fspath(cache), allow_stale=allow_stale)
        self.cache = cache
        self.policy = policy
        self.progress = progress
        self.closed = False

    # -- construction helpers ------------------------------------------------
    @staticmethod
    def _read_env(environ: Mapping[str, str]) -> dict:
        """``REPRO_*`` variables as :meth:`_from_settings` keyword values.

        Unset or blank variables are simply absent, so the result overlays
        cleanly onto other sources (CLI args, library defaults).
        """
        def text(name: str) -> Optional[str]:
            value = environ.get(f"{ENV_PREFIX}{name}", "").strip()
            return value or None

        def number(name: str, convert) -> Optional[float]:
            value = text(name)
            if value is None:
                return None
            try:
                return convert(value)
            except ValueError:
                raise ValueError(f"{ENV_PREFIX}{name}={value!r} is not "
                                 f"a valid {convert.__name__}") from None

        settings: dict = {}
        if (jobs := number("JOBS", int)) is not None:
            settings["jobs"] = jobs
        if (backend := text("BACKEND")) is not None:
            settings["backend"] = backend
        if (cache := text("CACHE")) is not None:
            settings["cache"] = cache
        if (stale := text("ALLOW_STALE")) is not None:
            settings["allow_stale"] = stale.lower() in _TRUTHY
        if (timeout := number("TIMEOUT", float)) is not None:
            settings["timeout_s"] = timeout
        if (retries := number("RETRIES", int)) is not None:
            settings["retries"] = retries
        if (backoff := number("BACKOFF", float)) is not None:
            settings["backoff_s"] = backoff
        if (on_error := text("ON_ERROR")) is not None:
            if on_error not in ON_ERROR_MODES:
                raise ValueError(f"{ENV_PREFIX}ON_ERROR={on_error!r}; "
                                 f"expected one of {ON_ERROR_MODES}")
            settings["on_error"] = on_error
        return settings

    @classmethod
    def _from_settings(cls, settings: dict) -> "Session":
        """Build a session from flat settings (policy fields inline)."""
        timeout_s = settings.pop("timeout_s", None)
        retries = settings.pop("retries", 0)
        backoff_s = settings.pop("backoff_s", 0.0)
        on_error = settings.pop("on_error", "raise")
        policy = settings.pop("policy", None)
        if policy is None and (timeout_s is not None or retries
                               or backoff_s or on_error != "raise"):
            policy = ExecutionPolicy(timeout_s=timeout_s, retries=retries,
                                     backoff_s=backoff_s, on_error=on_error)
        return cls(policy=policy, **settings)

    @classmethod
    def from_env(cls, environ: Optional[Mapping[str, str]] = None
                 ) -> "Session":
        """Build a session purely from ``REPRO_*`` environment variables.

        With nothing set this is ``Session()`` — serial, uncached,
        fail-fast — so scripts can call it unconditionally.
        """
        environ = os.environ if environ is None else environ
        return cls._from_settings(cls._read_env(environ))

    @classmethod
    def from_args(cls, args: Any,
                  environ: Optional[Mapping[str, str]] = None) -> "Session":
        """Build a session from a parsed CLI namespace (see
        ``repro.cli``'s shared execution options), falling back to the
        ``REPRO_*`` environment for anything the command line left at its
        default — the CLI and :meth:`from_env` construct the same object.
        """
        environ = os.environ if environ is None else environ
        settings = cls._read_env(environ)
        # None means "not given on the command line" for every option
        # (including --retries and --on-error, whose parser defaults are
        # None sentinels), so an explicit `--retries 0` / `--on-error
        # raise` overrides the environment instead of silently losing.
        if (jobs := getattr(args, "jobs", None)) is not None:
            settings["jobs"] = jobs
        if (backend := getattr(args, "backend", None)) is not None:
            settings["backend"] = backend
        if (cache := getattr(args, "cache", None)) is not None:
            settings["cache"] = cache
        if getattr(args, "allow_stale", False):
            settings["allow_stale"] = True
        if (timeout := getattr(args, "timeout", None)) is not None:
            settings["timeout_s"] = timeout
        if (retries := getattr(args, "retries", None)) is not None:
            settings["retries"] = retries
        if (on_error := getattr(args, "on_error", None)) is not None:
            settings["on_error"] = on_error
        return cls._from_settings(settings)

    @classmethod
    def resolve(cls, session: Optional["Session"], *,
                backend: Union[ExecutionBackend, str, None] = None,
                jobs: Optional[int] = None,
                cache: Union["ResultCache", str, os.PathLike, None] = None,
                policy: Optional[ExecutionPolicy] = None,
                where: str = "run_scenarios") -> "Session":
        """Coerce (session, legacy kwargs) into one session — the shim
        behind every entry point that still accepts the old bundle.

        * ``session`` alone: returned unchanged.
        * legacy kwargs alone: an equivalent session, plus one
          :class:`DeprecationWarning` per process.
        * both: :class:`TypeError` — mixing the styles would make it
          ambiguous which context wins.
        * neither: the default session (serial, uncached, fail-fast).
        """
        supplied = [name for name, value
                    in zip(LEGACY_KWARGS, (jobs, backend, cache, policy))
                    if value is not None]
        if session is not None:
            if supplied:
                raise TypeError(
                    f"{where}() got both session= and the legacy "
                    f"{'/'.join(supplied)} keyword(s); pass session= only")
            if session.closed:
                raise RuntimeError(
                    f"{where}() got a closed session; build a new Session "
                    f"(or run before leaving the with block)")
            return session
        if supplied:
            _warn_legacy(where)
        return cls(backend=backend, jobs=jobs, cache=cache, policy=policy)

    # -- execution -----------------------------------------------------------
    def run(self, scenarios: Iterable[ScenarioPoint], *,
            progress: Optional[Callable[[ScenarioPoint], None]] = None
            ) -> list[PointOutcome]:
        """Execute scenario points under this session (see
        :func:`~repro.harness.runner.run_scenarios`)."""
        if self.closed:
            raise RuntimeError("session is closed; build a new Session "
                               "(or run before leaving the with block)")
        return run_scenarios(scenarios, session=self, progress=progress)

    # -- lifecycle -----------------------------------------------------------
    def flush(self) -> None:
        """Write any dirty cache shards to disk."""
        if self.cache is not None:
            self.cache.save()

    def cache_stats(self):
        """Lifecycle statistics for this session's result cache
        (:class:`~repro.harness.cache_admin.CacheStats`), or ``None`` when
        the session runs uncached.  Dirty shards are flushed first so the
        census covers everything this session has stored."""
        if self.cache is None:
            return None
        from .cache_admin import collect_stats

        self.cache.save()
        return collect_stats(self.cache.path)

    def close(self) -> None:
        """Flush the cache and mark the session closed (idempotent)."""
        self.flush()
        self.closed = True

    def __enter__(self) -> "Session":
        if self.closed:
            raise RuntimeError("session is closed; build a new Session")
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- reporting -----------------------------------------------------------
    def describe(self) -> dict:
        """The session as a flat dict (for logs and reports)."""
        return {
            "backend": self.backend_name or type(self.backend).__name__,
            "jobs": self.jobs,
            "cache": None if self.cache is None else self.cache.path,
            "policy": None if self.policy is None else asdict(self.policy),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = [f"backend={self.backend_name or type(self.backend).__name__}"]
        if self.jobs is not None:
            parts.append(f"jobs={self.jobs}")
        if self.cache is not None:
            parts.append(f"cache={self.cache.path!r}")
        if self.policy is not None:
            parts.append(f"policy={self.policy!r}")
        if self.closed:
            parts.append("closed")
        return f"<Session {' '.join(parts)}>"
