"""Experiment coordinator.

§5.2: "the simulator includes a coordinator component that serves two
primary functions.  First, it informs producers and consumers about which
queues to use.  Second, it collects metrics from individual
consumers/producers and reports the aggregate results for the entire
experiment."

The :class:`Coordinator` here does the same: it distributes the queue plan
(filled in by the messaging pattern), collects the per-message records from
every producer/consumer app, and triggers its ``done`` event once the run's
expected message/reply counts have been observed so the experiment can stop
the simulation and reduce the metrics.
"""

from __future__ import annotations

from array import array
from typing import Optional

from ..simkit import Environment, Monitor
from ..netsim.message import Message

__all__ = ["Coordinator"]


class Coordinator:
    """Collects per-run measurements and signals completion."""

    def __init__(self, env: Environment, *,
                 expected_consumed: int,
                 expected_replies: int = 0) -> None:
        if expected_consumed < 0 or expected_replies < 0:
            raise ValueError("expected counts must be non-negative")
        self.env = env
        self.expected_consumed = int(expected_consumed)
        self.expected_replies = int(expected_replies)
        self.monitor = Monitor("coordinator")
        self.done = env.event()

        # Queue plan announced to producers and consumers by the pattern.
        self.work_queues: list[str] = []
        self.reply_queues: dict[str, str] = {}

        # Measurement state.  Latency/RTT samples are array('d') column
        # buffers (one C double per message, no boxed floats); the stats
        # layer consumes them without copying.
        self.published = 0
        self.failed_publishes = 0
        self.consumed = 0
        self.replies = 0
        self.consumed_payload_bytes = 0.0
        self.first_publish_time: Optional[float] = None
        self.last_consume_time: Optional[float] = None
        self.latency_samples: array = array("d")
        self.rtt_samples: array = array("d")
        # Parallel multiplicity-weight columns: one entry per sample above.
        # Discrete clients record weight 1.0; an aggregate message of
        # multiplicity K records its representative sample once with weight
        # K.  ``weighted`` flips to True the first time any weight differs
        # from 1, so unweighted runs reduce through the historical
        # (bit-identical) unweighted stats path.
        self.latency_weights: array = array("d")
        self.rtt_weights: array = array("d")
        self.weighted = False
        self.per_consumer_counts: dict[str, int] = {}
        self.per_producer_replies: dict[str, int] = {}
        self.finished_producers: set[str] = set()
        #: Cumulative time spent per element kind (link, broker-host, proxy,
        #: lb, ingress, ...) across all consumed messages — the latency
        #: attribution the paper's hop-count discussion motivates.
        self.hop_time_by_kind: dict[str, float] = {}
        self.hop_count_by_kind: dict[str, int] = {}
        # Hot-path counters, resolved by name exactly once.
        monitor = self.monitor
        self._published_counter = monitor.counter("published")
        self._consumed_counter = monitor.counter("consumed")
        self._replies_counter = monitor.counter("replies")

    # -- queue plan -----------------------------------------------------------
    def announce_queues(self, work_queues: list[str],
                        reply_queues: Optional[dict[str, str]] = None) -> None:
        """Record which queues the pattern declared (visible to all apps)."""
        self.work_queues = list(work_queues)
        self.reply_queues = dict(reply_queues or {})

    # -- recording -----------------------------------------------------------
    def record_publish(self, message: Message) -> None:
        self.published += message.multiplicity
        if self.first_publish_time is None:
            self.first_publish_time = self.env.now
        self._published_counter.value += float(message.multiplicity)

    def record_failed_publish(self, message: Message) -> None:
        self.failed_publishes += message.multiplicity
        self.monitor.count("failed_publishes", float(message.multiplicity))

    def record_consume(self, message: Message, consumer: str) -> None:
        multiplicity = message.multiplicity
        if multiplicity != 1:
            self.weighted = True
        self.consumed += multiplicity
        self.consumed_payload_bytes += message.payload_bytes * multiplicity
        self.last_consume_time = self.env.now
        self.per_consumer_counts[consumer] = (
            self.per_consumer_counts.get(consumer, 0) + multiplicity)
        consumed_at = message.consumed_at
        if consumed_at is not None:
            self.latency_samples.append(consumed_at - message.created_at)
            self.latency_weights.append(float(multiplicity))
        hops = message.hops
        if hops:
            # One pass over the hops feeds both aggregates.  The per-kind
            # time is subtotalled per message before folding into the global
            # dict so float summation order (and thus serialized results)
            # matches the historical hop_breakdown()-based reduction exactly.
            breakdown: dict[str, float] = {}
            counts = self.hop_count_by_kind
            for hop in hops:
                kind = hop.kind
                duration = hop.departed_at - hop.arrived_at
                if kind in breakdown:
                    breakdown[kind] += duration
                else:
                    breakdown[kind] = duration
                # Hop counts are logical: an aggregate message's hop stands
                # for one traversal per represented client.  The hop *times*
                # are not rescaled — aggregate hop durations already embody
                # the K-fold serialization/CPU cost.
                counts[kind] = counts.get(kind, 0) + multiplicity
            times = self.hop_time_by_kind
            for kind, seconds in breakdown.items():
                times[kind] = times.get(kind, 0.0) + seconds
        self._consumed_counter.value += float(multiplicity)
        self._check_done()

    def record_reply(self, reply: Message, producer: str) -> None:
        multiplicity = reply.multiplicity
        if multiplicity != 1:
            self.weighted = True
        self.replies += multiplicity
        self.last_consume_time = self.env.now
        self.per_producer_replies[producer] = (
            self.per_producer_replies.get(producer, 0) + multiplicity)
        request_created = reply.headers.get("request_created_at")
        if request_created is not None:
            self.rtt_samples.append(self.env.now - float(request_created))
            self.rtt_weights.append(float(multiplicity))
        self._replies_counter.value += float(multiplicity)
        self._check_done()

    def record_producer_finished(self, producer: str) -> None:
        self.finished_producers.add(producer)
        self.monitor.count("producers_finished")

    # -- completion -----------------------------------------------------------
    def targets_met(self) -> bool:
        return (self.consumed >= self.expected_consumed
                and self.replies >= self.expected_replies)

    def _check_done(self) -> None:
        if not self.done.triggered and self.targets_met():
            self.done.succeed({
                "consumed": self.consumed,
                "replies": self.replies,
                "time": self.env.now,
            })

    # -- reduction -----------------------------------------------------------
    def measurement_window(self) -> tuple[float, float]:
        """(first publish, last consume) times of the run."""
        start = self.first_publish_time if self.first_publish_time is not None else 0.0
        end = self.last_consume_time if self.last_consume_time is not None else start
        return start, end

    def latency_attribution(self) -> dict[str, float]:
        """Fraction of total hop time spent per element kind (sums to 1)."""
        total = sum(self.hop_time_by_kind.values())
        if total <= 0:
            return {}
        return {kind: seconds / total
                for kind, seconds in sorted(self.hop_time_by_kind.items())}

    def balance_across_consumers(self) -> float:
        """Max/min ratio of per-consumer message counts (1.0 = perfectly even)."""
        counts = [c for c in self.per_consumer_counts.values() if c > 0]
        if not counts:
            return float("nan")
        return max(counts) / min(counts)

    def snapshot(self) -> dict:
        start, end = self.measurement_window()
        return {
            "published": self.published,
            "consumed": self.consumed,
            "replies": self.replies,
            "failed_publishes": self.failed_publishes,
            "first_publish_time": start,
            "last_consume_time": end,
            "consumers": dict(self.per_consumer_counts),
            "producers_finished": sorted(self.finished_producers),
            "hop_time_by_kind": dict(self.hop_time_by_kind),
            "hop_count_by_kind": dict(self.hop_count_by_kind),
            "latency_attribution": self.latency_attribution(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<Coordinator consumed={self.consumed}/{self.expected_consumed} "
                f"replies={self.replies}/{self.expected_replies}>")
