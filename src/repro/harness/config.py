"""Experiment configuration.

An :class:`ExperimentConfig` is the single description of one measurement
point: which architecture, workload and messaging pattern to run, how many
producers/consumers, how many messages, how many repeated runs to average
(the paper uses three), and the testbed parameters.

The paper streams up to 128K messages per run on real hardware; the
simulated default is much smaller so a full figure sweep finishes in
seconds — pass ``messages_per_producer`` explicitly to scale up.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Optional

from ..amqp import AckPolicy
from ..architectures import ARCHITECTURES, TestbedConfig
from ..faults import FaultPlan
from ..workloads import WORKLOADS

__all__ = ["ExperimentConfig", "PATTERN_NAMES"]

#: Messaging patterns implemented by :mod:`repro.patterns`.
PATTERN_NAMES = ("work_sharing", "work_sharing_feedback", "broadcast", "broadcast_gather")


@dataclass
class ExperimentConfig:
    """One experiment point (architecture x workload x pattern x scale)."""

    architecture: str = "DTS"
    workload: str = "Dstream"
    pattern: str = "work_sharing"
    num_producers: int = 1
    num_consumers: int = 1
    #: Messages each producer publishes per run.
    messages_per_producer: int = 50
    #: Clients each producer endpoint stands for (aggregate-client
    #: populations): every producer process emits aggregate messages of this
    #: multiplicity, so a point simulates ``num_producers * population``
    #: logical clients at O(num_producers) cost.  1 = discrete clients
    #: (bit-identical to the historical behaviour).
    population: int = 1
    #: Independent repetitions averaged into the reported point (§5.2: three).
    runs: int = 1
    #: Root random seed; each run derives its own seed from it.
    seed: int = 1
    #: Number of shared work queues for the work-sharing patterns (§5.2: two).
    work_queue_count: int = 2
    #: Pace producers at the workload's nominal data rate instead of full speed.
    rate_limited: bool = False
    #: Let Deleria-style workloads vary events/message (evaluation default: fixed).
    vary_events: bool = False
    #: Per-message consumer compute time (0 = pure forwarding benchmark).
    consumer_processing_time_s: float = 0.0
    #: Request/reply window per producer in the feedback and gather patterns:
    #: a producer stops publishing while this many requests await replies
    #: (0 = unlimited; real master-worker clients always bound this).
    max_outstanding_requests: int = 50
    #: Abort a run after this much simulated time even if targets are unmet.
    max_sim_time_s: float = 3600.0
    #: Testbed parameters (link speeds, pool sizes, ack policy...).
    testbed: TestbedConfig = field(default_factory=TestbedConfig)
    #: Fault-injection plan (chaos axes); ``None`` — and the inactive
    #: all-zero :class:`~repro.faults.FaultPlan` — is the exact pre-fault
    #: code path (golden-digest contract).
    faults: Optional[FaultPlan] = None
    #: Extra keyword arguments forwarded to the architecture factory.
    architecture_options: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.architecture not in ARCHITECTURES:
            raise ValueError(f"unknown architecture {self.architecture!r}; "
                             f"expected one of {sorted(ARCHITECTURES)}")
        if self.workload not in WORKLOADS:
            raise ValueError(f"unknown workload {self.workload!r}; "
                             f"expected one of {sorted(WORKLOADS)}")
        if self.pattern not in PATTERN_NAMES:
            raise ValueError(f"unknown pattern {self.pattern!r}; "
                             f"expected one of {PATTERN_NAMES}")
        if self.num_producers < 1 or self.num_consumers < 1:
            raise ValueError("producer/consumer counts must be >= 1")
        if self.messages_per_producer < 1:
            raise ValueError("messages_per_producer must be >= 1")
        if self.population < 1:
            raise ValueError(
                f"population must be >= 1, got {self.population}")
        if self.runs < 1:
            raise ValueError("runs must be >= 1")
        if self.runs >= 1000:
            # run_seed derives per-run seeds as seed * 1000 + run_index, so
            # 1000+ runs would collide with the next root seed's stream.
            raise ValueError("runs must be < 1000 (the run_seed derivation "
                             "reserves 1000 run slots per root seed)")
        if self.work_queue_count < 1:
            raise ValueError("work_queue_count must be >= 1")
        if self.pattern in ("broadcast", "broadcast_gather") and self.num_producers != 1:
            raise ValueError("broadcast patterns use exactly one producer (§5.5)")

    # -- derived quantities -----------------------------------------------------------
    @property
    def total_messages(self) -> int:
        """Logical messages published per run (before any fan-out)."""
        return self.num_producers * self.messages_per_producer * self.population

    @property
    def total_clients(self) -> int:
        """Logical producer clients the point simulates."""
        return self.num_producers * self.population

    def with_consumers(self, consumers: int, *,
                       equal_producers: bool = True) -> "ExperimentConfig":
        """Copy of this config at a different consumer count (for sweeps)."""
        producers = self.num_producers
        if equal_producers and self.pattern not in ("broadcast", "broadcast_gather"):
            producers = consumers
        return replace(self, num_consumers=consumers, num_producers=producers)

    def with_architecture(self, label: str, **options) -> "ExperimentConfig":
        merged = dict(self.architecture_options)
        merged.update(options)
        return replace(self, architecture=label, architecture_options=merged)

    def run_seed(self, run_index: int) -> int:
        """Derived seed for one run: ``seed * 1000 + run_index``.

        This is the determinism contract for the whole runner: every run of
        every point seeds its random streams from this value alone, so
        retries and parallel execution are bit-identical to a clean serial
        run.  Each root seed owns the 1000 run slots ``[seed*1000, (seed+1)
        *1000)``; ``__post_init__`` rejects ``runs >= 1000`` so distinct
        root seeds can never collide on a derived seed.
        """
        return self.seed * 1000 + run_index

    # -- serialization -----------------------------------------------------------
    def to_json_dict(self) -> dict:
        """Plain-JSON representation; inverse of :meth:`from_json_dict`."""
        payload = asdict(self)
        return payload

    @classmethod
    def from_json_dict(cls, payload: dict) -> "ExperimentConfig":
        payload = dict(payload)
        testbed = dict(payload.get("testbed") or {})
        if "ack_policy" in testbed:
            testbed["ack_policy"] = AckPolicy(**testbed["ack_policy"])
        payload["testbed"] = TestbedConfig(**testbed)
        faults = payload.get("faults")
        if faults is not None:
            payload["faults"] = FaultPlan(**faults)
        return cls(**payload)

    def describe(self) -> dict:
        info = {
            "architecture": self.architecture,
            "workload": self.workload,
            "pattern": self.pattern,
            "producers": self.num_producers,
            "consumers": self.num_consumers,
            "messages_per_producer": self.messages_per_producer,
            "population": self.population,
            "runs": self.runs,
            "seed": self.seed,
        }
        # Fault coordinates appear only when a plan is present, so
        # fault-free descriptions (and the tables built from them) keep
        # their historical columns.
        if self.faults is not None:
            for axis, value in self.faults.describe().items():
                info[f"faults.{axis}"] = value
        return info
