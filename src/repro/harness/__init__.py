"""StreamSim-equivalent experiment harness: configs, coordinator, runner,
sessions, sweeps and result containers.

Everything that "runs many experiment points" — consumer sweeps,
architecture comparisons, figure regeneration, the CLI — goes through the
unified scenario runner in :mod:`repro.harness.runner`.  Execution context
(named backend, result cache, execution policy, progress) travels as one
:class:`~repro.harness.session.Session` object: build it once (directly,
from ``REPRO_*`` environment variables via :meth:`Session.from_env`, or
from CLI args via :meth:`Session.from_args`) and pass ``session=`` to any
entry point; the historical ``jobs/backend/cache/policy`` keyword bundle
still works as a deprecated shim.
"""

from .bench import (
    BenchReport,
    BenchResult,
    bench_names,
    compare_reports,
    latest_snapshot,
    list_snapshots,
    next_snapshot_path,
    profile_point,
    run_benches,
)
from .cache import ResultCache, code_fingerprint, shard_lock
from .cache_admin import (
    CacheAdminError,
    CacheStats,
    CompactReport,
    GCReport,
    ProfileInfo,
    RollbackReport,
    collect_stats,
    compact_cache,
    delete_profile,
    gc_cache,
    list_profiles,
    rollback_cache,
    snapshot_cache,
)
from .config import PATTERN_NAMES, ExperimentConfig
from .coordinator import Coordinator
from .experiment import Experiment, run_experiment
from .results import ExperimentResult, PointFailure, RunResult
from .runner import (
    ON_ERROR_MODES,
    BackendFactory,
    ExecutionBackend,
    ExecutionPolicy,
    PointOutcome,
    PointTimeout,
    ProcessPoolBackend,
    ScenarioError,
    ScenarioPoint,
    ScenarioSet,
    SerialBackend,
    ThreadPoolBackend,
    backend_names,
    create_backend,
    register_backend,
    resolve_backend,
    run_scenarios,
    unregister_backend,
)
from .session import ENV_PREFIX, Session
from .sweep import (
    PAPER_CONSUMER_COUNTS,
    ConsumerSweep,
    SensitivitySweep,
    SweepResult,
    scale_link_tiers,
    sensitivity_sweep,
)

__all__ = [
    "ExperimentConfig",
    "PATTERN_NAMES",
    "Coordinator",
    "Experiment",
    "run_experiment",
    "RunResult",
    "ExperimentResult",
    "PointFailure",
    "ConsumerSweep",
    "SweepResult",
    "SensitivitySweep",
    "sensitivity_sweep",
    "scale_link_tiers",
    "PAPER_CONSUMER_COUNTS",
    "ScenarioPoint",
    "ScenarioSet",
    "PointOutcome",
    "ScenarioError",
    "PointTimeout",
    "ExecutionPolicy",
    "ON_ERROR_MODES",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "ThreadPoolBackend",
    "BackendFactory",
    "register_backend",
    "unregister_backend",
    "backend_names",
    "create_backend",
    "resolve_backend",
    "run_scenarios",
    "Session",
    "ENV_PREFIX",
    "ResultCache",
    "code_fingerprint",
    "shard_lock",
    "CacheAdminError",
    "CacheStats",
    "CompactReport",
    "GCReport",
    "ProfileInfo",
    "RollbackReport",
    "collect_stats",
    "gc_cache",
    "compact_cache",
    "snapshot_cache",
    "rollback_cache",
    "list_profiles",
    "delete_profile",
    "BenchReport",
    "BenchResult",
    "bench_names",
    "run_benches",
    "compare_reports",
    "list_snapshots",
    "latest_snapshot",
    "next_snapshot_path",
    "profile_point",
]
