"""StreamSim-equivalent experiment harness: configs, coordinator, runner,
sweeps and result containers.

Everything that "runs many experiment points" — consumer sweeps,
architecture comparisons, figure regeneration, the CLI — goes through the
unified scenario runner in :mod:`repro.harness.runner`; pass ``jobs=N`` to
any of them to fan the points out over a process pool.
"""

from .cache import ResultCache, code_fingerprint
from .config import PATTERN_NAMES, ExperimentConfig
from .coordinator import Coordinator
from .experiment import Experiment, run_experiment
from .results import ExperimentResult, PointFailure, RunResult
from .runner import (
    ON_ERROR_MODES,
    ExecutionBackend,
    ExecutionPolicy,
    PointOutcome,
    PointTimeout,
    ProcessPoolBackend,
    ScenarioError,
    ScenarioPoint,
    ScenarioSet,
    SerialBackend,
    resolve_backend,
    run_scenarios,
)
from .sweep import (
    PAPER_CONSUMER_COUNTS,
    ConsumerSweep,
    SensitivitySweep,
    SweepResult,
    scale_link_tiers,
    sensitivity_sweep,
)

__all__ = [
    "ExperimentConfig",
    "PATTERN_NAMES",
    "Coordinator",
    "Experiment",
    "run_experiment",
    "RunResult",
    "ExperimentResult",
    "PointFailure",
    "ConsumerSweep",
    "SweepResult",
    "SensitivitySweep",
    "sensitivity_sweep",
    "scale_link_tiers",
    "PAPER_CONSUMER_COUNTS",
    "ScenarioPoint",
    "ScenarioSet",
    "PointOutcome",
    "ScenarioError",
    "PointTimeout",
    "ExecutionPolicy",
    "ON_ERROR_MODES",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "resolve_backend",
    "run_scenarios",
    "ResultCache",
    "code_fingerprint",
]
