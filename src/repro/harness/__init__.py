"""StreamSim-equivalent experiment harness: configs, coordinator, runner,
sweeps and result containers."""

from .config import PATTERN_NAMES, ExperimentConfig
from .coordinator import Coordinator
from .experiment import Experiment, run_experiment
from .results import ExperimentResult, RunResult
from .sweep import PAPER_CONSUMER_COUNTS, ConsumerSweep, SweepResult

__all__ = [
    "ExperimentConfig",
    "PATTERN_NAMES",
    "Coordinator",
    "Experiment",
    "run_experiment",
    "RunResult",
    "ExperimentResult",
    "ConsumerSweep",
    "SweepResult",
    "PAPER_CONSUMER_COUNTS",
]
