"""StreamSim-equivalent experiment harness: configs, coordinator, runner,
sweeps and result containers.

Everything that "runs many experiment points" — consumer sweeps,
architecture comparisons, figure regeneration, the CLI — goes through the
unified scenario runner in :mod:`repro.harness.runner`; pass ``jobs=N`` to
any of them to fan the points out over a process pool.
"""

from .cache import ResultCache
from .config import PATTERN_NAMES, ExperimentConfig
from .coordinator import Coordinator
from .experiment import Experiment, run_experiment
from .results import ExperimentResult, RunResult
from .runner import (
    ExecutionBackend,
    PointOutcome,
    ProcessPoolBackend,
    ScenarioError,
    ScenarioPoint,
    ScenarioSet,
    SerialBackend,
    resolve_backend,
    run_scenarios,
)
from .sweep import PAPER_CONSUMER_COUNTS, ConsumerSweep, SweepResult

__all__ = [
    "ExperimentConfig",
    "PATTERN_NAMES",
    "Coordinator",
    "Experiment",
    "run_experiment",
    "RunResult",
    "ExperimentResult",
    "ConsumerSweep",
    "SweepResult",
    "PAPER_CONSUMER_COUNTS",
    "ScenarioPoint",
    "ScenarioSet",
    "PointOutcome",
    "ScenarioError",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "resolve_backend",
    "run_scenarios",
    "ResultCache",
]
