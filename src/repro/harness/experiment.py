"""Experiment runner: one measurement point, repeated runs, averaged.

This is the simulated counterpart of the paper's StreamSim driver: for each
run it builds a fresh testbed, deploys the requested architecture, lets the
messaging pattern wire the queues and applications, starts consumers before
producers, runs the simulation until the expected messages (and replies)
have been observed, and reduces the coordinator's records into throughput /
RTT metrics.  Each experiment point is repeated ``runs`` times (the paper
averages three runs) with derived seeds.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from ..architectures import DeploymentError, Testbed, make_architecture
from ..faults import FaultInjector
from ..metrics import compute_rtt, compute_throughput
from ..patterns import ExperimentContext, make_pattern
from ..simkit import AnyOf, Environment
from ..workloads import (ClientPopulation, PopulationSpec, WorkloadGenerator,
                         get_workload)
from .config import ExperimentConfig
from .coordinator import Coordinator
from .results import ExperimentResult, RunResult

__all__ = ["Experiment", "run_experiment"]


class Experiment:
    """Runs one experiment point (possibly several times) and averages."""

    def __init__(self, config: ExperimentConfig) -> None:
        self.config = config

    # -- single run -----------------------------------------------------------
    def run_single(self, run_index: int = 0) -> RunResult:
        config = self.config
        env = Environment()
        testbed_config = replace(config.testbed, seed=config.run_seed(run_index))
        testbed = Testbed(env, testbed_config)
        architecture = make_architecture(config.architecture, testbed,
                                         **config.architecture_options)
        env.run(until=env.process(architecture.deploy()))

        workload = get_workload(config.workload)
        pattern = make_pattern(config.pattern)
        coordinator = Coordinator(
            env,
            expected_consumed=pattern.expected_consumed(config),
            expected_replies=pattern.expected_replies(config))
        ctx = ExperimentContext(env=env, testbed=testbed,
                                architecture=architecture, config=config,
                                workload=workload, coordinator=coordinator)

        base_result = RunResult(
            architecture=config.architecture, workload=config.workload,
            pattern=config.pattern, num_producers=config.num_producers,
            num_consumers=config.num_consumers)

        try:
            self._attach_endpoints(ctx)
        except DeploymentError as exc:
            base_result.feasible = False
            base_result.infeasible_reason = str(exc)
            base_result.completed = False
            return base_result

        pattern.build(ctx)

        # Fault injection only attaches for an *active* plan: ``faults=None``
        # and the inactive all-zero plan take the exact pre-fault code path
        # (no RNG draws, no extra events — the golden-digest contract).
        injector = None
        if config.faults is not None and config.faults.active:
            injector = FaultInjector(env, config.faults, testbed=testbed,
                                     consumers=ctx.consumer_apps).start()

        deploy_end = env.now
        deadline = env.timeout(config.max_sim_time_s)
        env.run(until=AnyOf(env, [coordinator.done, deadline]))

        result = self._reduce(ctx, base_result, deploy_end)
        if injector is not None:
            result.extra["faults"] = injector.snapshot()
        return result

    # -- helpers -----------------------------------------------------------
    def _attach_endpoints(self, ctx: ExperimentContext) -> None:
        config = self.config
        testbed = ctx.testbed
        workload = ctx.workload
        launcher = testbed.launcher

        producer_places = launcher.place(
            "producer", config.num_producers, testbed.producer_pool,
            use_mpi=workload.mpi_producers)
        consumer_places = launcher.place(
            "consumer", config.num_consumers, testbed.consumer_pool,
            use_mpi=workload.mpi_consumers)

        for placement in consumer_places:
            endpoints = ctx.architecture.attach_consumer(
                placement.node_name, ctx.consumer_name(placement.rank))
            ctx.consumer_endpoints.append(endpoints)
            ctx.consumer_launch_delays.append(placement.launch_delay_s)

        for placement in producer_places:
            endpoints = ctx.architecture.attach_producer(
                placement.node_name, ctx.producer_name(placement.rank))
            ctx.producer_endpoints.append(endpoints)
            ctx.producer_launch_delays.append(placement.launch_delay_s)
            rng = testbed.streams.stream("workload", placement.rank)
            generator = WorkloadGenerator(
                workload, rng=rng,
                vary_events=config.vary_events,
                rate_limited=config.rate_limited,
                num_producers=config.num_producers)
            # Every producer endpoint is an aggregate population — size 1
            # for discrete clients (a zero-cost, draw-free wrapper that is
            # bit-identical to the bare generator), size K for
            # aggregate-client runs.  Wrapping unconditionally keeps the
            # golden-digest tests exercising the population code path.
            ctx.producer_generators.append(ClientPopulation(
                generator, PopulationSpec(size=config.population)))

    def _reduce(self, ctx: ExperimentContext, result: RunResult,
                deploy_end: float) -> RunResult:
        coordinator = ctx.coordinator
        start, end = coordinator.measurement_window()
        result.published = coordinator.published
        result.consumed = coordinator.consumed
        result.replies = coordinator.replies
        result.failed_publishes = coordinator.failed_publishes
        result.duration_s = max(0.0, end - start)
        result.sim_time_s = ctx.env.now
        result.completed = coordinator.targets_met()
        result.throughput = compute_throughput(
            messages=coordinator.consumed,
            payload_bytes=coordinator.consumed_payload_bytes,
            first_publish_s=start,
            last_consume_s=end)
        # Weighted runs (aggregate populations) carry their multiplicity
        # columns; unweighted runs reduce through the historical path so
        # their serialized results stay bit-identical.
        weighted = coordinator.weighted
        if coordinator.rtt_samples:
            result.rtt = compute_rtt(
                coordinator.rtt_samples,
                weights=coordinator.rtt_weights if weighted else None)
        if coordinator.latency_samples:
            result.latency = compute_rtt(
                coordinator.latency_samples,
                weights=coordinator.latency_weights if weighted else None)
        result.consumer_balance = coordinator.balance_across_consumers()
        result.extra = {
            "deploy_end_s": deploy_end,
            "coordinator": coordinator.snapshot(),
        }
        return result

    # -- repeated runs -----------------------------------------------------------
    def run(self) -> ExperimentResult:
        config = self.config
        result = ExperimentResult(
            architecture=config.architecture, workload=config.workload,
            pattern=config.pattern, num_producers=config.num_producers,
            num_consumers=config.num_consumers)
        for run_index in range(config.runs):
            result.runs.append(self.run_single(run_index))
        return result


def run_experiment(config: Optional[ExperimentConfig] = None,
                   **overrides) -> ExperimentResult:
    """Convenience wrapper: build a config (or override one) and run it."""
    if config is None:
        config = ExperimentConfig(**overrides)
    elif overrides:
        config = replace(config, **overrides)
    return Experiment(config).run()
