"""Result containers for single runs and averaged experiments.

Both containers round-trip through pickle (they are plain dataclasses) and
through JSON via ``to_json_dict`` / ``from_json_dict`` so sweep results can
be cached to disk and reused by figure regeneration (see
:mod:`repro.harness.cache`).  RTT/latency distributions are serialized as
their raw samples and rebuilt with :func:`~repro.metrics.compute_rtt`, which
is deterministic, so a JSON round-trip reproduces the original summaries
bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..metrics import RTTResult, ThroughputResult, compute_rtt

__all__ = ["RunResult", "ExperimentResult", "PointFailure"]


@dataclass
class PointFailure:
    """A scenario point that exhausted its execution policy's attempts.

    Sweeps and comparisons collect these under ``on_error="record"`` so the
    failure (label, axes, traceback, attempt count) survives being dropped
    from the result grids; ``on_error="skip"`` discards failed points
    before any sweep sees them.
    """

    label: str
    axes: dict = field(default_factory=dict)
    #: Worker traceback text from the last attempt.
    error: str = ""
    attempts: int = 1
    #: Full point coordinates (``ScenarioPoint.describe()``: the swept axes
    #: plus the config's own coordinates, incl. ``population`` and
    #: ``faults.*``), so a chaos sweep's dead points are attributable
    #: without re-running.
    coordinates: dict = field(default_factory=dict)

    def as_row(self) -> dict:
        last_line = self.error.strip().splitlines()[-1] if self.error else ""
        extras = {key: value for key, value in self.coordinates.items()
                  if key not in ("label", "kind", "architecture")
                  and key not in self.axes}
        return {"architecture": self.label, **self.axes, **extras,
                "attempts": self.attempts, "error": last_line}


@dataclass
class RunResult:
    """Measurements from one run of one experiment point."""

    architecture: str
    workload: str
    pattern: str
    num_producers: int
    num_consumers: int
    feasible: bool = True
    infeasible_reason: str = ""
    published: int = 0
    consumed: int = 0
    replies: int = 0
    failed_publishes: int = 0
    duration_s: float = 0.0
    sim_time_s: float = 0.0
    completed: bool = True
    throughput: Optional[ThroughputResult] = None
    rtt: Optional[RTTResult] = None
    latency: Optional[RTTResult] = None
    consumer_balance: float = float("nan")
    extra: dict = field(default_factory=dict)

    @property
    def throughput_msgs_per_s(self) -> float:
        return self.throughput.msgs_per_s if self.throughput else 0.0

    @property
    def median_rtt_s(self) -> float:
        return self.rtt.median_s if self.rtt and self.rtt.count else float("nan")

    def as_dict(self) -> dict:
        return {
            "architecture": self.architecture,
            "workload": self.workload,
            "pattern": self.pattern,
            "producers": self.num_producers,
            "consumers": self.num_consumers,
            "feasible": self.feasible,
            "published": self.published,
            "consumed": self.consumed,
            "replies": self.replies,
            "throughput_msgs_per_s": self.throughput_msgs_per_s,
            "median_rtt_s": self.median_rtt_s,
            "duration_s": self.duration_s,
            "completed": self.completed,
        }

    # -- serialization -----------------------------------------------------------
    def to_json_dict(self) -> dict:
        """Plain-JSON representation; inverse of :meth:`from_json_dict`."""
        payload = {
            "architecture": self.architecture,
            "workload": self.workload,
            "pattern": self.pattern,
            "num_producers": self.num_producers,
            "num_consumers": self.num_consumers,
            "feasible": self.feasible,
            "infeasible_reason": self.infeasible_reason,
            "published": self.published,
            "consumed": self.consumed,
            "replies": self.replies,
            "failed_publishes": self.failed_publishes,
            "duration_s": self.duration_s,
            "sim_time_s": self.sim_time_s,
            "completed": self.completed,
            "throughput": self.throughput.as_dict() if self.throughput else None,
            "rtt_samples": (self.rtt.samples.tolist()
                            if self.rtt is not None else None),
            "latency_samples": (self.latency.samples.tolist()
                                if self.latency is not None else None),
            "consumer_balance": self.consumer_balance,
            "extra": self.extra,
        }
        # Multiplicity weight columns appear ONLY for weighted (aggregate
        # population) runs, so the serialized bytes of unweighted runs — and
        # therefore their golden digests — are unchanged.
        if self.rtt is not None and self.rtt.weights is not None:
            payload["rtt_weights"] = self.rtt.weights.tolist()
        if self.latency is not None and self.latency.weights is not None:
            payload["latency_weights"] = self.latency.weights.tolist()
        return payload

    @classmethod
    def from_json_dict(cls, payload: dict) -> "RunResult":
        throughput = payload.get("throughput")
        rtt_samples = payload.get("rtt_samples")
        latency_samples = payload.get("latency_samples")
        rtt_weights = payload.get("rtt_weights")
        latency_weights = payload.get("latency_weights")
        return cls(
            architecture=payload["architecture"],
            workload=payload["workload"],
            pattern=payload["pattern"],
            num_producers=payload["num_producers"],
            num_consumers=payload["num_consumers"],
            feasible=payload["feasible"],
            infeasible_reason=payload.get("infeasible_reason", ""),
            published=payload.get("published", 0),
            consumed=payload.get("consumed", 0),
            replies=payload.get("replies", 0),
            failed_publishes=payload.get("failed_publishes", 0),
            duration_s=payload.get("duration_s", 0.0),
            sim_time_s=payload.get("sim_time_s", 0.0),
            completed=payload.get("completed", True),
            throughput=(ThroughputResult(**throughput)
                        if throughput is not None else None),
            rtt=(compute_rtt(rtt_samples, weights=rtt_weights)
                 if rtt_samples is not None else None),
            latency=(compute_rtt(latency_samples, weights=latency_weights)
                     if latency_samples is not None else None),
            consumer_balance=payload.get("consumer_balance", float("nan")),
            extra=payload.get("extra", {}),
        )


@dataclass
class ExperimentResult:
    """Averaged measurements over the runs of one experiment point."""

    architecture: str
    workload: str
    pattern: str
    num_producers: int
    num_consumers: int
    runs: list[RunResult] = field(default_factory=list)

    # -- feasibility -----------------------------------------------------------
    @property
    def feasible(self) -> bool:
        return bool(self.runs) and all(run.feasible for run in self.runs)

    @property
    def infeasible_reason(self) -> str:
        for run in self.runs:
            if not run.feasible:
                return run.infeasible_reason
        return ""

    # -- aggregates -----------------------------------------------------------
    def _feasible_runs(self) -> list[RunResult]:
        return [run for run in self.runs if run.feasible]

    @property
    def throughput_msgs_per_s(self) -> float:
        runs = self._feasible_runs()
        if not runs:
            return float("nan")
        return float(np.mean([run.throughput_msgs_per_s for run in runs]))

    @property
    def throughput_gbps(self) -> float:
        runs = [r for r in self._feasible_runs() if r.throughput]
        if not runs:
            return float("nan")
        return float(np.mean([run.throughput.gbits_per_s for run in runs]))

    @property
    def median_rtt_s(self) -> float:
        values = [run.median_rtt_s for run in self._feasible_runs()
                  if run.rtt is not None and run.rtt.count]
        if not values:
            return float("nan")
        return float(np.mean(values))

    @property
    def rtt_samples(self) -> np.ndarray:
        """All RTT samples pooled across runs (for CDF figures)."""
        chunks = [run.rtt.samples for run in self._feasible_runs()
                  if run.rtt is not None and run.rtt.count]
        if not chunks:
            return np.array([])
        return np.concatenate(chunks)

    def pooled_rtt(self) -> RTTResult:
        runs = [run for run in self._feasible_runs()
                if run.rtt is not None and run.rtt.count]
        if any(run.rtt.weights is not None for run in runs):
            # Pool the multiplicity weights alongside the samples; runs
            # without weights contribute unit weights.
            weights = np.concatenate([
                run.rtt.weights if run.rtt.weights is not None
                else np.ones(run.rtt.samples.size)
                for run in runs])
            return compute_rtt(self.rtt_samples, weights=weights)
        return compute_rtt(self.rtt_samples)

    @property
    def consumed(self) -> int:
        return sum(run.consumed for run in self._feasible_runs())

    def as_row(self) -> dict:
        """One figure/table row for this experiment point."""
        return {
            "architecture": self.architecture,
            "workload": self.workload,
            "pattern": self.pattern,
            "consumers": self.num_consumers,
            "producers": self.num_producers,
            "feasible": self.feasible,
            "throughput_msgs_per_s": self.throughput_msgs_per_s,
            "throughput_gbps": self.throughput_gbps,
            "median_rtt_s": self.median_rtt_s,
            "runs": len(self.runs),
        }

    # -- serialization -----------------------------------------------------------
    def to_json_dict(self) -> dict:
        """Plain-JSON representation; inverse of :meth:`from_json_dict`."""
        return {
            "architecture": self.architecture,
            "workload": self.workload,
            "pattern": self.pattern,
            "num_producers": self.num_producers,
            "num_consumers": self.num_consumers,
            "runs": [run.to_json_dict() for run in self.runs],
        }

    @classmethod
    def from_json_dict(cls, payload: dict) -> "ExperimentResult":
        return cls(
            architecture=payload["architecture"],
            workload=payload["workload"],
            pattern=payload["pattern"],
            num_producers=payload["num_producers"],
            num_consumers=payload["num_consumers"],
            runs=[RunResult.from_json_dict(run) for run in payload["runs"]],
        )
