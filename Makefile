# Developer entry points.  `make check` is what CI runs: the tier-1 test
# suite plus a benchmarks smoke pass, so collection regressions (duplicate
# basenames, broken bench imports) cannot land silently.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

# Line-coverage floor enforced by `make coverage` over the execution engine.
COVERAGE_FLOOR ?= 85

.PHONY: test lint bench-smoke bench bench-pytest check coverage example \
	sensitivity-smoke session-smoke population-smoke cache-smoke \
	chaos-smoke

test:
	$(PYTHON) -m pytest -x -q

# Static determinism/concurrency analysis (repro.analysis): first prove the
# rules themselves fire (fixture corpus self-test), then lint src/repro
# against the committed baseline.  Exit codes: 0 clean, 1 findings, 2 usage.
lint:
	$(PYTHON) -m repro.cli lint --self-test
	$(PYTHON) -m repro.cli lint

# Collection guard (micro benches through pytest, with or without the
# pytest-benchmark plugin) plus a fast pass of the dependency-free bench
# suite compared against the committed BENCH_<n>.json trajectory.  The
# compare skips gracefully when no snapshot exists yet and fails the build
# when a bench's best round is more than 20% slower than the snapshot's
# median (calibration-scaled; snapshots from a different python/platform
# only warn).
bench-smoke:
	$(PYTHON) -m pytest benchmarks -q -k micro
	$(PYTHON) -m repro.cli bench --rounds 5 --compare --threshold 0.2 --no-save

# Record the next BENCH_<n>.json snapshot (median/stdev per bench, repro
# version + git sha).  Commit the snapshot to extend the perf trajectory.
bench:
	$(PYTHON) -m repro.cli bench --rounds 9 --compare

# The figure-regeneration benches under pytest; uses pytest-benchmark when
# installed and a plain-timing fallback fixture otherwise.
bench-pytest:
	$(PYTHON) -m pytest benchmarks -q

# Fast end-to-end smoke for the sensitivity pipeline: a 2-point bandwidth
# sweep through the process pool and the sharded result cache.
SMOKE_CACHE := .sensitivity-smoke-cache
sensitivity-smoke:
	@rm -rf $(SMOKE_CACHE)
	$(PYTHON) -m repro.cli sensitivity \
		--axis testbed.link_bandwidth_bps=1e9,100e9 \
		--axis testbed.producer_nodes=4 --axis testbed.consumer_nodes=4 \
		--architectures DTS --consumers 2 --messages 4 \
		--jobs 2 --cache $(SMOKE_CACHE)
	@rm -rf $(SMOKE_CACHE)

# Fast end-to-end smoke for the Session API: the CLI builds its execution
# session purely from REPRO_* environment variables (Session.from_env via
# Session.from_args — no --jobs/--cache flags), runs a 2-point sweep on two
# workers, then re-runs it from the populated cache.
SESSION_SMOKE_CACHE := .session-smoke-cache
session-smoke:
	@rm -rf $(SESSION_SMOKE_CACHE)
	REPRO_JOBS=2 REPRO_CACHE=$(SESSION_SMOKE_CACHE) $(PYTHON) -m repro.cli \
		sweep --workload Dstream --architectures DTS \
		--consumers 1 2 --messages 4
	REPRO_JOBS=2 REPRO_CACHE=$(SESSION_SMOKE_CACHE) $(PYTHON) -m repro.cli \
		sweep --workload Dstream --architectures DTS \
		--consumers 1 2 --messages 4
	@rm -rf $(SESSION_SMOKE_CACHE)

# Fast end-to-end smoke for the aggregate-client model: the K=1
# bit-identity contract (population golden digest), then one K=10^3
# aggregated point through the Session API with a result cache.
POPULATION_SMOKE_CACHE := .population-smoke-cache
population-smoke:
	@rm -rf $(POPULATION_SMOKE_CACHE)
	$(PYTHON) -m pytest -x -q \
		tests/harness/test_population.py::test_population_axis_at_one_reproduces_axis_free_results \
		tests/harness/test_population.py::test_population_grid_matches_golden
	REPRO_CACHE=$(POPULATION_SMOKE_CACHE) $(PYTHON) -m repro.cli \
		experiment --architecture DTS --workload Dstream \
		--consumers 2 --producers 2 --messages 4 --population 1000
	@rm -rf $(POPULATION_SMOKE_CACHE)

# Fast end-to-end smoke for the fault-injection subsystem: a 2-point
# broker-kill chaos sweep (rate 0 = the fault-free degradation baseline)
# through the Session API with a result cache.
CHAOS_SMOKE_CACHE := .chaos-smoke-cache
chaos-smoke:
	@rm -rf $(CHAOS_SMOKE_CACHE)
	$(PYTHON) -m repro.cli chaos --fault broker_kill_rate --rates 0 1 \
		--architectures DTS --consumers 2 --messages 4 \
		--cache $(CHAOS_SMOKE_CACHE)
	@rm -rf $(CHAOS_SMOKE_CACHE)

# Fast end-to-end smoke for the cache lifecycle subsystem: populate a
# sharded cache with a 2-point sweep, walk it through every `cache`
# subcommand (stats -> gc -> compact -> snapshot -> rollback), prove the
# rollback restored the shards byte-for-byte against the snapshot, then
# re-run the sweep to prove every point is still served from the cache.
CACHE_SMOKE_CACHE := .cache-smoke-cache
cache-smoke:
	@rm -rf $(CACHE_SMOKE_CACHE)
	$(PYTHON) -m repro.cli sweep --workload Dstream --architectures DTS \
		--consumers 1 2 --messages 4 --cache $(CACHE_SMOKE_CACHE)
	$(PYTHON) -m repro.cli cache stats $(CACHE_SMOKE_CACHE)
	$(PYTHON) -m repro.cli cache gc $(CACHE_SMOKE_CACHE) --purge-quarantine
	$(PYTHON) -m repro.cli cache compact $(CACHE_SMOKE_CACHE)
	$(PYTHON) -m repro.cli cache snapshot smoke $(CACHE_SMOKE_CACHE)
	$(PYTHON) -m repro.cli cache rollback smoke $(CACHE_SMOKE_CACHE)
	$(PYTHON) -c "import glob, os, sys; \
		live = sorted(glob.glob('$(CACHE_SMOKE_CACHE)/??.json')); \
		saved = sorted(glob.glob( \
			'$(CACHE_SMOKE_CACHE)/.profiles/smoke/??.json')); \
		read = lambda paths: {os.path.basename(p): open(p, 'rb').read() \
			for p in paths}; \
		sys.exit(0 if live and read(live) == read(saved) \
			else 'cache-smoke: rollback is not byte-identical')"
	$(PYTHON) -m repro.cli sweep --workload Dstream --architectures DTS \
		--consumers 1 2 --messages 4 --cache $(CACHE_SMOKE_CACHE)
	@rm -rf $(CACHE_SMOKE_CACHE)

check: lint test bench-smoke sensitivity-smoke session-smoke \
	population-smoke cache-smoke chaos-smoke

# Coverage gate over the harness (runner/cache/sweep/policy are the layers
# fault-tolerance lives in).  Skips gracefully where pytest-cov is absent —
# the container image pins its python toolchain.
coverage:
	@if $(PYTHON) -c "import pytest_cov" >/dev/null 2>&1; then \
		$(PYTHON) -m pytest tests -q --cov=repro.harness \
			--cov-report=term-missing --cov-fail-under=$(COVERAGE_FLOOR); \
	else \
		echo "[coverage] pytest-cov not installed; skipping" \
		     "(pip install pytest-cov, then re-run make coverage)"; \
	fi

example:
	$(PYTHON) examples/parallel_sweep.py
