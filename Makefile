# Developer entry points.  `make check` is what CI runs: the tier-1 test
# suite plus a benchmarks smoke pass, so collection regressions (duplicate
# basenames, broken bench imports) cannot land silently.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench-smoke bench check example

test:
	$(PYTHON) -m pytest -x -q

bench-smoke:
	$(PYTHON) -m pytest benchmarks -q -k micro

bench:
	$(PYTHON) -m pytest benchmarks -q --benchmark-only

check: test bench-smoke

example:
	$(PYTHON) examples/parallel_sweep.py
