# Developer entry points.  `make check` is what CI runs: the tier-1 test
# suite plus a benchmarks smoke pass, so collection regressions (duplicate
# basenames, broken bench imports) cannot land silently.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

# Line-coverage floor enforced by `make coverage` over the execution engine.
COVERAGE_FLOOR ?= 85

.PHONY: test bench-smoke bench check coverage example

test:
	$(PYTHON) -m pytest -x -q

bench-smoke:
	$(PYTHON) -m pytest benchmarks -q -k micro

bench:
	$(PYTHON) -m pytest benchmarks -q --benchmark-only

check: test bench-smoke

# Coverage gate over the harness (runner/cache/sweep/policy are the layers
# fault-tolerance lives in).  Skips gracefully where pytest-cov is absent —
# the container image pins its python toolchain.
coverage:
	@if $(PYTHON) -c "import pytest_cov" >/dev/null 2>&1; then \
		$(PYTHON) -m pytest tests -q --cov=repro.harness \
			--cov-report=term-missing --cov-fail-under=$(COVERAGE_FLOOR); \
	else \
		echo "[coverage] pytest-cov not installed; skipping" \
		     "(pip install pytest-cov, then re-run make coverage)"; \
	fi

example:
	$(PYTHON) examples/parallel_sweep.py
