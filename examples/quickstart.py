#!/usr/bin/env python3
"""Quickstart: run one streaming experiment and compare architectures.

This example mirrors the paper's basic measurement loop on a small scale:

1. print Table 1 (the workload characteristics),
2. run a single Dstream work-sharing experiment on the DTS architecture,
3. compare DTS, PRS(HAProxy) and MSS on the same scenario — in parallel,
   under an execution :class:`~repro.harness.Session` — and report the
   overhead of the proxied/managed architectures relative to DTS.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import compare_architectures, table1_text
from repro.harness import ExperimentConfig, Session, run_experiment
from repro.metrics import format_table


def run_single_experiment() -> None:
    """One experiment point: Dstream, work sharing, 4 producers/consumers."""
    config = ExperimentConfig(
        architecture="DTS",
        workload="Dstream",
        pattern="work_sharing",
        num_producers=4,
        num_consumers=4,
        messages_per_producer=50,
        runs=1,
        seed=7,
    )
    result = run_experiment(config)
    run = result.runs[0]
    print("\n== Single experiment (DTS / Dstream / work sharing) ==")
    print(f"  published            : {run.published}")
    print(f"  consumed             : {run.consumed}")
    print(f"  aggregate throughput : {result.throughput_msgs_per_s:,.0f} msgs/s "
          f"({result.throughput_gbps:.3f} Gb/s)")
    print(f"  measurement window   : {run.duration_s*1000:.1f} ms of simulated time")
    print(f"  consumer balance     : {run.consumer_balance:.2f} (max/min messages)")


def run_comparison() -> None:
    """The paper's core loop: same scenario, three architectures.

    The session fans the three architectures out over two worker
    processes; results are bit-identical to a serial session.
    """
    with Session(backend="process", jobs=2) as session:
        comparison = compare_architectures(
            workload="Dstream",
            pattern="work_sharing",
            consumers=4,
            architectures=["DTS", "PRS(HAProxy)", "MSS"],
            messages_per_producer=40,
            seed=7,
            session=session,
        )
    print("\n== Architecture comparison (Dstream / work sharing / 4 consumers) ==")
    print(format_table(comparison.rows(), columns=[
        "architecture", "throughput_msgs_per_s", "throughput_gbps",
        "throughput_overhead_vs_dts", "feasible"]))
    print("\nOverhead vs DTS (higher factor = more overhead):")
    for entry in comparison.throughput_overheads():
        print(f"  {entry.architecture:<14} {entry.factor:.2f}x")


def main() -> None:
    print(table1_text())
    run_single_experiment()
    run_comparison()


if __name__ == "__main__":
    main()
