#!/usr/bin/env python3
"""Broadcast-and-gather collective on the generic workload (Figures 7/8).

A single producer broadcasts 4 MiB items to every consumer through a fanout
exchange (the DDP weight fan-out / metric-collection motif of §5.1) and then
gathers one reply per consumer per round.  The example reports broadcast
throughput and gather RTT as the consumer count grows, showing the
single-producer bottleneck the paper describes.

Run with::

    python examples/broadcast_gather_collective.py
"""

from __future__ import annotations

from repro.harness import ConsumerSweep, ExperimentConfig
from repro.metrics import format_table


ARCHITECTURES = ("DTS", "PRS(HAProxy)", "MSS")
CONSUMER_COUNTS = (1, 2, 4, 8, 16)


def main() -> None:
    broadcast_base = ExperimentConfig(
        workload="Generic", pattern="broadcast", num_producers=1,
        messages_per_producer=6, seed=5)
    gather_base = ExperimentConfig(
        workload="Generic", pattern="broadcast_gather", num_producers=1,
        messages_per_producer=6, seed=5)

    broadcast = ConsumerSweep(broadcast_base, architectures=ARCHITECTURES,
                              consumer_counts=CONSUMER_COUNTS,
                              equal_producers=False).run()
    gather = ConsumerSweep(gather_base, architectures=ARCHITECTURES,
                           consumer_counts=CONSUMER_COUNTS,
                           equal_producers=False).run()

    print("Broadcast throughput (msgs/s received across all consumers) — Fig. 7a:")
    rows = []
    for consumers in CONSUMER_COUNTS:
        row = {"consumers": consumers}
        for architecture in ARCHITECTURES:
            result = broadcast.get(architecture, consumers)
            row[architecture] = round(result.throughput_msgs_per_s, 1)
        rows.append(row)
    print(format_table(rows))

    print("\nBroadcast + gather median RTT (s) — Fig. 7b:")
    rows = []
    for consumers in CONSUMER_COUNTS:
        row = {"consumers": consumers}
        for architecture in ARCHITECTURES:
            result = gather.get(architecture, consumers)
            row[architecture] = round(result.median_rtt_s, 3)
        rows.append(row)
    print(format_table(rows))

    print("\nObservations:")
    dts_curve = dict(gather.series("DTS", "median_rtt_s"))
    prs_curve = dict(gather.series("PRS(HAProxy)", "median_rtt_s"))
    last = CONSUMER_COUNTS[-1]
    print(f"  - PRS tracks DTS closely for the broadcast fan-out "
          f"(at {last} consumers: DTS {dts_curve[last]:.2f}s vs "
          f"PRS {prs_curve[last]:.2f}s median RTT).")
    print("  - RTT rises sharply with consumer count because the single "
          "producer must both broadcast every round and absorb every reply — "
          "the single-producer bottleneck of §5.5.")


if __name__ == "__main__":
    main()
