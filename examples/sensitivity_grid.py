#!/usr/bin/env python3
"""Testbed-axis sensitivity grids through the unified runner.

The paper draws every conclusion at one testbed operating point — 1 Gbps
access links, 3 DSNs, batch acknowledgements.  This example sweeps those
axes directly:

1. build a product grid over arbitrary dotted config paths with
   :meth:`~repro.harness.ScenarioSet.product` /
   :func:`~repro.harness.sensitivity_sweep` — here link bandwidth, DSN
   count and ack-policy mode around a small base scenario,
2. read the long-format rows and per-axis series the sweep exposes,
3. cache the grid into the *sharded* result-cache layout and re-run it
   instantly from disk, the way a killed sweep resumes,
4. regenerate the §6 "1 vs 100 Gbps" discussion as a figure with
   :func:`~repro.core.figure_bandwidth_scaling`.

Run with::

    python examples/sensitivity_grid.py
"""

from __future__ import annotations

import os
import tempfile
import time

from repro.architectures import TestbedConfig
from repro.core import figure_bandwidth_scaling
from repro.harness import ExperimentConfig, Session, sensitivity_sweep
from repro.metrics import format_table


def base_config() -> ExperimentConfig:
    return ExperimentConfig(
        workload="Dstream",
        pattern="work_sharing",
        num_producers=2,
        num_consumers=2,
        messages_per_producer=8,
        seed=7,
        testbed=TestbedConfig(producer_nodes=8, consumer_nodes=8),
    )


AXES = {
    "architecture": ["DTS", "MSS"],
    "testbed.link_bandwidth_bps": [1e9, 100e9],
    "testbed.ack_policy.mode": ["batch", "per_message"],
}


def main() -> None:
    sweep = sensitivity_sweep(base_config(), AXES,
                              session=Session(backend="process", jobs=2))
    print(format_table(sweep.rows("throughput_msgs_per_s"),
                       title=" x ".join(sweep.axis_names)))

    series = sweep.series("testbed.link_bandwidth_bps",
                          architecture="DTS",
                          **{"testbed.ack_policy.mode": "batch"})
    print("\nDTS, batch acks, throughput by access-link bandwidth:")
    for bandwidth_bps, throughput in series:
        print(f"  {bandwidth_bps / 1e9:>5.0f} Gbps -> "
              f"{throughput:8.1f} msg/s")

    with tempfile.TemporaryDirectory() as tmp:
        cache_path = os.path.join(tmp, "grid-cache")
        start = time.perf_counter()
        with Session(cache=cache_path) as session:
            sensitivity_sweep(base_config(), AXES, session=session)
        cold_s = time.perf_counter() - start

        start = time.perf_counter()
        with Session(cache=cache_path) as session:
            cached = sensitivity_sweep(base_config(), AXES, session=session)
        warm_s = time.perf_counter() - start
        shards = len(os.listdir(cache_path))
        print(f"\nSharded cache: {len(cached)} points in {shards} shard "
              f"file(s); cold {cold_s:.2f}s, warm {warm_s:.2f}s")

    figure = figure_bandwidth_scaling(
        architectures=("DTS", "MSS"), consumers=4, speeds_gbps=(1, 100),
        messages_per_producer=6,
        testbed=TestbedConfig(producer_nodes=8, consumer_nodes=8))
    print()
    print(format_table(figure.rows, title=figure.description))


if __name__ == "__main__":
    main()
