#!/usr/bin/env python3
"""Deployment feasibility walkthrough: what it takes to stand each architecture up.

Performance is only half of the paper's comparison; the other half (§2, §4,
§6) is the operational story: firewall pinholes, NodePorts, DNS entries,
control-plane steps and multi-user scalability.  This example deploys each
architecture's control plane on the emulated testbed and prints the derived
comparison, then walks through the MSS provisioning flow (S3M token +
provision_cluster) and the PRS SciStream session establishment.

Run with::

    python examples/deployment_feasibility.py
"""

from __future__ import annotations

from repro.architectures import MSSArchitecture, PRSArchitecture, Testbed, TestbedConfig
from repro.core import architecture_comparison_text
from repro.harness import Session
from repro.simkit import Environment


def show_comparison() -> None:
    # A parallel session deploys the four control planes concurrently.
    print(architecture_comparison_text(
        ["DTS", "PRS(Stunnel)", "PRS(HAProxy)", "MSS"],
        testbed_config=TestbedConfig(producer_nodes=2, consumer_nodes=2),
        session=Session(backend="process", jobs=2)))


def walk_through_mss_provisioning() -> None:
    print("\n== MSS provisioning flow (S3M Streaming API) ==")
    env = Environment()
    testbed = Testbed(env, TestbedConfig(producer_nodes=2, consumer_nodes=2))
    mss = MSSArchitecture(testbed)
    env.run(until=env.process(mss.deploy()))
    result = mss.provision_result
    print(f"  token-authenticated request provisioned {result.nodes} broker nodes "
          f"in {env.now:.1f} s of simulated time")
    print(f"  clients connect to: {result.url}")
    print(f"  ingress routes {result.hostname} -> "
          f"{[b.host for b in testbed.ingress.route_controller.backends(result.hostname)]}")


def walk_through_prs_session() -> None:
    print("\n== PRS session establishment (SciStream S2UC flow) ==")
    env = Environment()
    testbed = Testbed(env, TestbedConfig(producer_nodes=2, consumer_nodes=2))
    prs = PRSArchitecture(testbed, proxy_type="haproxy")
    env.run(until=env.process(prs.deploy()))
    session = prs.session.describe()
    print(f"  session UID           : {session['uid']}")
    print(f"  producer-side proxy   : {session['producer_gateway']} "
          f"ports {session['producer_ports']}")
    print(f"  consumer-side proxy   : {session['consumer_gateway']} "
          f"ports {session['consumer_ports']}")
    print(f"  target service ports  : {session['target_ports']}")
    print(f"  established after     : {env.now:.2f} s of simulated time")


def main() -> None:
    show_comparison()
    walk_through_mss_provisioning()
    walk_through_prs_session()


if __name__ == "__main__":
    main()
