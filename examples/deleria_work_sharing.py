#!/usr/bin/env python3
"""GRETA/Deleria (Dstream) work-sharing scenario across all architectures.

Reproduces a scaled-down slice of Figure 4a: the Deleria gamma-ray event
stream (16 KiB messages batching eight 2 KiB events) distributed to a
growing pool of analysis consumers through shared work queues, for every
architecture the paper evaluates — including the Stunnel tunnel that becomes
infeasible beyond 16 connections.

Run with::

    python examples/deleria_work_sharing.py
"""

from __future__ import annotations

from repro.core import PAPER_ARCHITECTURES
from repro.harness import ConsumerSweep, ExperimentConfig
from repro.metrics import format_table, overhead_table
from repro.workloads import DSTREAM


def main() -> None:
    print("Deleria/GRETA streaming characteristics:")
    for key, value in DSTREAM.table_row().items():
        print(f"  {key:<26}: {value}")

    base = ExperimentConfig(
        workload="Dstream",
        pattern="work_sharing",
        messages_per_producer=25,
        seed=11,
    )
    consumer_counts = (1, 2, 4, 8, 16, 32)
    sweep = ConsumerSweep(base, architectures=PAPER_ARCHITECTURES,
                          consumer_counts=consumer_counts).run()

    print("\nAggregate consumer throughput (msgs/s) — Figure 4a, scaled down:")
    rows = []
    for consumers in consumer_counts:
        row = {"consumers": consumers}
        for architecture in PAPER_ARCHITECTURES:
            result = sweep.get(architecture, consumers)
            if result is None or not result.feasible:
                row[architecture] = None      # e.g. Stunnel beyond 16 connections
            else:
                row[architecture] = round(result.throughput_msgs_per_s)
        rows.append(row)
    print(format_table(rows))

    # Overhead of each architecture vs the DTS baseline at the largest
    # feasible point (the paper quotes "up to 2.5x" for this pattern).
    largest = consumer_counts[-1]
    values = {arch: sweep.get(arch, largest).throughput_msgs_per_s
              for arch in PAPER_ARCHITECTURES
              if sweep.get(arch, largest) is not None
              and sweep.get(arch, largest).feasible}
    print(f"\nThroughput overhead vs DTS at {largest} consumers:")
    for entry in overhead_table(values, baseline="DTS",
                                metric="throughput_msgs_per_s",
                                higher_is_better=True):
        print(f"  {entry.architecture:<22} {entry.factor:.2f}x")

    infeasible = [(arch, consumers) for arch in PAPER_ARCHITECTURES
                  for consumers in consumer_counts
                  if (result := sweep.get(arch, consumers)) is not None
                  and not result.feasible]
    if infeasible:
        print("\nInfeasible configurations (as in the paper's missing data points):")
        for arch, consumers in infeasible:
            print(f"  {arch} at {consumers} consumers")


if __name__ == "__main__":
    main()
