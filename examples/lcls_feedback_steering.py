#!/usr/bin/env python3
"""LCLS (Lstream) experiment steering: work sharing with feedback.

Models the LCLStream use case of §5.1/§5.4: ≈1 MiB HDF5 detector frames are
distributed to MPI-launched analysis consumers and every frame produces a
reply routed back to the originating producer (the "experiment steering"
loop).  The per-message round-trip time is what determines how quickly the
beamline can react, so this example reports the median RTT and the RTT
distribution per architecture — the scaled-down counterpart of Figures 5/6b.

Run with::

    python examples/lcls_feedback_steering.py
"""

from __future__ import annotations

from repro.core import compare_architectures
from repro.metrics import format_table
from repro.workloads import LSTREAM


def main() -> None:
    print("LCLS/LCLStream streaming characteristics:")
    for key, value in LSTREAM.table_row().items():
        print(f"  {key:<26}: {value}")

    consumers = 8
    comparison = compare_architectures(
        workload="Lstream",
        pattern="work_sharing_feedback",
        consumers=consumers,
        architectures=["DTS", "PRS(HAProxy)", "PRS(HAProxy,4conns)", "MSS"],
        messages_per_producer=12,
        seed=3,
    )

    print(f"\nPer-message RTT, {consumers} producers / {consumers} consumers "
          "(work sharing with feedback):")
    rows = []
    for architecture, result in comparison.results.items():
        rtt = result.pooled_rtt()
        rows.append({
            "architecture": architecture,
            "median_rtt_s": rtt.median_s,
            "p90_rtt_s": rtt.summary.p90,
            "p99_rtt_s": rtt.summary.p99,
            "under_1s_fraction": rtt.fraction_under(1.0),
            "replies": rtt.count,
        })
    print(format_table(rows))

    print("\nRTT overhead vs DTS (the paper reports up to 6.9x for MSS):")
    for entry in comparison.rtt_overheads():
        print(f"  {entry.architecture:<22} {entry.factor:.2f}x")

    print("\nSteering interpretation:")
    dts = comparison.results["DTS"].median_rtt_s
    mss = comparison.results["MSS"].median_rtt_s
    print(f"  A beam-parameter correction loop sees ~{dts*1000:.0f} ms of "
          f"feedback latency over DTS but ~{mss*1000:.0f} ms over MSS at this "
          "scale; the managed architecture trades responsiveness for "
          "deployment convenience.")


if __name__ == "__main__":
    main()
