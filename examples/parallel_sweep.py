#!/usr/bin/env python3
"""Parallel scenario sweeps through the unified runner.

This example demonstrates the execution engine behind every sweep, figure
and CLI command:

1. build a scenario grid (architecture x consumer count) with
   :class:`~repro.harness.ScenarioSet`,
2. run it serially and on a process pool and verify the results are
   bit-identical (each point derives all randomness from its own config),
3. cache the results to a JSON file and re-run the sweep instantly from the
   cache, the way figure regeneration reuses earlier runs,
4. run under an :class:`~repro.harness.ExecutionPolicy` so per-point
   timeouts, retries and failures become structured records instead of
   killing the sweep.

Run with::

    python examples/parallel_sweep.py
"""

from __future__ import annotations

import os
import tempfile
import time

from repro.architectures import TestbedConfig
from repro.harness import (
    ConsumerSweep,
    ExecutionPolicy,
    ExperimentConfig,
    ResultCache,
)
from repro.metrics import format_table

ARCHITECTURES = ["DTS", "PRS(HAProxy)", "MSS"]
CONSUMER_COUNTS = [1, 2, 4, 8]


def base_config() -> ExperimentConfig:
    return ExperimentConfig(
        workload="Dstream",
        pattern="work_sharing",
        num_producers=2,
        num_consumers=2,
        messages_per_producer=10,
        seed=7,
        testbed=TestbedConfig(producer_nodes=8, consumer_nodes=8),
    )


def main() -> None:
    sweep = ConsumerSweep(base_config(), architectures=ARCHITECTURES,
                          consumer_counts=CONSUMER_COUNTS)

    start = time.perf_counter()
    serial = sweep.run()
    serial_s = time.perf_counter() - start

    jobs = os.cpu_count() or 2
    start = time.perf_counter()
    pooled = sweep.run(jobs=jobs)
    pooled_s = time.perf_counter() - start

    print(f"serial: {serial_s:.2f}s   jobs={jobs}: {pooled_s:.2f}s")
    print("bit-identical:", serial.rows() == pooled.rows())
    print(format_table(pooled.rows(),
                       title="Dstream / work sharing consumer sweep"))

    with tempfile.TemporaryDirectory() as tmp:
        cache_path = os.path.join(tmp, "sweep-cache.json")
        sweep.run(cache=ResultCache(cache_path))  # populates the cache
        start = time.perf_counter()
        cached = sweep.run(cache=ResultCache(cache_path))
        cached_s = time.perf_counter() - start
        print(f"re-run from cache: {cached_s:.3f}s "
              f"(matches: {cached.rows() == serial.rows()})")

    # Fault tolerance: bound each point to 60s of wall clock, retry twice
    # (retries re-derive their seeds, so results match a clean run), and
    # record exhausted points instead of raising.
    policy = ExecutionPolicy(timeout_s=60.0, retries=2, on_error="record")
    guarded = sweep.run(jobs=jobs, policy=policy)
    print(f"with policy {policy}: {len(guarded.failures)} failed point(s), "
          f"matches clean run: {guarded.rows() == serial.rows()}")


if __name__ == "__main__":
    main()
