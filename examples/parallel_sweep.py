#!/usr/bin/env python3
"""Parallel scenario sweeps through an execution :class:`Session`.

This example demonstrates the execution engine behind every sweep, figure
and CLI command:

1. build a scenario grid (architecture x consumer count) with
   :class:`~repro.harness.ScenarioSet`,
2. run it under a serial session and a named parallel backend
   (``Session(backend="process", jobs=N)``) and verify the results are
   bit-identical (each point derives all randomness from its own config),
3. cache the results to a sharded cache directory (``Session(cache=...)``)
   and re-run the sweep instantly from disk, the way figure regeneration
   reuses earlier runs,
4. run under an :class:`~repro.harness.ExecutionPolicy` carried by the
   session so per-point timeouts, retries and failures become structured
   records instead of killing the sweep,
5. build the same session from ``REPRO_*`` environment variables with
   :meth:`~repro.harness.Session.from_env` — the CLI's configuration path.

Run with::

    python examples/parallel_sweep.py
"""

from __future__ import annotations

import os
import tempfile
import time

from repro.architectures import TestbedConfig
from repro.harness import (
    ConsumerSweep,
    ExecutionPolicy,
    ExperimentConfig,
    Session,
)
from repro.metrics import format_table

ARCHITECTURES = ["DTS", "PRS(HAProxy)", "MSS"]
CONSUMER_COUNTS = [1, 2, 4, 8]


def base_config() -> ExperimentConfig:
    return ExperimentConfig(
        workload="Dstream",
        pattern="work_sharing",
        num_producers=2,
        num_consumers=2,
        messages_per_producer=10,
        seed=7,
        testbed=TestbedConfig(producer_nodes=8, consumer_nodes=8),
    )


def main() -> None:
    sweep = ConsumerSweep(base_config(), architectures=ARCHITECTURES,
                          consumer_counts=CONSUMER_COUNTS)

    start = time.perf_counter()
    serial = sweep.run(session=Session())
    serial_s = time.perf_counter() - start

    jobs = os.cpu_count() or 2
    start = time.perf_counter()
    with Session(backend="process", jobs=jobs) as session:
        pooled = sweep.run(session=session)
    pooled_s = time.perf_counter() - start

    print(f"serial: {serial_s:.2f}s   jobs={jobs}: {pooled_s:.2f}s")
    print("bit-identical:", serial.rows() == pooled.rows())
    print(format_table(pooled.rows(),
                       title="Dstream / work sharing consumer sweep"))

    with tempfile.TemporaryDirectory() as tmp:
        cache_path = os.path.join(tmp, "sweep-cache")
        with Session(cache=cache_path) as session:
            sweep.run(session=session)  # populates the cache
        start = time.perf_counter()
        with Session(cache=cache_path) as session:
            cached = sweep.run(session=session)
        cached_s = time.perf_counter() - start
        print(f"re-run from cache: {cached_s:.3f}s "
              f"(matches: {cached.rows() == serial.rows()})")

    # Fault tolerance: bound each point to 60s of wall clock, retry twice
    # (retries re-derive their seeds, so results match a clean run), and
    # record exhausted points instead of raising.  The policy travels with
    # the session into every backend worker.
    policy = ExecutionPolicy(timeout_s=60.0, retries=2, on_error="record")
    with Session(jobs=jobs, policy=policy) as session:
        guarded = sweep.run(session=session)
    print(f"with policy {policy}: {len(guarded.failures)} failed point(s), "
          f"matches clean run: {guarded.rows() == serial.rows()}")

    # The CLI builds its session the same way, from the environment:
    # REPRO_JOBS=4 REPRO_BACKEND=thread python examples/parallel_sweep.py
    env_session = Session.from_env()
    print(f"session from environment: {env_session.describe()}")


if __name__ == "__main__":
    main()
