"""Fixture: sorted iteration and order-insensitive consumers are fine."""


def accumulate(latencies):
    total = 0.0
    for key in sorted(latencies):
        total += latencies[key]
    return total


def count(groups):
    return len(groups.values())


def collect(ids):
    names = []
    for item in {1, 2, 3}:
        names.append(item)
    return names
