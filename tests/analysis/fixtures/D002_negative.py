"""Fixture: derived / caller-supplied seeds are fine."""
import numpy as np

from repro.simkit.rand import derive_seed


def derived_rng(root_seed):
    return np.random.default_rng(derive_seed(root_seed, "workload"))


def forwarded_rng(seed):
    return np.random.default_rng(seed)
