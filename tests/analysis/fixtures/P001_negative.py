"""Fixture: wire classes holding plain data (and module-level
functions by reference) are fine."""


def _default_on_result(outcome):
    return outcome


class Session:
    def __init__(self, jobs):
        self.jobs = jobs
        self.on_result = _default_on_result
        self.log_path = "session.log"


class Helper:
    def __init__(self):
        # Not a wire class: lambdas here are somebody else's problem.
        self.fn = lambda x: x


class FaultPlan:
    def __init__(self, horizon_s):
        self.horizon_s = horizon_s
        self.broker_kill_rate = 0.0


class FaultSpec:
    def __init__(self, kind, time_s):
        self.kind = kind
        self.time_s = time_s
