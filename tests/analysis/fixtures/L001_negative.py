"""Fixture: the read-merge-write sequence under shard_lock is fine."""
import os

from repro.harness.cache import shard_lock


def flush(shard_path, tmp_path, payload):
    with shard_lock(shard_path):
        with open(tmp_path, "w") as handle:
            handle.write(payload)
        os.replace(tmp_path, shard_path)


def read(shard_path):
    with open(shard_path) as handle:
        return handle.read()
