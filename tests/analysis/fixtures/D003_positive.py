"""Fixture: wall-clock reads in result-bearing code must trip D003."""
import time
from datetime import datetime


def stamp_result(result):
    result["finished_at"] = time.time()
    result["label"] = datetime.now().isoformat()
    return result
