"""Fixture: a wire class storing a lambda/open handle trips P001."""


class Session:
    def __init__(self, path):
        self.on_result = lambda outcome: outcome
        self.log = open(path, "w")


class FaultPlan:
    def __init__(self, path):
        # Fault plans ride on ExperimentConfig across backends; an open
        # handle or callback field breaks that.
        self.trace = open(path, "w")
        self.on_fire = lambda spec: spec
