"""Fixture: a wire class storing a lambda/open handle trips P001."""


class Session:
    def __init__(self, path):
        self.on_result = lambda outcome: outcome
        self.log = open(path, "w")
