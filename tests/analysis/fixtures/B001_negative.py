"""Fixture: backends routing through the indexed policy worker (or
delegating to another backend), and the protocol stub, are fine."""


class ExecutionBackend:
    def run(self, points, progress=None, *, policy=None, on_result=None):
        ...


class IndexedBackend:
    def run(self, points, progress=None, *, policy=None, on_result=None):
        return [_execute_indexed((i, point, policy))
                for i, point in enumerate(points)]


class DelegatingBackend:
    def run(self, points, progress=None, *, policy=None, on_result=None):
        inner = IndexedBackend()
        return inner.run(points, progress, policy=policy,
                         on_result=on_result)
