"""Fixture: shard writes outside `with shard_lock` trip L001."""
import os


def flush(shard_path, tmp_path, payload):
    with open(tmp_path, "w") as handle:
        handle.write(payload)
    os.replace(tmp_path, shard_path)


def drop(shard_path):
    os.remove(shard_path)
