"""Fixture: a hot-path class without __slots__ trips P002."""
# lint-fixture: rel_path=repro/simkit/core.py


class Event:
    def __init__(self, env):
        self.env = env
        self.callbacks = []
