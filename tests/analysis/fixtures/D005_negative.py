"""Fixture: sorted listings (and order-insensitive counts) are fine."""
import os
from pathlib import Path


def census(path):
    return [name for name in sorted(os.listdir(path))
            if name.endswith(".json")]


def shard_count(path):
    return len(list(Path(path).glob("*.json")))
