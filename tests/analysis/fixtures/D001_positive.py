"""Fixture: stdlib random import and global-state draws must trip D001."""
import random


def jitter(limit):
    return random.random() * limit + random.randint(0, 3)
