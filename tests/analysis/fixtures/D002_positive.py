"""Fixture: unseeded and constant-seeded default_rng must trip D002."""
import numpy as np


def entropy_rng():
    return np.random.default_rng()


def collapsed_rng():
    return np.random.default_rng(0)
