"""Fixture: simulated clocks and monotonic phase timers are fine."""
import time


def sim_elapsed(env, started_at):
    return env.now - started_at


def phase_timer():
    return time.perf_counter()
