"""Fixture: a backend mapping execute_point raw trips B001."""
from multiprocessing import Pool


class RawMapBackend:
    def run(self, points, progress=None, *, policy=None, on_result=None):
        with Pool() as pool:
            return list(pool.map(execute_point, points))
