"""Fixture: raw directory enumeration driving iteration trips D005."""
import os


def census(path):
    shards = []
    for name in os.listdir(path):
        if name.endswith(".json"):
            shards.append(name)
    return shards
