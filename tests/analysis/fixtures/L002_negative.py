"""Fixture: _evicted mutations under the guard are fine."""
from repro.harness.cache import shard_lock


class Cache:
    def forget(self, key, shard):
        self._evicted.add(key)
        self._dirty_shards.add(shard)

    def forget_locked(self, key, shard_path):
        with shard_lock(shard_path):
            self._evicted.add(key)
