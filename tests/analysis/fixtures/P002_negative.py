"""Fixture: hot-path classes keeping slots (either spelling) are fine."""
# lint-fixture: rel_path=repro/simkit/core.py
from dataclasses import dataclass


class Event:
    __slots__ = ("env", "callbacks")

    def __init__(self, env):
        self.env = env
        self.callbacks = []


@dataclass(slots=True)
class Timeout:
    delay: float


class Scratch:
    """Not on the hot-path list; no slots required."""
