"""Fixture: numpy generators seeded through derive_seed are fine."""
import numpy as np

from repro.simkit.rand import derive_seed


def jitter(root_seed, limit):
    rng = np.random.default_rng(derive_seed(root_seed, "jitter"))
    return rng.random() * limit
