"""Fixture: unordered iteration into accumulation/reduction trips D004."""


def accumulate(weights):
    total = 0.0
    for w in {0.25, 0.5, 1.0}:
        total += w
    return total


def reduce_values(latencies):
    return sum(v for v in latencies.values())
