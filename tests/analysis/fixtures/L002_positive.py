"""Fixture: mutating _evicted outside the flush guard trips L002."""


class Cache:
    def forget(self, key):
        self._evicted.add(key)

    def reset(self):
        self._evicted = set()
