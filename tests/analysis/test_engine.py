"""Engine mechanics: pragmas, parsing, file discovery, the registry."""

from __future__ import annotations

import ast
import textwrap

import pytest

from repro.analysis import (
    AnalysisReport,
    LintError,
    SourceFile,
    all_rules,
    analyze_source,
    call_name,
    get_rule,
    iter_python_files,
    rule_codes,
)


def make_source(body: str, rel_path: str = "module.py") -> SourceFile:
    return SourceFile(rel_path, textwrap.dedent(body), rel_path=rel_path)


# ---------------------------------------------------------------------------
# Pragmas
# ---------------------------------------------------------------------------

def test_pragma_suppresses_exactly_its_line():
    """Two identical violations; the pragma silences one, not both."""
    source = make_source("""\
        import time


        def stamp(result):
            result["a"] = time.time()  # repro: allow[D003]
            result["b"] = time.time()
            return result
        """)
    report = AnalysisReport()
    findings = analyze_source(source, [get_rule("D003")], report)
    assert [f.line for f in findings] == [6]
    assert report.pragma_suppressed == 1


def test_pragma_is_rule_specific():
    """A pragma for one rule does not silence a different rule's finding
    on the same line."""
    source = make_source("""\
        import time


        def stamp(result):
            result["a"] = time.time()  # repro: allow[D001]
            return result
        """)
    findings = analyze_source(source, [get_rule("D003")])
    assert [f.rule for f in findings] == ["D003"]


def test_pragma_lists_multiple_codes():
    source = make_source("""\
        import time


        def stamp(result):
            result["a"] = time.time()  # repro: allow[D001, D003]
            return result
        """)
    assert analyze_source(source, [get_rule("D003")]) == []


def test_pragma_codes_parse():
    source = make_source("x = 1  # repro: allow[D001,L002]\ny = 2\n")
    assert source.pragma_codes(1) == frozenset({"D001", "L002"})
    assert source.pragma_codes(2) == frozenset()


# ---------------------------------------------------------------------------
# SourceFile / call_name
# ---------------------------------------------------------------------------

def test_unparseable_source_is_a_lint_error():
    with pytest.raises(LintError, match="cannot parse"):
        make_source("def broken(:\n")


def test_call_name_resolves_dotted_chains():
    tree = ast.parse("np.random.default_rng(0)")
    call = tree.body[0].value
    assert call_name(call) == "np.random.default_rng"


def test_call_name_empty_for_dynamic_targets():
    tree = ast.parse("factories[0]()")
    assert call_name(tree.body[0].value) == ""


def test_inside_call_named_sees_wrapping_call():
    source = make_source("import os\nnames = sorted(os.listdir('.'))\n")
    listing = next(node for node in ast.walk(source.tree)
                   if isinstance(node, ast.Call)
                   and call_name(node) == "os.listdir")
    assert source.inside_call_named(listing, frozenset({"sorted"}))
    assert not source.inside_call_named(listing, frozenset({"len"}))


# ---------------------------------------------------------------------------
# File discovery
# ---------------------------------------------------------------------------

def test_iter_python_files_sorted_and_skips_pycache(tmp_path):
    (tmp_path / "b.py").write_text("x = 1\n")
    (tmp_path / "a.py").write_text("x = 1\n")
    (tmp_path / "note.txt").write_text("not python\n")
    cache = tmp_path / "__pycache__"
    cache.mkdir()
    (cache / "a.cpython-311.pyc.py").write_text("x = 1\n")
    files = iter_python_files([str(tmp_path)])
    assert [f.rsplit("/", 1)[-1] for f in files] == ["a.py", "b.py"]


def test_iter_python_files_missing_path_is_usage_error():
    with pytest.raises(LintError, match="no such file"):
        iter_python_files(["/nonexistent/lint/target"])


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

def test_registry_has_the_documented_rules():
    assert rule_codes() == ("B001", "D001", "D002", "D003", "D004",
                            "D005", "L001", "L002", "P001", "P002")
    assert all(rule.rationale for rule in all_rules())


def test_unknown_rule_is_a_lint_error():
    with pytest.raises(LintError, match="unknown rule"):
        get_rule("Z999")
