"""Baseline machinery: round-trips, moved-line matching, count-awareness."""

from __future__ import annotations

import json

import pytest

from repro.analysis import Baseline, BaselineEntry, Finding, LintError


def finding(rule="D003", path="src/repro/harness/bench.py", line=408,
            context="created_at=datetime.now()", message="wall clock"):
    return Finding(rule=rule, path=path, line=line, message=message,
                   context=context)


# ---------------------------------------------------------------------------
# Round-trip
# ---------------------------------------------------------------------------

def test_save_load_round_trip(tmp_path):
    path = str(tmp_path / "baseline.json")
    original = Baseline.from_findings([finding(), finding(rule="D005",
                                                          line=7)])
    original.save(path)
    loaded = Baseline.load(path)
    assert sorted(e.key for e in loaded.entries) \
        == sorted(e.key for e in original.entries)
    # Human-facing fields survive too.
    assert {e.line for e in loaded.entries} == {408, 7}


def test_saved_file_is_stable_json(tmp_path):
    """Byte-identical rewrites: sorted entries, sorted keys, newline."""
    path_a = tmp_path / "a.json"
    path_b = tmp_path / "b.json"
    entries = [finding(rule="D005", line=7), finding()]
    Baseline.from_findings(entries).save(str(path_a))
    Baseline.from_findings(list(reversed(entries))).save(str(path_b))
    assert path_a.read_bytes() == path_b.read_bytes()
    assert path_a.read_text().endswith("\n")


def test_missing_baseline_is_empty(tmp_path):
    baseline = Baseline.load(str(tmp_path / "nope.json"))
    assert baseline.entries == []


def test_malformed_baseline_is_a_hard_error(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{not json")
    with pytest.raises(LintError, match="unreadable"):
        Baseline.load(str(path))


def test_wrong_version_is_a_hard_error(tmp_path):
    path = tmp_path / "old.json"
    path.write_text(json.dumps({"version": 99, "entries": []}))
    with pytest.raises(LintError, match="version"):
        Baseline.load(str(path))


def test_malformed_entry_is_a_hard_error(tmp_path):
    path = tmp_path / "entry.json"
    path.write_text(json.dumps({"version": 1,
                                "entries": [{"rule": "D003"}]}))
    with pytest.raises(LintError, match="malformed baseline entry"):
        Baseline.load(str(path))


# ---------------------------------------------------------------------------
# Matching semantics
# ---------------------------------------------------------------------------

def test_moved_finding_still_matches():
    """The entry matches by (rule, file, context-hash), not line number:
    code inserted above the finding must not resurface it as new."""
    baseline = Baseline.from_findings([finding(line=408)])
    moved = finding(line=455)
    fresh, matched, stale = baseline.suppress([moved])
    assert fresh == []
    assert matched == 1
    assert stale == 0


def test_changed_context_breaks_the_match():
    baseline = Baseline.from_findings([finding()])
    edited = finding(context="created_at=datetime.utcnow()")
    fresh, matched, stale = baseline.suppress([edited])
    assert fresh == [edited]
    assert matched == 0
    assert stale == 1  # the old entry matched nothing


def test_different_rule_same_line_does_not_match():
    baseline = Baseline.from_findings([finding(rule="D003")])
    other = finding(rule="D005")
    fresh, _, _ = baseline.suppress([other])
    assert fresh == [other]


def test_matching_is_count_aware():
    """Two baselined identical lines absorb two findings; a third
    identical new one still fails."""
    twice = [finding(line=10), finding(line=20)]
    baseline = Baseline.from_findings(twice)
    thrice = [finding(line=10), finding(line=20), finding(line=30)]
    fresh, matched, stale = baseline.suppress(thrice)
    assert matched == 2
    assert stale == 0
    assert [f.line for f in fresh] == [30]


def test_stale_entries_are_counted():
    baseline = Baseline(entries=[
        BaselineEntry(rule="D003", file="gone.py", context_hash="0" * 16)])
    fresh, matched, stale = baseline.suppress([])
    assert (fresh, matched, stale) == ([], 0, 1)
