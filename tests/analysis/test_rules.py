"""The fixture corpus, parametrized: every rule must trip on its positive
fixture and stay silent on its negative — a rule whose check is stubbed
out fails here, not silently stops protecting the tree."""

from __future__ import annotations

import re
import textwrap
from pathlib import Path

import pytest

from repro.analysis import SourceFile, all_rules, analyze_source, get_rule
from repro.analysis.cli import check_fixture_corpus

FIXTURES = Path(__file__).parent / "fixtures"

RULES = all_rules()


def load_fixture(name: str) -> SourceFile:
    text = (FIXTURES / name).read_text()
    directive = re.search(r"#\s*lint-fixture:\s*rel_path=(\S+)", text)
    rel_path = directive.group(1) if directive else name
    return SourceFile(str(FIXTURES / name), text, rel_path=rel_path)


@pytest.mark.parametrize("rule", RULES, ids=lambda r: r.code)
def test_positive_fixture_trips_the_rule(rule):
    source = load_fixture(f"{rule.code}_positive.py")
    findings = analyze_source(source, [rule])
    assert findings, (f"{rule.code} ({rule.name}) produced no finding on "
                      f"its positive fixture — the rule is not firing")
    assert all(f.rule == rule.code for f in findings)
    assert all(f.line >= 1 and f.message for f in findings)


@pytest.mark.parametrize("rule", RULES, ids=lambda r: r.code)
def test_negative_fixture_stays_clean(rule):
    source = load_fixture(f"{rule.code}_negative.py")
    assert analyze_source(source, [rule]) == []


def test_corpus_runner_agrees_with_pytest():
    passed, failures = check_fixture_corpus(str(FIXTURES))
    assert failures == []
    assert len(passed) == 2 * len(RULES)


def test_corpus_runner_reports_a_stubbed_rule(tmp_path):
    """An empty positive fixture (rule never fires) is a corpus failure."""
    for rule in RULES:
        (tmp_path / f"{rule.code}_positive.py").write_text("x = 1\n")
        (tmp_path / f"{rule.code}_negative.py").write_text("x = 1\n")
    _, failures = check_fixture_corpus(str(tmp_path))
    assert len(failures) == len(RULES)
    assert all("not firing" in failure for failure in failures)


# ---------------------------------------------------------------------------
# Path-scoped behaviour the corpus cannot express
# ---------------------------------------------------------------------------

def make_source(body: str, rel_path: str) -> SourceFile:
    return SourceFile(rel_path, textwrap.dedent(body), rel_path=rel_path)


def test_wall_clock_allowlist_is_path_scoped():
    body = """\
        import time


        def manifest():
            return {"created": time.time()}
        """
    allowed = make_source(body, "src/repro/harness/cache_admin.py")
    assert analyze_source(allowed, [get_rule("D003")]) == []
    elsewhere = make_source(body, "src/repro/harness/runner.py")
    assert len(analyze_source(elsewhere, [get_rule("D003")])) == 1


def test_slots_rule_only_applies_to_listed_files():
    body = """\
        class Event:
            def __init__(self):
                self.callbacks = []
        """
    hot = make_source(body, "src/repro/simkit/core.py")
    assert len(analyze_source(hot, [get_rule("P002")])) == 1
    cold = make_source(body, "src/repro/harness/session.py")
    assert analyze_source(cold, [get_rule("P002")]) == []


def test_backend_rule_exempts_sweep_style_run_methods():
    """run() without a `points` parameter is not the backend protocol."""
    source = make_source("""\
        class ConsumerSweep:
            def run(self, *, session=None, policy=None):
                return run_scenarios(self.scenarios, session=session,
                                     policy=policy)
        """, "src/repro/harness/sweep.py")
    assert analyze_source(source, [get_rule("B001")]) == []
