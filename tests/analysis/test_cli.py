"""The ``repro-streamsim lint`` front end: exit codes, JSON, baselines."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main

FIXTURES = str(Path(__file__).parent / "fixtures")

DIRTY = "import time\n\nSTAMP = time.time()\n"
CLEAN = "def double(x):\n    return 2 * x\n"


@pytest.fixture()
def tree(tmp_path, monkeypatch):
    """A tiny lintable tree; cwd moved there so default baseline paths
    resolve locally."""
    monkeypatch.chdir(tmp_path)
    (tmp_path / "dirty.py").write_text(DIRTY)
    (tmp_path / "clean.py").write_text(CLEAN)
    return tmp_path


# ---------------------------------------------------------------------------
# Exit codes: 0 clean, 1 findings, 2 usage
# ---------------------------------------------------------------------------

def test_clean_tree_exits_zero(tree, capsys):
    assert main(["lint", "clean.py"]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_findings_exit_one(tree, capsys):
    assert main(["lint", "dirty.py"]) == 1
    out = capsys.readouterr()
    assert "dirty.py:3: D003" in out.out
    assert "1 finding(s)" in out.err


def test_unknown_rule_exits_two(tree, capsys):
    assert main(["lint", "clean.py", "--rule", "Z999"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_missing_path_exits_two(tree, capsys):
    assert main(["lint", "no-such-dir"]) == 2
    assert "no such file" in capsys.readouterr().err


def test_unreadable_baseline_exits_two(tree, capsys):
    (tree / "broken.json").write_text("{not json")
    assert main(["lint", "dirty.py", "--baseline", "broken.json"]) == 2
    assert "unreadable" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# Rule selection and output formats
# ---------------------------------------------------------------------------

def test_rule_filter_limits_the_pass(tree):
    assert main(["lint", "dirty.py", "--rule", "D005"]) == 0
    assert main(["lint", "dirty.py", "--rule", "D005",
                 "--rule", "D003"]) == 1


def test_json_output_is_parseable(tree, capsys):
    assert main(["lint", "dirty.py", "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["checked_files"] == 1
    (finding,) = payload["findings"]
    assert finding["rule"] == "D003"
    assert finding["file"] == "dirty.py"
    assert finding["line"] == 3
    assert finding["context_hash"]
    assert payload["suppressed"] == {"baseline": 0, "pragmas": 0}


def test_list_rules_prints_the_table(tree, capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("D001", "D005", "P001", "P002", "L001", "L002", "B001"):
        assert code in out


# ---------------------------------------------------------------------------
# Baseline workflow
# ---------------------------------------------------------------------------

def test_update_baseline_round_trips(tree, capsys):
    assert main(["lint", "dirty.py", "--update-baseline"]) == 0
    assert "1 entry written" in capsys.readouterr().out
    # The finding is now baselined: clean pass.
    assert main(["lint", "dirty.py"]) == 0
    assert "1 baselined" in capsys.readouterr().out
    # --no-baseline still sees it.
    assert main(["lint", "dirty.py", "--no-baseline"]) == 1
    capsys.readouterr()
    # A *new* violation is not covered by the old baseline.
    (tree / "dirty.py").write_text(DIRTY + "LATER = time.time()\n")
    assert main(["lint", "dirty.py"]) == 1


def test_baseline_survives_moved_lines(tree, capsys):
    assert main(["lint", "dirty.py", "--update-baseline"]) == 0
    (tree / "dirty.py").write_text(
        "import time\n\n# padding\n# padding\n\nSTAMP = time.time()\n")
    capsys.readouterr()
    assert main(["lint", "dirty.py"]) == 0


def test_stale_baseline_entries_are_reported(tree, capsys):
    assert main(["lint", "dirty.py", "--update-baseline"]) == 0
    (tree / "dirty.py").write_text(CLEAN)
    capsys.readouterr()
    assert main(["lint", "dirty.py"]) == 0
    assert "no longer match" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# Self-test mode
# ---------------------------------------------------------------------------

def test_self_test_passes_on_the_committed_corpus(tmp_path, monkeypatch,
                                                  capsys):
    monkeypatch.chdir(tmp_path)  # prove --fixtures needs no repo cwd
    assert main(["lint", "--self-test", "--fixtures", FIXTURES]) == 0
    assert "0 failed" in capsys.readouterr().out


def test_self_test_fails_on_missing_fixture(tmp_path, monkeypatch, capsys):
    corpus = tmp_path / "corpus"
    corpus.mkdir()
    monkeypatch.chdir(tmp_path)
    assert main(["lint", "--self-test", "--fixtures", str(corpus)]) == 1
    assert "missing fixture" in capsys.readouterr().err


def test_self_test_without_corpus_exits_two(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    assert main(["lint", "--self-test"]) == 2
    assert "no fixture corpus" in capsys.readouterr().err
