"""The repo lints itself: ``repro-streamsim lint`` must stay clean on
``src/repro`` with the committed baseline — this is the `make lint` gate,
run from pytest so tier-1 alone already catches a new violation."""

from __future__ import annotations

from pathlib import Path

from repro.analysis import Baseline, analyze_paths

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_source_tree_is_lint_clean():
    report = analyze_paths([str(REPO_ROOT / "src" / "repro")],
                           root=str(REPO_ROOT))
    baseline = Baseline.load(str(REPO_ROOT / "lint-baseline.json"))
    fresh, _, stale = baseline.suppress(report.findings)
    assert fresh == [], (
        "new lint finding(s) — fix them, pragma a reviewed exception "
        "(# repro: allow[RULE]), or run "
        "`repro-streamsim lint --update-baseline`:\n"
        + "\n".join(f.render() for f in fresh))
    assert stale == 0, (
        f"{stale} baseline entr{'y' if stale == 1 else 'ies'} no longer "
        f"match anything — retire them with "
        f"`repro-streamsim lint --update-baseline`")


def test_every_pragma_names_a_real_rule():
    """A typo'd pragma (`allow[D0003]`) silences nothing and rots — scan
    every source line's pragma codes against the registry."""
    from repro.analysis import PRAGMA_RE, rule_codes
    # "RULE" is the placeholder docs use when *describing* the pragma
    # syntax (engine module docstring, README) — not a suppression.
    known = set(rule_codes()) | {"RULE"}
    offenders = []
    for path in sorted((REPO_ROOT / "src" / "repro").rglob("*.py")):
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            match = PRAGMA_RE.search(line)
            if not match:
                continue
            codes = {code.strip() for code in match.group(1).split(",")}
            for code in sorted(codes - known):
                offenders.append(f"{path}:{lineno}: unknown rule {code!r}")
    assert offenders == []
