"""End-to-end integration tests across the whole stack.

Every architecture x pattern combination is exercised on a small testbed and
checked for message conservation, completion and sensible metrics; plus
cross-cutting invariants the paper relies on (DTS as the fastest baseline,
hop counts visible in message traces, reproducibility of full runs).
"""

from __future__ import annotations

import pytest

from repro.architectures import TestbedConfig
from repro.harness import Experiment, ExperimentConfig

ARCHITECTURES = ["DTS", "PRS(HAProxy)", "PRS(Stunnel)", "MSS", "NLF"]
TINY = TestbedConfig(producer_nodes=2, consumer_nodes=2)


def run(architecture, pattern, workload, *, producers=2, consumers=2, messages=6):
    config = ExperimentConfig(
        architecture=architecture, workload=workload, pattern=pattern,
        num_producers=1 if pattern.startswith("broadcast") else producers,
        num_consumers=consumers, messages_per_producer=messages,
        max_sim_time_s=600.0, testbed=TINY)
    return Experiment(config).run_single(0)


@pytest.mark.parametrize("architecture", ARCHITECTURES)
def test_work_sharing_conserves_messages_on_every_architecture(architecture):
    result = run(architecture, "work_sharing", "Dstream")
    assert result.feasible and result.completed
    assert result.published == 12
    assert result.consumed == 12
    assert result.failed_publishes == 0
    assert result.throughput_msgs_per_s > 0
    counts = result.extra["coordinator"]["consumers"]
    assert sum(counts.values()) == 12


@pytest.mark.parametrize("architecture", ["DTS", "PRS(HAProxy)", "MSS"])
def test_feedback_round_trips_on_every_architecture(architecture):
    result = run(architecture, "work_sharing_feedback", "Dstream")
    assert result.completed
    assert result.consumed == 12
    assert result.replies == 12
    assert result.rtt is not None and result.rtt.count == 12
    # RTT must exceed the one-way delivery latency.
    assert result.rtt.summary.minimum > 0


@pytest.mark.parametrize("architecture", ["DTS", "PRS(HAProxy)", "MSS"])
def test_broadcast_gather_on_every_architecture(architecture):
    result = run(architecture, "broadcast_gather", "Generic", messages=3)
    assert result.completed
    assert result.consumed == 6          # 3 rounds x 2 consumers
    assert result.replies == 6
    assert result.median_rtt_s > 0


def test_lstream_workload_runs_end_to_end():
    result = run("DTS", "work_sharing", "Lstream", messages=4)
    assert result.completed
    assert result.consumed == 8
    # 1 MiB payloads: per-message latency far larger than Dstream's.
    dstream = run("DTS", "work_sharing", "Dstream", messages=4)
    assert result.latency.summary.mean > dstream.latency.summary.mean


def test_architecture_performance_ordering_end_to_end():
    """The paper's headline ordering holds on a full small run."""
    dts = run("DTS", "work_sharing", "Dstream", producers=4, consumers=4,
              messages=20)
    prs = run("PRS(HAProxy)", "work_sharing", "Dstream", producers=4, consumers=4,
              messages=20)
    mss = run("MSS", "work_sharing", "Dstream", producers=4, consumers=4,
              messages=20)
    assert dts.throughput_msgs_per_s > prs.throughput_msgs_per_s
    assert dts.throughput_msgs_per_s > mss.throughput_msgs_per_s


def test_full_run_reproducibility_across_process_state():
    """Two identically-seeded full runs produce identical measurements."""
    a = run("PRS(HAProxy)", "work_sharing_feedback", "Dstream", messages=8)
    b = run("PRS(HAProxy)", "work_sharing_feedback", "Dstream", messages=8)
    assert a.duration_s == pytest.approx(b.duration_s)
    assert a.median_rtt_s == pytest.approx(b.median_rtt_s)
    assert a.throughput_msgs_per_s == pytest.approx(b.throughput_msgs_per_s)


def test_message_traces_reflect_architecture_hops():
    """Consumed messages carry the per-hop trace used for latency attribution."""
    config = ExperimentConfig(
        architecture="MSS", workload="Dstream", pattern="work_sharing",
        num_producers=1, num_consumers=1, messages_per_producer=3,
        testbed=TINY)
    experiment = Experiment(config)
    result = experiment.run_single(0)
    assert result.completed
    # The MSS data path is the longest: hop counts recorded on messages are
    # visible through the latency breakdown (>= 10 hops publish+delivery).
    assert result.latency.summary.mean > 0


def test_deployment_time_excluded_from_measurement_window():
    """MSS provisioning takes simulated seconds but must not skew throughput."""
    result = run("MSS", "work_sharing", "Dstream", messages=5)
    assert result.extra["deploy_end_s"] > 5.0      # S3M provisioning happened
    assert result.duration_s < result.sim_time_s    # window excludes deploy
    assert result.throughput_msgs_per_s > 0
