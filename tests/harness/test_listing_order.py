"""Filesystem-enumeration order must not leak into any output (rule D005
made lexical; these tests make it behavioral): every listdir/glob/iterdir
consumer is exercised against a *reversed* directory enumeration and must
produce byte-identical results."""

from __future__ import annotations

import glob
import json
import os
import pathlib

import pytest

from repro.architectures import TestbedConfig
from repro.harness import ExperimentConfig, ResultCache, ScenarioPoint
from repro.harness import bench as benchmod
from repro.harness.cache_admin import (
    _shard_paths,
    collect_stats,
    compact_cache,
)
from repro.harness.runner import execute_point


@pytest.fixture()
def reversed_listings(monkeypatch):
    """Make every directory enumeration come back in reversed order —
    a worst-case filesystem. Sorted consumers are unaffected."""
    real_listdir = os.listdir
    real_glob = glob.glob
    real_iterdir = pathlib.Path.iterdir

    monkeypatch.setattr(
        os, "listdir",
        lambda *a, **k: list(reversed(real_listdir(*a, **k))))
    monkeypatch.setattr(
        glob, "glob",
        lambda *a, **k: list(reversed(real_glob(*a, **k))))
    monkeypatch.setattr(
        pathlib.Path, "iterdir",
        lambda self: iter(reversed(list(real_iterdir(self)))))


def tiny_point(seed: int) -> ScenarioPoint:
    return ScenarioPoint(config=ExperimentConfig(
        architecture="DTS", workload="Dstream", pattern="work_sharing",
        num_producers=1, num_consumers=1, messages_per_producer=3,
        max_sim_time_s=120.0, seed=seed,
        testbed=TestbedConfig(producer_nodes=2, consumer_nodes=2)))


# ---------------------------------------------------------------------------
# bench snapshots
# ---------------------------------------------------------------------------

def test_bench_snapshot_listing_ignores_fs_order(tmp_path,
                                                 reversed_listings):
    for index in (0, 2, 10):
        (tmp_path / f"BENCH_{index}.json").write_text("{}")
    (tmp_path / "notes.txt").write_text("ignored")
    snapshots = benchmod.list_snapshots(tmp_path)
    assert [index for index, _ in snapshots] == [0, 2, 10]
    latest = max(index for index, _ in snapshots)
    assert latest == 10


# ---------------------------------------------------------------------------
# cache census / compaction
# ---------------------------------------------------------------------------

def populate(path: str, seeds) -> None:
    cache = ResultCache(path)
    result = execute_point(tiny_point(seeds[0]))
    for seed in seeds:
        cache.store(ScenarioPoint(config=tiny_point(seed).config), result)
    cache.save()


def stats_snapshot(path: str):
    stats = collect_stats(path)
    return (stats.summary(), json.dumps(stats.rows(), sort_keys=True))


def test_cache_stats_ignore_fs_order(tmp_path, monkeypatch):
    path = str(tmp_path / "cache")
    populate(path, [1, 2, 3])
    (tmp_path / "cache" / "zz.json.corrupt-0").write_text("junk")
    expected = stats_snapshot(path)
    # Re-run the census against reversed enumeration.
    real_glob = glob.glob
    monkeypatch.setattr(
        glob, "glob",
        lambda *a, **k: list(reversed(real_glob(*a, **k))))
    assert stats_snapshot(path) == expected
    assert _shard_paths(path) == sorted(_shard_paths(path))


def test_cache_compaction_ignores_fs_order(tmp_path, reversed_listings):
    path = str(tmp_path / "cache")
    populate(path, [1, 2, 3])
    report = compact_cache(path)
    assert report.entries == 3
    # The census after compaction is the sorted one.
    stats = collect_stats(path)
    assert stats.entries == 3
