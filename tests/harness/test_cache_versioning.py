"""Cache fingerprinting, corruption recovery and incremental regeneration."""

from __future__ import annotations

import glob
import json
import os

import pytest

from repro.architectures import TestbedConfig
from repro.core import figure4
from repro.harness import (
    ExperimentConfig,
    ProcessPoolBackend,
    ResultCache,
    ScenarioPoint,
    ScenarioSet,
    SerialBackend,
    code_fingerprint,
    run_scenarios,
)
from repro.harness import runner as runner_module
from repro.harness.runner import execute_point


def tiny_testbed():
    return TestbedConfig(producer_nodes=4, consumer_nodes=4)


def tiny_config(**overrides):
    params = dict(
        architecture="DTS",
        workload="Dstream",
        pattern="work_sharing",
        num_producers=2,
        num_consumers=2,
        messages_per_producer=4,
        max_sim_time_s=120.0,
        testbed=tiny_testbed(),
    )
    params.update(overrides)
    return ExperimentConfig(**params)


def figure_kwargs():
    return dict(workloads=("Dstream",), architectures=("DTS", "MSS"),
                consumer_counts=(1, 2), messages_per_producer=4,
                testbed=tiny_testbed())


def rows_payload(rows) -> str:
    return json.dumps(rows, sort_keys=True, default=str)


# ---------------------------------------------------------------------------
# Corrupt / truncated cache files
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("content", [
    "{\"version\": 1, \"entries\": {\"trunc",  # truncated mid-write
    "not json at all",
    "[1, 2, 3]",                               # valid JSON, wrong shape
    "",                                        # zero-byte file
])
def test_corrupt_cache_is_quarantined_not_fatal(tmp_path, content):
    path = tmp_path / "cache.json"
    path.write_text(content)
    with pytest.warns(RuntimeWarning, match="corrupt"):
        cache = ResultCache(str(path))
    assert len(cache) == 0
    # The bad file moved aside so the evidence survives...
    quarantined = glob.glob(str(path) + ".corrupt*")
    assert len(quarantined) == 1
    assert open(quarantined[0]).read() == content
    # ...and the cache is fully usable: points recompute and persist.
    [outcome] = run_scenarios([ScenarioPoint(config=tiny_config())],
                              cache=cache)
    assert not outcome.cached
    assert ResultCache(str(path)).load(
        ScenarioPoint(config=tiny_config())) is not None


def test_repeated_corruption_gets_distinct_quarantine_names(tmp_path):
    path = tmp_path / "cache.json"
    for _ in range(2):
        path.write_text("garbage")
        with pytest.warns(RuntimeWarning):
            ResultCache(str(path))
    assert len(glob.glob(str(path) + ".corrupt*")) == 2


def test_unknown_cache_version_still_raises(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"version": 99, "entries": {}}))
    with pytest.raises(ValueError, match="version"):
        ResultCache(str(path))


# ---------------------------------------------------------------------------
# Code fingerprinting
# ---------------------------------------------------------------------------

def test_code_fingerprint_is_stable_within_a_process():
    assert code_fingerprint() == code_fingerprint()
    assert len(code_fingerprint()) == 16
    int(code_fingerprint(), 16)  # hex


def _shard_files(path: str) -> list[str]:
    """Every shard file of a (directory-layout) cache."""
    return sorted(glob.glob(os.path.join(path, "??.json")))


def _cache_entries(path: str) -> dict:
    """All entries across a sharded cache's files."""
    entries: dict = {}
    for shard in _shard_files(path):
        entries.update(json.load(open(shard))["entries"])
    return entries


def _rewrite_entries(path: str, mutate) -> None:
    for shard in _shard_files(path):
        payload = json.load(open(shard))
        for entry in payload["entries"].values():
            mutate(entry)
        json.dump(payload, open(shard, "w"))


def _tamper_fingerprint(path: str) -> None:
    """Rewrite every entry as if an older repro source had produced it."""
    def age(entry):
        entry["fingerprint"] = "0" * 16
    _rewrite_entries(path, age)


def test_stale_fingerprint_invalidates_entry(tmp_path):
    path = str(tmp_path / "cache.json")
    point = ScenarioPoint(config=tiny_config())
    run_scenarios([point], cache=ResultCache(path))

    _tamper_fingerprint(path)
    cache = ResultCache(path)
    assert point not in cache
    assert cache.load(point) is None
    assert cache.stale_evicted == 1
    [outcome] = run_scenarios([point], cache=cache)
    assert not outcome.cached  # recomputed, not served stale
    # The recomputed entry carries the current fingerprint again.
    entries = _cache_entries(path)
    assert [e["fingerprint"] for e in entries.values()] == [code_fingerprint()]


def test_allow_stale_serves_old_entries(tmp_path):
    path = str(tmp_path / "cache.json")
    point = ScenarioPoint(config=tiny_config())
    [fresh] = run_scenarios([point], cache=ResultCache(path))

    _tamper_fingerprint(path)
    cache = ResultCache(path, allow_stale=True)
    assert point in cache
    [served] = run_scenarios([point], cache=cache)
    assert served.cached
    assert (json.dumps(served.result.to_json_dict(), sort_keys=True)
            == json.dumps(fresh.result.to_json_dict(), sort_keys=True))


def test_pre_fingerprint_entries_are_treated_as_stale(tmp_path):
    # PR-1-era caches have no "fingerprint" field at all.
    path = str(tmp_path / "cache.json")
    point = ScenarioPoint(config=tiny_config())
    run_scenarios([point], cache=ResultCache(path))

    def drop(entry):
        del entry["fingerprint"]
    _rewrite_entries(path, drop)
    assert ResultCache(path).load(point) is None
    assert ResultCache(path, allow_stale=True).load(point) is not None


# ---------------------------------------------------------------------------
# Incremental persistence: a killed sweep leaves completed points on disk
# ---------------------------------------------------------------------------

def test_mid_kill_leaves_completed_points_on_disk(tmp_path, monkeypatch):
    path = str(tmp_path / "cache.json")
    points = [ScenarioPoint(config=tiny_config(seed=seed))
              for seed in (1, 2, 3, 4)]

    real = execute_point

    def die_on_third(point):
        if point.config.seed == 3:
            raise KeyboardInterrupt  # simulates kill: escapes the runner
        return real(point)

    monkeypatch.setattr(runner_module, "execute_point", die_on_third)
    # autosave_min_s=0: persist after every point so the test is exact
    # (the default throttles full-file rewrites to about one per second).
    with pytest.raises(KeyboardInterrupt):
        run_scenarios(points, cache=ResultCache(path, autosave_min_s=0.0))

    # run_scenarios never reached its final save; the streaming autosave did.
    survivors = ResultCache(path)
    assert points[0] in survivors
    assert points[1] in survivors
    assert points[2] not in survivors


def test_interrupted_pool_sweep_resumes_from_partial_cache(tmp_path,
                                                           monkeypatch):
    """The acceptance scenario: kill a ProcessPoolBackend sweep midway,
    re-run with the cache, and the figure comes out bit-identical to a
    clean serial run while only the missing points execute."""
    clean = figure4(**figure_kwargs(), backend=SerialBackend())

    path = str(tmp_path / "cache.json")
    # The exact point grid figure4 builds internally (cache keys are content
    # hashes of the config, so the base must match figure4's base).
    from repro.core.figures import _base_config
    base = _base_config("Dstream", "work_sharing", messages_per_producer=4,
                        runs=1, seed=1, testbed=tiny_testbed())
    scenarios = ScenarioSet.grid(
        base, architectures=["DTS", "MSS"],
        workloads=["Dstream"], patterns=["work_sharing"],
        consumer_counts=[1, 2])

    interrupted = {"completed": 0}

    def interrupt_after_two(point):
        if interrupted["completed"] >= 2:
            raise KeyboardInterrupt
        interrupted["completed"] += 1

    with pytest.raises(KeyboardInterrupt):
        run_scenarios(scenarios, cache=ResultCache(path, autosave_min_s=0.0),
                      backend=ProcessPoolBackend(2, start_method="fork"),
                      progress=interrupt_after_two)

    on_disk = ResultCache(path)
    assert 0 < len(on_disk) < len(scenarios)

    # Re-run the whole figure against the partial cache, counting real
    # executions via marker files (fork workers inherit the patch).
    marker_dir = tmp_path / "executed"
    marker_dir.mkdir()
    real = execute_point

    def marking_execute(point):
        (marker_dir / point.cache_key()).touch()
        return real(point)

    monkeypatch.setattr(runner_module, "execute_point", marking_execute)
    resumed = figure4(**figure_kwargs(),
                      backend=ProcessPoolBackend(2, start_method="fork"),
                      cache=ResultCache(path))

    executed = {os.path.basename(p) for p in glob.glob(str(marker_dir / "*"))}
    cached_keys = {point.cache_key() for point in scenarios
                   if point in on_disk}
    assert executed == {point.cache_key() for point in scenarios} - cached_keys
    assert rows_payload(resumed.rows) == rows_payload(clean.rows)


def test_incremental_figure_equals_from_scratch_figure(tmp_path):
    """Prime the cache with one figure, regenerate another sharing points:
    only the missing points run and the artifacts are byte-identical."""
    path = str(tmp_path / "cache.json")
    kwargs = figure_kwargs()
    from_scratch = figure4(**kwargs)
    primed = figure4(**kwargs, cache=ResultCache(path))
    assert rows_payload(primed.rows) == rows_payload(from_scratch.rows)

    # Second regeneration: everything is served from the cache.
    again = figure4(**kwargs, cache=ResultCache(path))
    assert rows_payload(again.rows) == rows_payload(from_scratch.rows)

    # A wider regeneration reuses the cached subset and only adds points.
    wider_kwargs = dict(kwargs, consumer_counts=(1, 2, 4))
    wider_cached = figure4(**wider_kwargs, cache=ResultCache(path))
    wider_clean = figure4(**wider_kwargs)
    assert rows_payload(wider_cached.rows) == rows_payload(wider_clean.rows)
