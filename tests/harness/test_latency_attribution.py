"""Tests for per-hop latency attribution (where each architecture's overhead lives).

The paper motivates the comparison by noting that "each architectural hop
introduces latency and jitter"; the coordinator aggregates the per-message
hop traces so a run can attribute its latency to links, broker hosts,
proxies, the load balancer and the ingress.  These tests check that the
attribution reflects each architecture's data path.
"""

from __future__ import annotations

import pytest

from repro.architectures import TestbedConfig
from repro.harness import Experiment, ExperimentConfig

TINY = TestbedConfig(producer_nodes=2, consumer_nodes=2)


def run(architecture):
    config = ExperimentConfig(
        architecture=architecture, workload="Dstream", pattern="work_sharing",
        num_producers=2, num_consumers=2, messages_per_producer=8,
        testbed=TINY)
    result = Experiment(config).run_single(0)
    assert result.completed
    return result.extra["coordinator"]


def test_dts_attribution_has_no_middleware_kinds():
    snapshot = run("DTS")
    kinds = set(snapshot["hop_time_by_kind"])
    assert "link" in kinds
    assert "dsn" in kinds            # broker hosts
    assert "proxy" not in kinds
    assert "lb" not in kinds
    assert "ingress" not in kinds


def test_prs_attribution_includes_proxies():
    snapshot = run("PRS(HAProxy)")
    kinds = set(snapshot["hop_time_by_kind"])
    assert "proxy" in kinds
    assert snapshot["hop_count_by_kind"]["proxy"] > 0
    # Only the publish direction crosses the two proxies: 2 proxy hops per
    # consumed message.
    assert snapshot["hop_count_by_kind"]["proxy"] == 2 * snapshot["consumed"]


def test_mss_attribution_includes_lb_and_ingress_both_ways():
    snapshot = run("MSS")
    kinds = set(snapshot["hop_time_by_kind"])
    assert {"lb", "ingress"} <= kinds
    # Publish and delivery both cross the LB and the ingress.
    assert snapshot["hop_count_by_kind"]["lb"] == 2 * snapshot["consumed"]
    assert snapshot["hop_count_by_kind"]["ingress"] == 2 * snapshot["consumed"]


def test_attribution_fractions_sum_to_one():
    snapshot = run("MSS")
    attribution = snapshot["latency_attribution"]
    assert attribution
    assert sum(attribution.values()) == pytest.approx(1.0)
    assert all(0 <= fraction <= 1 for fraction in attribution.values())


def test_mss_middleware_share_exceeds_dts_share():
    mss = run("MSS")["latency_attribution"]
    dts = run("DTS")["latency_attribution"]
    mss_middleware = mss.get("lb", 0.0) + mss.get("ingress", 0.0)
    dts_middleware = dts.get("lb", 0.0) + dts.get("ingress", 0.0)
    assert mss_middleware > 0.1
    assert dts_middleware == 0.0
