"""Crash-injection coverage for ExecutionPolicy (timeout/retry/on_error)."""

from __future__ import annotations

import json
import time

import pytest

from repro.architectures import TestbedConfig
from repro.harness import (
    ConsumerSweep,
    ExecutionPolicy,
    ProcessPoolBackend,
    ScenarioError,
    ScenarioPoint,
    ScenarioSet,
    SerialBackend,
    run_scenarios,
)
from repro.harness import runner as runner_module
from repro.harness.runner import execute_point


def tiny_config(**overrides):
    params = dict(
        architecture="DTS",
        workload="Dstream",
        pattern="work_sharing",
        num_producers=2,
        num_consumers=2,
        messages_per_producer=4,
        max_sim_time_s=120.0,
        testbed=TestbedConfig(producer_nodes=4, consumer_nodes=4),
    )
    params.update(overrides)
    return runner_module.ExperimentConfig(**params)


def result_payload(outcome) -> str:
    return json.dumps(outcome.result.to_json_dict(), sort_keys=True)


# ---------------------------------------------------------------------------
# Policy validation
# ---------------------------------------------------------------------------

def test_policy_validates_fields():
    with pytest.raises(ValueError, match="timeout_s"):
        ExecutionPolicy(timeout_s=0)
    with pytest.raises(ValueError, match="retries"):
        ExecutionPolicy(retries=-1)
    with pytest.raises(ValueError, match="backoff_s"):
        ExecutionPolicy(backoff_s=-0.1)
    with pytest.raises(ValueError, match="on_error"):
        ExecutionPolicy(on_error="explode")
    assert ExecutionPolicy(retries=2).max_attempts == 3


def test_policy_is_picklable():
    import pickle
    policy = ExecutionPolicy(timeout_s=5.0, retries=2, on_error="record")
    assert pickle.loads(pickle.dumps(policy)) == policy


# ---------------------------------------------------------------------------
# Timeout
# ---------------------------------------------------------------------------

def test_timed_out_point_becomes_structured_failure(monkeypatch):
    real = execute_point

    def hang_on_marker(point):
        if point.axes.get("hang"):
            time.sleep(30)
        return real(point)

    monkeypatch.setattr(runner_module, "execute_point", hang_on_marker)
    points = [
        ScenarioPoint(config=tiny_config(), axes={"consumers": 2}),
        ScenarioPoint(config=tiny_config(seed=2),
                      axes={"consumers": 2, "hang": True}),
    ]
    policy = ExecutionPolicy(timeout_s=0.2, on_error="record")
    start = time.monotonic()
    outcomes = run_scenarios(points, policy=policy)
    assert time.monotonic() - start < 10
    assert outcomes[0].ok
    assert not outcomes[1].ok
    assert outcomes[1].result is None
    assert "PointTimeout" in outcomes[1].error
    assert "exceeded 0.2s" in outcomes[1].error


def test_timeout_is_retried_before_failing(monkeypatch):
    real = execute_point

    def hang_on_marker(point):
        if point.axes.get("hang"):
            time.sleep(30)
        return real(point)

    monkeypatch.setattr(runner_module, "execute_point", hang_on_marker)
    point = ScenarioPoint(config=tiny_config(), axes={"hang": True})
    policy = ExecutionPolicy(timeout_s=0.1, retries=1, on_error="record")
    [outcome] = run_scenarios([point], policy=policy)
    assert not outcome.ok
    assert outcome.attempts == 2


def test_timeout_does_not_leak_into_later_points(monkeypatch):
    real = execute_point

    def hang_on_marker(point):
        if point.axes.get("hang"):
            time.sleep(30)
        return real(point)

    monkeypatch.setattr(runner_module, "execute_point", hang_on_marker)
    points = [
        ScenarioPoint(config=tiny_config(), axes={"hang": True}),
        ScenarioPoint(config=tiny_config(seed=2), axes={}),
    ]
    policy = ExecutionPolicy(timeout_s=0.2, on_error="skip")
    outcomes = run_scenarios(points, policy=policy)
    # The slow point is gone; the healthy one ran to completion untouched
    # by the previous point's alarm.
    assert [o.point.config.seed for o in outcomes] == [2]
    assert outcomes[0].ok


# ---------------------------------------------------------------------------
# Retry determinism
# ---------------------------------------------------------------------------

def test_fail_then_succeed_retry_matches_first_try_result(monkeypatch):
    point = ScenarioPoint(config=tiny_config(
        pattern="work_sharing_feedback", messages_per_producer=6))
    [clean] = run_scenarios([point])

    real = execute_point
    calls = {"count": 0}

    def flaky(p):
        calls["count"] += 1
        if calls["count"] == 1:
            raise RuntimeError("injected transient fault")
        return real(p)

    monkeypatch.setattr(runner_module, "execute_point", flaky)
    [retried] = run_scenarios([point],
                              policy=ExecutionPolicy(retries=2))
    assert calls["count"] == 2
    assert retried.attempts == 2
    # The retry re-derives every random stream from the point's config, so
    # the result is bit-identical to the run that succeeded first try.
    assert result_payload(retried) == result_payload(clean)


def test_exhausted_retries_raise_with_attempt_count(monkeypatch):
    def always_fails(point):
        raise RuntimeError("injected permanent fault")

    monkeypatch.setattr(runner_module, "execute_point", always_fails)
    with pytest.raises(ScenarioError, match="after 3 attempts"):
        run_scenarios([ScenarioPoint(config=tiny_config())],
                      policy=ExecutionPolicy(retries=2))


# ---------------------------------------------------------------------------
# on_error modes
# ---------------------------------------------------------------------------

def _seed_crasher(monkeypatch, bad_seed):
    real = execute_point

    def crash_on_seed(point):
        if point.config.seed == bad_seed:
            raise RuntimeError(f"injected crash for seed {bad_seed}")
        return real(point)

    monkeypatch.setattr(runner_module, "execute_point", crash_on_seed)


def test_on_error_skip_keeps_submission_order(monkeypatch):
    _seed_crasher(monkeypatch, bad_seed=2)
    points = [ScenarioPoint(config=tiny_config(seed=seed),
                            axes={"seed": seed})
              for seed in (1, 2, 3, 4)]
    outcomes = run_scenarios(points,
                             policy=ExecutionPolicy(on_error="skip"))
    assert [o.point.axes["seed"] for o in outcomes] == [1, 3, 4]
    assert all(o.ok for o in outcomes)


def test_on_error_record_reports_failure_in_place(monkeypatch):
    _seed_crasher(monkeypatch, bad_seed=3)
    points = [ScenarioPoint(config=tiny_config(seed=seed),
                            axes={"seed": seed})
              for seed in (1, 3, 5)]
    outcomes = run_scenarios(points,
                             policy=ExecutionPolicy(on_error="record"))
    assert [o.point.axes["seed"] for o in outcomes] == [1, 3, 5]
    assert [o.ok for o in outcomes] == [True, False, True]
    failed = outcomes[1]
    assert failed.result is None
    assert "injected crash for seed 3" in failed.error


def test_on_error_record_under_process_pool(monkeypatch):
    # fork start method: the patched execute_point is inherited by workers.
    _seed_crasher(monkeypatch, bad_seed=2)
    points = [ScenarioPoint(config=tiny_config(seed=seed),
                            axes={"seed": seed})
              for seed in (1, 2, 3, 4)]
    outcomes = run_scenarios(points,
                             backend=ProcessPoolBackend(2, start_method="fork"),
                             policy=ExecutionPolicy(on_error="record"))
    assert [o.point.axes["seed"] for o in outcomes] == [1, 2, 3, 4]
    assert [o.ok for o in outcomes] == [True, False, True, True]
    assert "injected crash for seed 2" in outcomes[1].error


def test_sweep_records_failures_instead_of_dying(monkeypatch):
    _seed_crasher(monkeypatch, bad_seed=1)  # every point in this sweep
    sweep = ConsumerSweep(tiny_config(), architectures=["DTS"],
                          consumer_counts=[1, 2])
    result = sweep.run(policy=ExecutionPolicy(on_error="record"))
    assert result.results["DTS"] == {}
    assert len(result.failures) == 2
    rows = [failure.as_row() for failure in result.failures]
    assert rows[0]["architecture"] == "DTS"
    assert rows[0]["attempts"] == 1
    assert "injected crash" in rows[0]["error"]


def test_no_policy_still_raises_like_before(monkeypatch):
    _seed_crasher(monkeypatch, bad_seed=1)
    with pytest.raises(ScenarioError, match="after 1 attempt"):
        run_scenarios([ScenarioPoint(config=tiny_config())])


def test_backends_agree_on_policy_outcomes(monkeypatch):
    _seed_crasher(monkeypatch, bad_seed=3)
    scenarios = ScenarioSet.grid(tiny_config(), architectures=["DTS", "MSS"],
                                 seeds=[1, 3])
    policy = ExecutionPolicy(on_error="skip")
    serial = run_scenarios(scenarios, backend=SerialBackend(), policy=policy)
    pooled = run_scenarios(scenarios,
                           backend=ProcessPoolBackend(2, start_method="fork"),
                           policy=policy)
    assert ([result_payload(o) for o in serial]
            == [result_payload(o) for o in pooled])
    assert [o.point.config.seed for o in serial] == [1, 1]


# ---------------------------------------------------------------------------
# Nested timers: the per-point alarm must not disarm an outer ITIMER_REAL
# ---------------------------------------------------------------------------

def _with_outer_itimer(outer_s: float, body):
    """Run ``body()`` with a caller-level SIGALRM handler + ITIMER_REAL
    armed, returning (body result, fired timestamps, remaining delay)."""
    import signal

    fired = []

    def outer_handler(signum, frame):
        fired.append(time.monotonic())

    previous_handler = signal.signal(signal.SIGALRM, outer_handler)
    signal.setitimer(signal.ITIMER_REAL, outer_s)
    try:
        result = body()
        remaining, _ = signal.getitimer(signal.ITIMER_REAL)
        restored = signal.getsignal(signal.SIGALRM)
        return result, fired, remaining, restored, outer_handler
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous_handler)


def test_point_timeout_rearms_outer_itimer_with_remaining_time():
    """An outer watchdog timer survives a point's inner timeout: on the
    way out the inner alarm re-arms the outer timer minus elapsed time
    (the old code zeroed it, silently disarming the watchdog)."""
    point = ScenarioPoint(config=tiny_config())

    def body():
        return runner_module._call_with_timeout(point, 30.0)

    result, fired, remaining, restored, handler = _with_outer_itimer(
        60.0, body)
    assert result is not None
    assert not fired  # the outer timer did not fire early...
    assert 0 < remaining < 60.0  # ...and is still armed, minus elapsed
    assert restored is handler  # the outer handler came back too


def test_outer_itimer_expired_during_point_still_fires(monkeypatch):
    """If the outer deadline passes while the point runs, the outer
    handler fires (late) instead of never."""
    monkeypatch.setattr(runner_module, "execute_point",
                        lambda point: time.sleep(0.15) or "done")
    point = ScenarioPoint(config=tiny_config())

    def body():
        result = runner_module._call_with_timeout(point, 30.0)
        # The expired outer timer was re-armed with a near-zero delay;
        # give the signal a beat to be delivered.
        deadline = time.monotonic() + 2.0
        while time.monotonic() < deadline:
            time.sleep(0.01)
            if _outer_fired:
                break
        return result

    _outer_fired = []

    def outer_body():
        nonlocal _outer_fired
        import signal

        def outer_handler(signum, frame):
            _outer_fired.append(True)

        previous_handler = signal.signal(signal.SIGALRM, outer_handler)
        signal.setitimer(signal.ITIMER_REAL, 0.05)  # expires mid-point
        try:
            return body()
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0)
            signal.signal(signal.SIGALRM, previous_handler)

    assert outer_body() == "done"
    assert _outer_fired  # fired late, not lost
