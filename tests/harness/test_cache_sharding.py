"""Sharded result-cache layout: shard files, migration, partial flushes."""

from __future__ import annotations

import glob
import json
import os
import shutil

import pytest

from repro.architectures import TestbedConfig
from repro.harness import (
    ExperimentConfig,
    ResultCache,
    ScenarioPoint,
    code_fingerprint,
    run_scenarios,
)


def tiny_config(**overrides):
    params = dict(
        architecture="DTS",
        workload="Dstream",
        pattern="work_sharing",
        num_producers=1,
        num_consumers=1,
        messages_per_producer=3,
        max_sim_time_s=120.0,
        testbed=TestbedConfig(producer_nodes=2, consumer_nodes=2),
    )
    params.update(overrides)
    return ExperimentConfig(**params)


def distinct_prefix_points(count: int = 2) -> list[ScenarioPoint]:
    """Points whose cache keys land in different shards."""
    points: dict[str, ScenarioPoint] = {}
    seed = 1
    while len(points) < count:
        point = ScenarioPoint(config=tiny_config(seed=seed))
        points.setdefault(point.cache_key()[:2], point)
        seed += 1
    return list(points.values())


def shard_files(path: str) -> list[str]:
    return sorted(glob.glob(os.path.join(path, "??.json")))


def test_cache_writes_one_shard_per_key_prefix(tmp_path):
    path = str(tmp_path / "cache")
    points = distinct_prefix_points(2)
    run_scenarios(points, cache=ResultCache(path))
    assert os.path.isdir(path)
    names = {os.path.basename(f) for f in shard_files(path)}
    assert names == {f"{p.cache_key()[:2]}.json" for p in points}
    for shard in shard_files(path):
        payload = json.load(open(shard))
        assert payload["version"] == 1
        for key in payload["entries"]:
            assert f"{key[:2]}.json" == os.path.basename(shard)


def test_flush_rewrites_only_dirty_shards(tmp_path):
    path = str(tmp_path / "cache")
    first, second = distinct_prefix_points(2)
    cache = ResultCache(path)
    run_scenarios([first], cache=cache)
    first_shard = os.path.join(path, f"{first.cache_key()[:2]}.json")
    before = os.stat(first_shard).st_mtime_ns

    run_scenarios([second], cache=cache)
    assert os.stat(first_shard).st_mtime_ns == before  # untouched
    assert os.path.exists(os.path.join(path,
                                       f"{second.cache_key()[:2]}.json"))


def test_single_file_cache_auto_migrates(tmp_path):
    # Produce a sharded cache, then flatten it into the legacy layout.
    sharded = str(tmp_path / "sharded")
    points = distinct_prefix_points(2)
    run_scenarios(points, cache=ResultCache(sharded))
    entries: dict = {}
    for shard in shard_files(sharded):
        entries.update(json.load(open(shard))["entries"])

    legacy = str(tmp_path / "cache.json")
    with open(legacy, "w") as handle:
        json.dump({"version": 1, "entries": entries}, handle)

    migrated = ResultCache(legacy)
    assert os.path.isdir(legacy)  # the file became a shard directory
    assert not os.path.exists(f"{legacy}.migrating")
    assert len(migrated) == len(points)
    for point in points:
        assert point in migrated
        assert migrated.load(point) is not None
    # And the migrated cache serves a sweep without recomputation.
    outcomes = run_scenarios(points, cache=ResultCache(legacy))
    assert all(outcome.cached for outcome in outcomes)


def test_interrupted_migration_is_recovered_on_next_open(tmp_path):
    """A crash between renaming the legacy file and writing its shards
    strands everything in <path>.migrating; the next open folds it back."""
    path = str(tmp_path / "cache")
    points = distinct_prefix_points(2)
    run_scenarios(points, cache=ResultCache(path))
    entries: dict = {}
    for shard in shard_files(path):
        entries.update(json.load(open(shard))["entries"])
    shutil.rmtree(path)  # shards plus their persistent .lock files
    # Simulate the crash window: backup written, no shards yet.
    with open(f"{path}.migrating", "w") as handle:
        json.dump({"version": 1, "entries": entries}, handle)

    recovered = ResultCache(path)
    assert len(recovered) == len(points)
    assert all(point in recovered for point in points)
    assert not os.path.exists(f"{path}.migrating")
    assert len(shard_files(path)) == 2  # resharded onto disk


def test_corrupt_shard_is_quarantined_not_fatal(tmp_path):
    path = str(tmp_path / "cache")
    points = distinct_prefix_points(2)
    run_scenarios(points, cache=ResultCache(path))
    victim, survivor = shard_files(path)
    with open(victim, "w") as handle:
        handle.write("{\"version\": 1, \"entries\": {\"trunc")

    with pytest.warns(RuntimeWarning, match="corrupt"):
        cache = ResultCache(path)
    assert len(cache) == 1  # the intact shard still loads
    assert glob.glob(f"{victim}.corrupt*")
    assert os.path.exists(survivor)


def test_unknown_shard_version_still_raises(tmp_path):
    path = str(tmp_path / "cache")
    os.makedirs(path)
    with open(os.path.join(path, "ab.json"), "w") as handle:
        json.dump({"version": 99, "entries": {}}, handle)
    with pytest.raises(ValueError, match="version"):
        ResultCache(path)


def test_stale_eviction_deletes_emptied_shard(tmp_path):
    path = str(tmp_path / "cache")
    [point] = distinct_prefix_points(1)
    run_scenarios([point], cache=ResultCache(path))
    [shard] = shard_files(path)
    payload = json.load(open(shard))
    for entry in payload["entries"].values():
        entry["fingerprint"] = "0" * 16
    json.dump(payload, open(shard, "w"))

    cache = ResultCache(path)
    assert cache.load(point) is None
    assert cache.stale_evicted == 1
    cache.save()
    assert shard_files(path) == []  # emptied shard removed from disk


def test_sharded_cache_resumes_interrupted_sweep(tmp_path):
    """Acceptance: a killed sweep resumes from the sharded cache,
    recomputing only the missing points."""
    path = str(tmp_path / "cache")
    points = [ScenarioPoint(config=tiny_config(seed=seed))
              for seed in (1, 2, 3, 4)]

    completed = {"count": 0}

    def interrupt_after_two(point):
        if completed["count"] >= 2:
            raise KeyboardInterrupt
        completed["count"] += 1

    with pytest.raises(KeyboardInterrupt):
        run_scenarios(points, cache=ResultCache(path, autosave_min_s=0.0),
                      progress=interrupt_after_two)

    on_disk = ResultCache(path)
    cached_before = {p.cache_key() for p in points if p in on_disk}
    assert 0 < len(cached_before) < len(points)

    outcomes = run_scenarios(points, cache=ResultCache(path))
    assert [outcome.cached for outcome in outcomes] == [
        point.cache_key() in cached_before for point in points]
    resumed = ResultCache(path)
    assert all(point in resumed for point in points)
    # Every entry carries the current fingerprint.
    for shard in shard_files(path):
        for entry in json.load(open(shard))["entries"].values():
            assert entry["fingerprint"] == code_fingerprint()
