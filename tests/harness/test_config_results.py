"""Unit tests for experiment configs, result containers and the coordinator."""

from __future__ import annotations

import math

import pytest

from repro.architectures import TestbedConfig
from repro.harness import ExperimentConfig, Coordinator, ExperimentResult, RunResult
from repro.metrics import compute_rtt, compute_throughput
from repro.netsim import MessageFactory
from repro.simkit import Environment


# ---------------------------------------------------------------------------
# ExperimentConfig
# ---------------------------------------------------------------------------

def test_config_defaults_are_valid():
    config = ExperimentConfig()
    assert config.architecture == "DTS"
    assert config.total_messages == config.num_producers * config.messages_per_producer


def test_config_validation_errors():
    with pytest.raises(ValueError):
        ExperimentConfig(architecture="FTP")
    with pytest.raises(ValueError):
        ExperimentConfig(workload="Xstream")
    with pytest.raises(ValueError):
        ExperimentConfig(pattern="ring")
    with pytest.raises(ValueError):
        ExperimentConfig(num_producers=0)
    with pytest.raises(ValueError):
        ExperimentConfig(messages_per_producer=0)
    with pytest.raises(ValueError):
        ExperimentConfig(runs=0)
    with pytest.raises(ValueError):
        ExperimentConfig(pattern="broadcast", num_producers=2)


def test_config_with_consumers_scales_producers_for_work_sharing():
    config = ExperimentConfig(pattern="work_sharing", num_producers=1, num_consumers=1)
    scaled = config.with_consumers(8)
    assert scaled.num_consumers == 8
    assert scaled.num_producers == 8
    fixed = config.with_consumers(8, equal_producers=False)
    assert fixed.num_producers == 1


def test_config_with_consumers_keeps_single_producer_for_broadcast():
    config = ExperimentConfig(pattern="broadcast_gather", num_producers=1)
    scaled = config.with_consumers(16)
    assert scaled.num_producers == 1
    assert scaled.num_consumers == 16


def test_config_with_architecture_merges_options():
    config = ExperimentConfig(architecture="DTS",
                              architecture_options={"use_tls": True})
    new = config.with_architecture("MSS", bypass_lb_for_internal=True)
    assert new.architecture == "MSS"
    assert new.architecture_options == {"use_tls": True,
                                        "bypass_lb_for_internal": True}
    # original untouched
    assert config.architecture == "DTS"


def test_config_run_seed_distinct_per_run():
    config = ExperimentConfig(seed=7)
    assert config.run_seed(0) != config.run_seed(1)


def test_config_describe():
    config = ExperimentConfig()
    description = config.describe()
    assert description["architecture"] == "DTS"
    assert description["pattern"] == "work_sharing"


# ---------------------------------------------------------------------------
# Coordinator
# ---------------------------------------------------------------------------

def make_message(now=0.0, created=0.0):
    msg = MessageFactory("p").create(1024, now=created, routing_key="q")
    return msg


def test_coordinator_done_triggers_on_targets():
    env = Environment()
    coordinator = Coordinator(env, expected_consumed=2, expected_replies=1)
    assert not coordinator.done.triggered
    m1, m2 = make_message(), make_message()
    coordinator.record_publish(m1)
    coordinator.record_consume(m1, "cons-0")
    coordinator.record_consume(m2, "cons-1")
    assert not coordinator.done.triggered  # replies still missing
    reply = m1.make_reply(128, now=1.0)
    coordinator.record_reply(reply, "prod-0")
    assert coordinator.done.triggered
    assert coordinator.targets_met()


def test_coordinator_rtt_samples_from_reply_headers():
    env = Environment(initial_time=0.0)
    coordinator = Coordinator(env, expected_consumed=0, expected_replies=1)
    request = MessageFactory("p").create(1024, now=0.0)
    request.created_at = 0.0

    def proc(env):
        yield env.timeout(0.5)
        reply = request.make_reply(10, now=env.now)
        coordinator.record_reply(reply, "prod-0")

    env.process(proc(env))
    env.run()
    # Samples live in an array('d') column buffer on the coordinator.
    assert list(coordinator.rtt_samples) == [pytest.approx(0.5)]


def test_coordinator_measurement_window_and_balance():
    env = Environment()
    coordinator = Coordinator(env, expected_consumed=10)
    m = make_message()
    coordinator.record_publish(m)
    coordinator.record_consume(m, "cons-0")
    coordinator.record_consume(make_message(), "cons-0")
    coordinator.record_consume(make_message(), "cons-1")
    start, end = coordinator.measurement_window()
    assert start <= end
    assert coordinator.balance_across_consumers() == pytest.approx(2.0)
    snapshot = coordinator.snapshot()
    assert snapshot["consumed"] == 3


def test_coordinator_rejects_negative_targets():
    env = Environment()
    with pytest.raises(ValueError):
        Coordinator(env, expected_consumed=-1)


def test_coordinator_queue_announcement():
    env = Environment()
    coordinator = Coordinator(env, expected_consumed=1)
    coordinator.announce_queues(["work-0", "work-1"], {"prod-0": "reply.prod-0"})
    assert coordinator.work_queues == ["work-0", "work-1"]
    assert coordinator.reply_queues["prod-0"] == "reply.prod-0"


# ---------------------------------------------------------------------------
# RunResult / ExperimentResult
# ---------------------------------------------------------------------------

def make_run(tput=100.0, rtt_median=0.05, feasible=True):
    run = RunResult(architecture="DTS", workload="Dstream", pattern="work_sharing",
                    num_producers=2, num_consumers=2, feasible=feasible)
    if feasible:
        run.consumed = 100
        run.throughput = compute_throughput(messages=100, payload_bytes=100 * 1024,
                                            first_publish_s=0.0,
                                            last_consume_s=100.0 / tput)
        run.rtt = compute_rtt([rtt_median] * 5)
    return run


def test_experiment_result_averages_runs():
    result = ExperimentResult(architecture="DTS", workload="Dstream",
                              pattern="work_sharing", num_producers=2, num_consumers=2)
    result.runs = [make_run(100.0, 0.04), make_run(200.0, 0.06)]
    assert result.feasible
    assert result.throughput_msgs_per_s == pytest.approx(150.0)
    assert result.median_rtt_s == pytest.approx(0.05)
    assert result.consumed == 200
    assert len(result.rtt_samples) == 10
    assert result.pooled_rtt().count == 10
    row = result.as_row()
    assert row["architecture"] == "DTS"
    assert row["consumers"] == 2


def test_experiment_result_infeasible_propagates():
    result = ExperimentResult(architecture="PRS(Stunnel)", workload="Dstream",
                              pattern="work_sharing", num_producers=32, num_consumers=32)
    bad = make_run(feasible=False)
    bad.infeasible_reason = "stunnel supports at most 16"
    result.runs = [bad]
    assert not result.feasible
    assert "stunnel" in result.infeasible_reason
    assert math.isnan(result.throughput_msgs_per_s)
    assert result.rtt_samples.size == 0


def test_run_result_dict_shape():
    run = make_run()
    payload = run.as_dict()
    assert payload["throughput_msgs_per_s"] > 0
    assert payload["feasible"] is True
