"""Cross-backend determinism matrix.

Every ScenarioSet constructor (grid, consumer_sweep, deployments), run under
SerialBackend, ProcessPoolBackend(jobs=2) and ThreadPoolBackend(jobs=2),
must produce byte-identical JSON payloads: each simulation derives all of
its randomness from the point's config, never from process, thread or
scheduling state.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.architectures import TestbedConfig
from repro.harness import (
    ExperimentConfig,
    ProcessPoolBackend,
    ScenarioSet,
    SerialBackend,
    ThreadPoolBackend,
    run_scenarios,
)


def tiny_config(**overrides):
    params = dict(
        architecture="DTS",
        workload="Dstream",
        pattern="work_sharing",
        num_producers=2,
        num_consumers=2,
        messages_per_producer=4,
        max_sim_time_s=120.0,
        testbed=TestbedConfig(producer_nodes=4, consumer_nodes=4),
    )
    params.update(overrides)
    return ExperimentConfig(**params)


def _scenario_sets():
    base = tiny_config()
    return {
        "grid": ScenarioSet.grid(
            base, architectures=["DTS", "MSS"],
            workloads=["Dstream", "Lstream"], seeds=[1, 2]),
        "consumer_sweep": ScenarioSet.consumer_sweep(
            base, architectures=["DTS", "PRS(HAProxy)"],
            consumer_counts=[1, 2, 4]),
        "deployments": ScenarioSet.deployments(
            ["DTS", "PRS(HAProxy)", "MSS"], base),
    }


def _payloads(outcomes) -> list[str]:
    payloads = []
    for outcome in outcomes:
        if outcome.point.kind == "deployment":
            payloads.append(json.dumps(outcome.result.as_row(),
                                       sort_keys=True, default=str))
        else:
            payloads.append(json.dumps(outcome.result.to_json_dict(),
                                       sort_keys=True))
    return payloads


#: sha256 over the newline-joined serial JSON payloads of each scenario
#: set, recorded with the *pre-fast-kernel* engine (PR 4 tree).  The
#: fast-kernel optimizations (single-callback events, zero-delay lanes,
#: timeout freelist, array('d') metrics buffers, batched jitter draws)
#: must reproduce these bytes exactly.  Regenerate only for a deliberate
#: semantic change:
#:
#:     payloads = _payloads(run_scenarios(scenarios, backend=SerialBackend()))
#:     hashlib.sha256("\n".join(payloads).encode()).hexdigest()
GOLDEN_DIGESTS = {
    "grid":
        "78ed798f48f612330d154c5086c3729f2d8c06c90d631ccbabeb1168c55285c6",
    "consumer_sweep":
        "7c229b6c767bf3ecbd1467953e6ceff6bd4af5b8f1cca97b5a14faad4a530c36",
    "deployments":
        "07f6c84df873bad3003304ad726514e1e11a28bb7891212ee5b345b3e606fff2",
}


@pytest.mark.parametrize("parallel_backend", [
    lambda: ProcessPoolBackend(2),
    lambda: ThreadPoolBackend(2),
], ids=["process", "thread"])
@pytest.mark.parametrize("constructor", ["grid", "consumer_sweep",
                                         "deployments"])
def test_parallel_payloads_byte_identical_to_serial(constructor,
                                                    parallel_backend):
    scenarios = _scenario_sets()[constructor]
    serial = run_scenarios(scenarios, backend=SerialBackend())
    parallel = run_scenarios(scenarios, backend=parallel_backend())
    assert _payloads(serial) == _payloads(parallel)
    # Ordering survives the pool's out-of-order completion too.
    assert ([o.point.cache_key() for o in serial]
            == [o.point.cache_key() for o in parallel])


@pytest.mark.parametrize("constructor", ["grid", "consumer_sweep",
                                         "deployments"])
def test_fast_kernel_payloads_match_pre_optimization_golden(constructor):
    """The optimized kernel reproduces the pre-optimization results
    byte-for-byte (see GOLDEN_DIGESTS for the recording recipe)."""
    scenarios = _scenario_sets()[constructor]
    payloads = _payloads(run_scenarios(scenarios, backend=SerialBackend()))
    digest = hashlib.sha256("\n".join(payloads).encode()).hexdigest()
    assert digest == GOLDEN_DIGESTS[constructor]
