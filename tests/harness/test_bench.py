"""Tests for the persistent benchmark subsystem (harness.bench + CLI)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.harness import bench as benchmod


# ---------------------------------------------------------------------------
# Running benches
# ---------------------------------------------------------------------------

def test_run_benches_produces_timings_and_checks():
    report = benchmod.run_benches(["simkit_zero_delay"], rounds=2)
    result = report.results["simkit_zero_delay"]
    assert result.rounds == 2
    assert result.median_s > 0.0
    assert result.min_s <= result.median_s <= result.max_s
    assert result.check == 1.0
    assert report.repro_version
    assert report.git_sha


def test_run_benches_rejects_unknown_names_and_bad_rounds():
    with pytest.raises(ValueError, match="unknown bench"):
        benchmod.run_benches(["no_such_bench"])
    with pytest.raises(ValueError, match="rounds"):
        benchmod.run_benches(["simkit_zero_delay"], rounds=0)


def test_bench_names_cover_the_required_layers():
    names = benchmod.bench_names()
    assert "simkit_event_loop" in names
    assert "link_transfer" in names
    assert "broker_publish_consume" in names
    assert "experiment_point" in names
    assert "sweep_end_to_end" in names


# ---------------------------------------------------------------------------
# Snapshot trajectory
# ---------------------------------------------------------------------------

def test_snapshots_number_sequentially(tmp_path):
    report = benchmod.run_benches(["simkit_zero_delay"], rounds=1)
    first = report.save(tmp_path)
    assert first.name == "BENCH_0.json"
    second = report.save(tmp_path)
    assert second.name == "BENCH_1.json"

    snapshots = benchmod.list_snapshots(tmp_path)
    assert [index for index, _path in snapshots] == [0, 1]
    index, data = benchmod.latest_snapshot(tmp_path)
    assert index == 1
    assert data["schema"] == benchmod.BENCH_SCHEMA_VERSION
    assert data["kind"] == "repro-streamsim-bench"
    assert "simkit_zero_delay" in data["benches"]
    bench = data["benches"]["simkit_zero_delay"]
    assert {"rounds", "median_s", "stdev_s", "min_s", "max_s",
            "check"} <= set(bench)
    assert benchmod.next_snapshot_path(tmp_path).name == "BENCH_2.json"


def test_latest_snapshot_empty_dir_and_corrupt_file(tmp_path):
    assert benchmod.latest_snapshot(tmp_path) is None
    assert benchmod.next_snapshot_path(tmp_path).name == "BENCH_0.json"
    (tmp_path / "BENCH_0.json").write_text("{not json")
    with pytest.raises(ValueError, match="unreadable"):
        benchmod.latest_snapshot(tmp_path)


# ---------------------------------------------------------------------------
# Comparison / regression gate
# ---------------------------------------------------------------------------

def _benches(**medians):
    return {name: {"median_s": value} for name, value in medians.items()}


def test_compare_reports_classifies_rows():
    rows, regressions = benchmod.compare_reports(
        _benches(a=1.5, b=0.5, c=1.05, fresh=1.0),
        _benches(a=1.0, b=1.0, c=1.0, gone=1.0),
        threshold=0.2)
    by_name = {row["bench"]: row for row in rows}
    assert by_name["a"]["status"] == "REGRESSION"
    assert by_name["b"]["status"] == "improved"
    assert by_name["c"]["status"] == "ok"
    assert by_name["fresh"]["status"] == "new"
    assert by_name["gone"]["status"] == "missing"
    assert regressions == ["a"]


def test_compare_reports_threshold_is_inclusive():
    _rows, regressions = benchmod.compare_reports(
        _benches(a=1.2), _benches(a=1.0), threshold=0.2)
    assert regressions == []  # exactly +20% is still allowed


def test_compare_reports_prefers_best_round_time():
    current = {"a": {"median_s": 2.0, "min_s": 1.05}}
    previous = {"a": {"median_s": 1.0, "min_s": 1.0}}
    rows, regressions = benchmod.compare_reports(current, previous,
                                                 threshold=0.2)
    # The gate uses min_s (noise is one-sided), not the inflated median.
    assert regressions == []
    assert rows[0]["current_s"] == pytest.approx(1.05)


def test_compare_reports_scales_by_calibration():
    # The current machine spins 2x slower than when the snapshot was
    # recorded; a 2x-slower bench time is machine drift, not a regression.
    _rows, regressions = benchmod.compare_reports(
        _benches(a=2.0), _benches(a=1.0), threshold=0.2,
        current_calibration=2.0, previous_calibration=1.0)
    assert regressions == []
    _rows, regressions = benchmod.compare_reports(
        _benches(a=2.0), _benches(a=1.0), threshold=0.2,
        current_calibration=1.0, previous_calibration=1.0)
    assert regressions == ["a"]


def test_compare_reports_normalises_uniform_suite_drift():
    # Every bench 40% slower (busy machine): no per-bench regression.
    rows, regressions = benchmod.compare_reports(
        _benches(a=1.4, b=1.4, c=1.4, d=1.4),
        _benches(a=1.0, b=1.0, c=1.0, d=1.0), threshold=0.2)
    assert regressions == []
    assert all(row["status"] == "ok" for row in rows)
    # One bench 2x slower against a uniformly-drifted suite: flagged.
    rows, regressions = benchmod.compare_reports(
        _benches(a=2.8, b=1.4, c=1.4, d=1.4),
        _benches(a=1.0, b=1.0, c=1.0, d=1.0), threshold=0.2)
    assert regressions == ["a"]
    by_name = {row["bench"]: row for row in rows}
    assert by_name["a"]["vs_suite"] == pytest.approx(2.0)
    # A bench within the absolute threshold is never flagged just because
    # the rest of the suite happened to run faster than the snapshot.
    _rows, regressions = benchmod.compare_reports(
        _benches(a=1.15, b=0.85, c=0.85, d=0.85),
        _benches(a=1.0, b=1.0, c=1.0, d=1.0), threshold=0.2)
    assert regressions == []


def test_measure_calibration_is_positive_and_recorded(tmp_path):
    assert benchmod.measure_calibration(rounds=1) > 0.0
    report = benchmod.run_benches(["simkit_zero_delay"], rounds=1)
    assert report.calibration_s > 0.0
    report.save(tmp_path)
    _index, data = benchmod.latest_snapshot(tmp_path)
    assert data["calibration_s"] == report.calibration_s


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_cli_bench_list(capsys):
    assert main(["bench", "--list"]) == 0
    out = capsys.readouterr().out
    assert "simkit_event_loop" in out


def test_cli_bench_quick_saves_snapshot(tmp_path, capsys):
    code = main(["bench", "--quick", "--bench", "simkit_zero_delay",
                 "--dir", str(tmp_path)])
    assert code == 0
    assert (tmp_path / "BENCH_0.json").exists()
    out = capsys.readouterr().out
    assert "BENCH_0.json" in out


def test_cli_bench_no_save_leaves_no_snapshot(tmp_path):
    code = main(["bench", "--quick", "--bench", "simkit_zero_delay",
                 "--dir", str(tmp_path), "--no-save"])
    assert code == 0
    assert benchmod.list_snapshots(tmp_path) == []


def test_cli_bench_compare_without_snapshot_skips_gracefully(tmp_path, capsys):
    code = main(["bench", "--quick", "--bench", "simkit_zero_delay",
                 "--dir", str(tmp_path), "--no-save", "--compare"])
    assert code == 0
    assert "nothing to compare" in capsys.readouterr().out


def test_cli_bench_compare_flags_regressions(tmp_path, capsys):
    # A fabricated, impossibly fast previous snapshot: any real run is a
    # regression beyond the threshold.
    (tmp_path / "BENCH_0.json").write_text(json.dumps({
        "schema": benchmod.BENCH_SCHEMA_VERSION,
        "kind": "repro-streamsim-bench",
        "repro_version": "0.0.0",
        "git_sha": "abcdef0123456789abcdef0123456789abcdef01",
        "benches": {"simkit_zero_delay": {"median_s": 1e-12}},
    }))
    code = main(["bench", "--quick", "--bench", "simkit_zero_delay",
                 "--dir", str(tmp_path), "--no-save", "--compare"])
    assert code == 1
    captured = capsys.readouterr()
    assert "REGRESSION" in captured.out
    # Each regression line names the snapshot's provenance (git sha,
    # platform) so CI logs say what baseline was beaten.
    assert ("regression: simkit_zero_delay (vs BENCH_0.json "
            "@ git abcdef012345" in captured.err)
    assert "unknown platform" in captured.err  # snapshot recorded none


def test_cli_bench_regressed_run_is_not_saved(tmp_path, capsys):
    # A regressed run must not become the next baseline (self-masking).
    (tmp_path / "BENCH_0.json").write_text(json.dumps({
        "schema": benchmod.BENCH_SCHEMA_VERSION,
        "kind": "repro-streamsim-bench",
        "repro_version": "0.0.0",
        "benches": {"simkit_zero_delay": {"median_s": 1e-12}},
    }))
    code = main(["bench", "--quick", "--bench", "simkit_zero_delay",
                 "--dir", str(tmp_path), "--compare"])
    assert code == 1
    assert [index for index, _ in benchmod.list_snapshots(tmp_path)] == [0]
    assert "NOT saved" in capsys.readouterr().err


def test_cli_bench_corrupt_snapshot_is_a_clean_error(tmp_path, capsys):
    (tmp_path / "BENCH_0.json").write_text("{truncated")
    code = main(["bench", "--quick", "--bench", "simkit_zero_delay",
                 "--dir", str(tmp_path), "--no-save", "--compare"])
    assert code == 2
    assert "unreadable" in capsys.readouterr().err


def test_cli_bench_compare_only_warns_across_platforms(tmp_path, capsys):
    # Same impossible snapshot, but recorded on a different interpreter:
    # the gate reports the apparent regression without failing the build.
    (tmp_path / "BENCH_0.json").write_text(json.dumps({
        "schema": benchmod.BENCH_SCHEMA_VERSION,
        "kind": "repro-streamsim-bench",
        "repro_version": "0.0.0",
        "python": "3.250.0",
        "platform": "SomeOtherOS-1.0",
        "benches": {"simkit_zero_delay": {"median_s": 1e-12}},
    }))
    code = main(["bench", "--quick", "--bench", "simkit_zero_delay",
                 "--dir", str(tmp_path), "--no-save", "--compare"])
    assert code == 0
    err = capsys.readouterr().err
    assert "different python/platform" in err


def test_cli_bench_compare_passes_against_slow_snapshot(tmp_path):
    (tmp_path / "BENCH_0.json").write_text(json.dumps({
        "schema": benchmod.BENCH_SCHEMA_VERSION,
        "kind": "repro-streamsim-bench",
        "repro_version": "0.0.0",
        "benches": {"simkit_zero_delay": {"median_s": 1e9}},
    }))
    code = main(["bench", "--quick", "--bench", "simkit_zero_delay",
                 "--dir", str(tmp_path), "--no-save", "--compare"])
    assert code == 0


def test_cli_bench_unknown_bench_is_a_usage_error(tmp_path, capsys):
    code = main(["bench", "--bench", "bogus", "--dir", str(tmp_path)])
    assert code == 2
    assert "unknown bench" in capsys.readouterr().err


def test_cli_bench_profile_prints_hotspots(tmp_path, capsys):
    stats_path = tmp_path / "point.pstats"
    code = main(["bench", "--profile", "--profile-out", str(stats_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "cumulative" in out
    assert stats_path.exists()
    # Profile mode never writes a snapshot (only the pstats dump above).
    assert benchmod.list_snapshots(tmp_path) == []
