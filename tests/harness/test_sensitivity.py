"""Testbed-axis sensitivity grids: ScenarioSet.product, sensitivity_sweep,
the bandwidth figure and the compare_architectures axes passthrough."""

from __future__ import annotations

import math

import pytest

from repro.amqp import AckPolicy
from repro.architectures import TestbedConfig
from repro.core import compare_architectures, figure_bandwidth_scaling
from repro.harness import (
    ExperimentConfig,
    ProcessPoolBackend,
    ScenarioSet,
    SerialBackend,
    sensitivity_sweep,
)


def tiny_testbed(**overrides):
    params = dict(producer_nodes=4, consumer_nodes=4)
    params.update(overrides)
    return TestbedConfig(**params)


def tiny_config(**overrides):
    params = dict(
        architecture="DTS",
        workload="Dstream",
        pattern="work_sharing",
        num_producers=2,
        num_consumers=2,
        messages_per_producer=4,
        max_sim_time_s=120.0,
        testbed=tiny_testbed(),
    )
    params.update(overrides)
    return ExperimentConfig(**params)


# ---------------------------------------------------------------------------
# ScenarioSet.product: dotted-path axes
# ---------------------------------------------------------------------------

def test_product_resolves_dotted_testbed_axes():
    scenarios = ScenarioSet.product(tiny_config(), {
        "testbed.link_bandwidth_bps": [1e9, 100e9],
        "testbed.dsn_count": [1, 3],
    })
    assert len(scenarios) == 4
    coords = [(p.config.testbed.link_bandwidth_bps,
               p.config.testbed.dsn_count) for p in scenarios]
    assert coords == [(1e9, 1), (1e9, 3), (100e9, 1), (100e9, 3)]
    # Coordinates are recorded under the axis names, dotted paths included.
    assert scenarios[0].axes == {"testbed.link_bandwidth_bps": 1e9,
                                 "testbed.dsn_count": 1}


def test_product_resolves_doubly_nested_ack_policy_axis():
    scenarios = ScenarioSet.product(tiny_config(), {
        "testbed.ack_policy.mode": ["batch", "per_message"],
    })
    modes = [p.config.testbed.ack_policy.mode for p in scenarios]
    assert modes == ["batch", "per_message"]
    # Other ack policy fields survive the nested replace.
    assert all(p.config.testbed.ack_policy.prefetch_count == 100
               for p in scenarios)


def test_product_orders_architecture_major():
    scenarios = ScenarioSet.product(tiny_config(), {
        "testbed.dsn_count": [1, 3],
        "architecture": ["DTS", "MSS"],  # listed second, still outermost
    })
    coords = [(p.label, p.config.testbed.dsn_count) for p in scenarios]
    assert coords == [("DTS", 1), ("DTS", 3), ("MSS", 1), ("MSS", 3)]


def test_product_consumers_axis_keeps_equal_producers_semantics():
    scenarios = ScenarioSet.product(tiny_config(), {"consumers": [1, 4]})
    assert [(p.config.num_consumers, p.config.num_producers)
            for p in scenarios] == [(1, 1), (4, 4)]
    fixed = ScenarioSet.product(tiny_config(), {"consumers": [1, 4]},
                                equal_producers=False)
    assert [(p.config.num_consumers, p.config.num_producers)
            for p in fixed] == [(1, 2), (4, 2)]


def test_product_consumers_axis_respects_swept_pattern():
    # The pattern axis applies before the consumer axis: broadcast points
    # keep one producer even under equal_producers.
    base = tiny_config(workload="Generic", pattern="broadcast",
                       num_producers=1, num_consumers=1)
    scenarios = ScenarioSet.product(base, {
        "pattern": ["broadcast", "broadcast_gather"],
        "consumers": [2, 4],
    })
    assert all(p.config.num_producers == 1 for p in scenarios)
    assert [p.config.num_consumers for p in scenarios] == [2, 4, 2, 4]


def test_product_architecture_axis_starts_from_clean_options():
    base = tiny_config(architecture="PRS(HAProxy)",
                       architecture_options={"num_connections": 2})
    scenarios = ScenarioSet.product(base, {
        "architecture": ["PRS(HAProxy)", "DTS"]})
    by_label = {p.label: p.config.architecture_options for p in scenarios}
    assert by_label["PRS(HAProxy)"] == {"num_connections": 2}
    assert by_label["DTS"] == {}


def test_product_rejects_unknown_axis_and_names_valid_fields():
    with pytest.raises(ValueError, match="link_bandwidth_bps"):
        ScenarioSet.product(tiny_config(),
                            {"testbed.link_bandwidth": [1e9]})
    with pytest.raises(ValueError, match="no field"):
        ScenarioSet.product(tiny_config(), {"nonsense": [1]})
    # A path descending through a non-dataclass leaf is rejected too.
    with pytest.raises(ValueError, match="plain"):
        ScenarioSet.product(tiny_config(), {"seed.subfield": [1]})


def test_product_rejects_empty_and_none_axes():
    with pytest.raises(ValueError, match="empty"):
        ScenarioSet.product(tiny_config(), {"seed": []})
    with pytest.raises(ValueError, match="None"):
        ScenarioSet.product(tiny_config(), {"seed": None})
    with pytest.raises(ValueError, match="at least one axis"):
        ScenarioSet.product(tiny_config(), {})


def test_product_points_have_distinct_cache_keys():
    scenarios = ScenarioSet.product(tiny_config(), {
        "testbed.link_bandwidth_bps": [1e9, 10e9, 100e9]})
    keys = {p.cache_key() for p in scenarios}
    assert len(keys) == 3


def test_map_configs_rewrites_configs_in_place():
    scenarios = ScenarioSet.product(tiny_config(), {"seed": [1, 2]})
    scenarios.map_configs(lambda config: config.with_consumers(4))
    assert all(p.config.num_consumers == 4 for p in scenarios)
    assert [p.axes["seed"] for p in scenarios] == [1, 2]  # axes untouched


# ---------------------------------------------------------------------------
# sensitivity_sweep
# ---------------------------------------------------------------------------

def test_sensitivity_sweep_long_format_rows():
    sweep = sensitivity_sweep(tiny_config(), {
        "architecture": ["DTS", "MSS"],
        "testbed.dsn_count": [1, 3],
    })
    assert sweep.axis_names == ("architecture", "testbed.dsn_count")
    assert sweep.axes["testbed.dsn_count"] == (1, 3)
    assert len(sweep) == 4
    rows = sweep.rows("throughput_msgs_per_s")
    assert len(rows) == 4
    assert {(row["architecture"], row["testbed.dsn_count"])
            for row in rows} == {("DTS", 1), ("DTS", 3),
                                 ("MSS", 1), ("MSS", 3)}
    assert all(row["throughput_msgs_per_s"] > 0 for row in rows
               if row["feasible"])
    # Grid positions are addressable by coordinate.
    assert sweep.get("DTS", 1) is not None
    assert sweep.get("DTS", 5) is None


def test_sensitivity_sweep_series_requires_pinning_free_axes():
    sweep = sensitivity_sweep(tiny_config(), {
        "architecture": ["DTS", "MSS"],
        "testbed.dsn_count": [1, 3],
    })
    series = sweep.series("testbed.dsn_count", architecture="DTS")
    assert [value for value, _ in series] == [1, 3]
    with pytest.raises(ValueError, match="pin"):
        sweep.series("testbed.dsn_count")
    with pytest.raises(ValueError, match="unknown axis"):
        sweep.series("nope", architecture="DTS")
    with pytest.raises(ValueError, match="unknown fixed"):
        sweep.series("testbed.dsn_count", architecure="DTS")  # typo


def test_sensitivity_sweep_pool_bit_identical_to_serial():
    axes = {"architecture": ["DTS", "MSS"],
            "testbed.link_bandwidth_bps": [1e9, 100e9]}
    serial = sensitivity_sweep(tiny_config(), axes, backend=SerialBackend())
    pooled = sensitivity_sweep(tiny_config(), axes,
                               backend=ProcessPoolBackend(2))
    assert serial.rows() == pooled.rows()


def test_ack_policy_mode_changes_results():
    axes = {"testbed.ack_policy.mode": ["batch", "per_message",
                                        "fire_and_forget"]}
    sweep = sensitivity_sweep(tiny_config(messages_per_producer=8), axes)
    by_mode = {mode: sweep.get(mode).throughput_msgs_per_s
               for mode in axes["testbed.ack_policy.mode"]}
    # Per-message confirms cost a round trip per publish; batch amortizes
    # it; fire-and-forget never waits at all.
    assert by_mode["per_message"] < by_mode["batch"] <= by_mode["fire_and_forget"]


# ---------------------------------------------------------------------------
# The bandwidth-scaling figure (§6)
# ---------------------------------------------------------------------------

def test_figure_bandwidth_scaling_rows_and_speedup():
    data = figure_bandwidth_scaling(
        workload="Lstream", architectures=("DTS", "MSS"), consumers=2,
        speeds_gbps=(1, 100), messages_per_producer=4,
        testbed=tiny_testbed())
    assert data.figure == "bandwidth"
    assert len(data.rows) == 4
    assert {row["link_gbps"] for row in data.rows} == {1.0, 100.0}
    for row in data.rows:
        assert row["workload"] == "Lstream"
        assert row["consumers"] == 2
    # At the paper's operating point the speedup column is exactly 1.
    for row in data.rows:
        if row["link_gbps"] == 1.0 and row["feasible"]:
            assert row["speedup_vs_1gbps"] == pytest.approx(1.0)
    # Faster links never hurt LCLS-style streaming throughput.
    for architecture in ("DTS", "MSS"):
        slow = [r for r in data.rows if r["architecture"] == architecture
                and r["link_gbps"] == 1.0][0]
        fast = [r for r in data.rows if r["architecture"] == architecture
                and r["link_gbps"] == 100.0][0]
        assert fast["throughput_msgs_per_s"] >= slow["throughput_msgs_per_s"]


def test_figure_bandwidth_scaling_scales_backbone_with_access_links():
    data = figure_bandwidth_scaling(
        architectures=("DTS",), consumers=2, speeds_gbps=(10,),
        messages_per_producer=4, testbed=tiny_testbed())
    sweep = data.sweeps["bandwidth"]
    result = sweep.get("DTS", 10e9)
    assert result is not None
    # The sweep rescales all tiers coherently, so the recorded point ran
    # with a 20 Gbps backbone (2x) and 10 Gbps gateways (1x).
    flat = figure_bandwidth_scaling(
        architectures=("DTS",), consumers=2, speeds_gbps=(10,),
        messages_per_producer=4, testbed=tiny_testbed(),
        scale_backbone=False)
    # Without backbone scaling the 2 Gbps backbone caps the run harder.
    assert (flat.rows[0]["throughput_msgs_per_s"]
            <= data.rows[0]["throughput_msgs_per_s"])


def test_with_link_bandwidth_rescales_tiers():
    testbed = TestbedConfig().with_link_bandwidth(100e9)
    assert testbed.link_bandwidth_bps == 100e9
    assert testbed.backbone_bandwidth_bps == 200e9
    assert testbed.gateway_bandwidth_bps == 100e9
    with pytest.raises(ValueError, match="backbone"):
        TestbedConfig(backbone_bandwidth_bps=0)


# ---------------------------------------------------------------------------
# compare_architectures axes passthrough
# ---------------------------------------------------------------------------

def test_compare_architectures_axes_grid_and_rows():
    comparison = compare_architectures(
        workload="Dstream", pattern="work_sharing", consumers=2,
        architectures=["DTS", "MSS"], messages_per_producer=6,
        testbed=tiny_testbed(), axes={"testbed.dsn_count": [1, 3]})
    assert comparison.axes == {"testbed.dsn_count": (1, 3)}
    assert set(comparison.grid) == {(1,), (3,)}
    assert set(comparison.grid[(1,)]) == {"DTS", "MSS"}
    rows = comparison.rows()
    assert len(rows) == 4
    # Overheads are computed against the baseline at the same coordinate.
    for row in rows:
        assert row["testbed.dsn_count"] in (1, 3)
        if row["architecture"] == "DTS":
            assert row["throughput_overhead_vs_dts"] == 1.0
        else:
            assert (row["throughput_overhead_vs_dts"] > 1.0
                    or math.isnan(row["throughput_overhead_vs_dts"]))


def test_compare_architectures_axes_redirects_overhead_accessors():
    comparison = compare_architectures(
        workload="Dstream", pattern="work_sharing", consumers=2,
        architectures=["DTS", "MSS"], messages_per_producer=6,
        testbed=tiny_testbed(), axes={"testbed.dsn_count": [1, 3]})
    with pytest.raises(ValueError, match="per-coordinate"):
        comparison.throughput_overheads()
    with pytest.raises(ValueError, match="per-coordinate"):
        comparison.rtt_overheads()


def test_compare_architectures_axes_rejects_architecture_axis():
    with pytest.raises(ValueError, match="architecture"):
        compare_architectures(architectures=["DTS"],
                              testbed=tiny_testbed(),
                              axes={"architecture": ["MSS"]})


def test_compare_architectures_without_axes_unchanged():
    comparison = compare_architectures(
        workload="Dstream", pattern="work_sharing", consumers=2,
        architectures=["DTS", "MSS"], messages_per_producer=6,
        testbed=tiny_testbed())
    assert comparison.axes == {}
    assert set(comparison.results) == {"DTS", "MSS"}
    assert set(comparison.grid) == {()}
    assert len(comparison.rows()) == 2


# ---------------------------------------------------------------------------
# AckPolicy.mode mechanics
# ---------------------------------------------------------------------------

def test_ack_policy_effective_batches_per_mode():
    policy = AckPolicy(consumer_batch=10, publisher_batch=50)
    assert policy.effective_consumer_batch == 10
    assert policy.effective_publisher_batch == 50
    per_message = AckPolicy(consumer_batch=10, publisher_batch=50,
                            mode="per_message")
    assert per_message.effective_consumer_batch == 1
    assert per_message.effective_publisher_batch == 1
    fire = AckPolicy(publisher_batch=50, mode="fire_and_forget")
    assert fire.effective_publisher_batch == 0
    with pytest.raises(ValueError, match="ack mode"):
        AckPolicy(mode="nonsense")


def test_ack_policy_mode_round_trips_through_config_json():
    config = tiny_config(testbed=tiny_testbed(
        ack_policy=AckPolicy(mode="per_message")))
    clone = ExperimentConfig.from_json_dict(config.to_json_dict())
    assert clone == config
    assert clone.testbed.ack_policy.mode == "per_message"
