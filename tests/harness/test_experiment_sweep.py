"""Integration tests for the experiment runner and consumer sweeps."""

from __future__ import annotations

import math

import pytest

from repro.architectures import TestbedConfig
from repro.harness import (
    Experiment,
    ExperimentConfig,
    ConsumerSweep,
    run_experiment,
)


def tiny_testbed():
    return TestbedConfig(producer_nodes=4, consumer_nodes=4)


def tiny_config(**overrides):
    params = dict(
        architecture="DTS",
        workload="Dstream",
        pattern="work_sharing",
        num_producers=2,
        num_consumers=2,
        messages_per_producer=10,
        max_sim_time_s=120.0,
        testbed=tiny_testbed(),
    )
    params.update(overrides)
    return ExperimentConfig(**params)


def test_run_experiment_averages_multiple_runs():
    result = run_experiment(tiny_config(runs=2))
    assert len(result.runs) == 2
    assert result.feasible
    assert result.throughput_msgs_per_s > 0
    assert all(run.completed for run in result.runs)


def test_run_experiment_accepts_keyword_overrides():
    result = run_experiment(tiny_config(), messages_per_producer=5)
    assert result.runs[0].published == 10  # 2 producers x 5 messages


def test_runs_are_reproducible_with_same_seed():
    a = Experiment(tiny_config(seed=3)).run_single(0)
    b = Experiment(tiny_config(seed=3)).run_single(0)
    assert a.throughput_msgs_per_s == pytest.approx(b.throughput_msgs_per_s)
    assert a.duration_s == pytest.approx(b.duration_s)


def test_different_seeds_change_jitter():
    a = Experiment(tiny_config(seed=3)).run_single(0)
    b = Experiment(tiny_config(seed=4)).run_single(0)
    # Jitter differs, so durations should not be bit-identical.
    assert a.duration_s != b.duration_s


def test_prs_stunnel_infeasible_at_32_consumers():
    config = tiny_config(architecture="PRS(Stunnel)", num_producers=32,
                         num_consumers=32,
                         testbed=TestbedConfig(producer_nodes=16, consumer_nodes=16))
    result = Experiment(config).run_single(0)
    assert not result.feasible
    assert "16" in result.infeasible_reason
    assert result.consumed == 0


def test_prs_stunnel_feasible_at_16_consumers():
    config = tiny_config(architecture="PRS(Stunnel)", num_producers=16,
                         num_consumers=16, messages_per_producer=2,
                         testbed=TestbedConfig(producer_nodes=16, consumer_nodes=16))
    result = Experiment(config).run_single(0)
    assert result.feasible
    assert result.completed


def test_sweep_collects_all_points_and_series():
    base = tiny_config(messages_per_producer=6)
    sweep = ConsumerSweep(base, architectures=["DTS", "MSS"],
                          consumer_counts=[1, 2]).run()
    assert set(sweep.architectures()) == {"DTS", "MSS"}
    dts_series = sweep.series("DTS")
    assert [c for c, _ in dts_series] == [1, 2]
    assert all(v > 0 for _, v in dts_series)
    rows = sweep.rows()
    assert len(rows) == 4
    assert sweep.get("DTS", 1) is not None
    assert sweep.get("DTS", 99) is None


def test_sweep_equal_producers_scaling():
    base = tiny_config(messages_per_producer=4)
    sweep = ConsumerSweep(base, architectures=["DTS"], consumer_counts=[1, 4]).run()
    result = sweep.get("DTS", 4)
    assert result.num_producers == 4
    assert result.num_consumers == 4


def test_sweep_series_skips_infeasible_points():
    base = tiny_config(architecture="PRS(Stunnel)", messages_per_producer=2,
                       testbed=TestbedConfig(producer_nodes=16, consumer_nodes=16))
    sweep = ConsumerSweep(base, architectures=["PRS(Stunnel)"],
                          consumer_counts=[1, 32]).run()
    series = sweep.series("PRS(Stunnel)")
    assert [c for c, _ in series] == [1]
    rows = sweep.rows()
    infeasible = [r for r in rows if r["consumers"] == 32][0]
    assert infeasible["feasible"] is False
    assert math.isnan(infeasible["throughput_msgs_per_s"])


def test_architecture_ordering_dts_fastest_on_small_sweep():
    base = tiny_config(messages_per_producer=8)
    sweep = ConsumerSweep(base, architectures=["DTS", "PRS(HAProxy)", "MSS"],
                          consumer_counts=[4]).run()
    dts = sweep.get("DTS", 4).throughput_msgs_per_s
    prs = sweep.get("PRS(HAProxy)", 4).throughput_msgs_per_s
    mss = sweep.get("MSS", 4).throughput_msgs_per_s
    assert dts > prs
    assert dts > mss


def test_mss_feedback_rtt_overhead_vs_dts():
    """The paper's headline RTT result: MSS >> DTS, PRS close to DTS."""
    counts = dict(num_producers=4, num_consumers=4)
    base = tiny_config(pattern="work_sharing_feedback", messages_per_producer=8,
                       **counts)
    dts = Experiment(base).run_single(0)
    mss = Experiment(base.with_architecture("MSS")).run_single(0)
    prs = Experiment(base.with_architecture("PRS(HAProxy)")).run_single(0)
    assert mss.median_rtt_s > dts.median_rtt_s
    assert prs.median_rtt_s < mss.median_rtt_s
