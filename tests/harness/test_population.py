"""Aggregate-client populations: scaling semantics and bit-identity.

The population model's contract has two halves:

* K=1 is *bit-identical* to discrete clients — the population wrapper, the
  multiplicity plumbing and the weighted-statistics machinery must not
  perturb a single byte of the historical results (the determinism-matrix
  goldens enforce this against the pre-population recording; here we also
  pin that the opt-in ``populations`` grid axis at K=1 reproduces the
  axis-free results exactly);
* K>1 conserves the *logical* client fleet — consumed counts, replies and
  weighted metric reductions reflect num_producers x K clients while the
  simulation only ever runs O(populations) processes.
"""

from __future__ import annotations

import hashlib
import json

import numpy as np
import pytest

from repro.architectures import TestbedConfig
from repro.harness import (
    ExperimentConfig,
    ProcessPoolBackend,
    ScenarioSet,
    SerialBackend,
    ThreadPoolBackend,
    run_experiment,
    run_scenarios,
)
from repro.harness.results import RunResult
from repro.workloads import (ClientPopulation, PopulationSpec,
                             WorkloadGenerator, get_workload)


def tiny_config(**overrides):
    params = dict(
        architecture="DTS",
        workload="Dstream",
        pattern="work_sharing",
        num_producers=2,
        num_consumers=2,
        messages_per_producer=4,
        max_sim_time_s=300.0,
        testbed=TestbedConfig(producer_nodes=4, consumer_nodes=4),
    )
    params.update(overrides)
    return ExperimentConfig(**params)


def _payloads(outcomes) -> list[str]:
    return [json.dumps(outcome.result.to_json_dict(), sort_keys=True)
            for outcome in outcomes]


def _digest(outcomes) -> str:
    return hashlib.sha256("\n".join(_payloads(outcomes)).encode()).hexdigest()


# ---------------------------------------------------------------------------
# K=1 bit-identity
# ---------------------------------------------------------------------------

def test_population_axis_at_one_reproduces_axis_free_results():
    """grid(populations=[1]) emits byte-identical result payloads to the
    same grid without the population axis (only cache keys may differ)."""
    base = tiny_config()
    without = run_scenarios(
        ScenarioSet.grid(base, architectures=["DTS", "MSS"], seeds=[1, 2]),
        backend=SerialBackend())
    with_axis = run_scenarios(
        ScenarioSet.grid(base, architectures=["DTS", "MSS"],
                         populations=[1], seeds=[1, 2]),
        backend=SerialBackend())
    assert _payloads(without) == _payloads(with_axis)


def test_population_one_results_stay_unweighted():
    """Size-1 populations must not trip the weighted-statistics path, so
    serialized results keep their historical schema (no weight columns)."""
    result = run_experiment(tiny_config(population=1)).runs[0]
    assert result.completed
    payload = result.to_json_dict()
    assert "rtt_weights" not in payload
    assert "latency_weights" not in payload
    assert result.latency is not None and result.latency.weights is None


# ---------------------------------------------------------------------------
# K>1: logical conservation across every pattern family
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("pattern,replies_per_message", [
    ("work_sharing", 0),
    ("work_sharing_feedback", 1),
    ("broadcast_gather", 2),  # one reply per consumer
])
def test_population_conserves_logical_fleet(pattern, replies_per_message):
    population = 50
    overrides = {"pattern": pattern, "population": population}
    if pattern.startswith("broadcast"):
        overrides["num_producers"] = 1  # §5.5: broadcast has one producer
    config = tiny_config(**overrides)
    result = run_experiment(config).runs[0]
    assert result.completed
    logical_messages = (config.num_producers * config.messages_per_producer
                        * population)
    if pattern.startswith("broadcast"):
        assert result.consumed == logical_messages * config.num_consumers
    else:
        assert result.consumed == logical_messages
    assert result.replies == logical_messages * replies_per_message
    # The weighted latency reduction spans the whole logical fleet.
    assert result.latency is not None
    assert result.latency.weights is not None
    assert result.latency.weights.sum() == pytest.approx(result.consumed)


def test_population_scales_published_but_not_process_count():
    """K=1000 consumes 1000x the logical messages from the same number of
    aggregate sends (messages_generated counts aggregate sends only)."""
    config = tiny_config(population=1000)
    result = run_experiment(config).runs[0]
    assert result.completed
    assert result.published == 2 * 4 * 1000
    assert result.consumed == 2 * 4 * 1000
    assert config.total_clients == 2 * 1000
    assert config.total_messages == 2 * 4 * 1000


def test_weighted_result_round_trips_through_json():
    result = run_experiment(tiny_config(population=7)).runs[0]
    payload = result.to_json_dict()
    assert "latency_weights" in payload
    restored = RunResult.from_json_dict(payload)
    np.testing.assert_array_equal(restored.latency.weights,
                                  result.latency.weights)
    assert (json.dumps(restored.to_json_dict(), sort_keys=True)
            == json.dumps(payload, sort_keys=True))


# ---------------------------------------------------------------------------
# The population scenario axis: goldens and parallel byte-identity
# ---------------------------------------------------------------------------

def _population_scenarios() -> ScenarioSet:
    return ScenarioSet.grid(
        tiny_config(), architectures=["DTS", "MSS"],
        populations=[1, 50], seeds=[1, 2])


#: sha256 over the newline-joined serial JSON payloads of the population
#: grid above, recorded when the aggregate-client model landed.  Regenerate
#: only for a deliberate semantic change:
#:
#:     digest = _digest(run_scenarios(_population_scenarios(),
#:                                    backend=SerialBackend()))
POPULATION_GOLDEN = (
    "cbcccd5307bc19e4e401b933bab96f58d4969deaffcd81307572c19e7464143f")


def test_population_grid_matches_golden():
    digest = _digest(run_scenarios(_population_scenarios(),
                                   backend=SerialBackend()))
    assert digest == POPULATION_GOLDEN


@pytest.mark.parametrize("parallel_backend", [
    lambda: ProcessPoolBackend(2),
    lambda: ThreadPoolBackend(2),
], ids=["process", "thread"])
def test_population_grid_parallel_byte_identical(parallel_backend):
    scenarios = _population_scenarios()
    serial = run_scenarios(scenarios, backend=SerialBackend())
    parallel = run_scenarios(scenarios, backend=parallel_backend())
    assert _payloads(serial) == _payloads(parallel)


def test_population_axis_labels_points():
    points = list(_population_scenarios())
    assert {point.axes.get("population") for point in points} == {1, 50}
    assert all(point.config.population == point.axes["population"]
               for point in points)


# ---------------------------------------------------------------------------
# ClientPopulation / PopulationSpec units
# ---------------------------------------------------------------------------

def _generator(seed: int = 3) -> WorkloadGenerator:
    return WorkloadGenerator(get_workload("Dstream"),
                             rng=np.random.default_rng(seed),
                             rate_limited=True, num_producers=2)


def test_population_spec_validation():
    with pytest.raises(ValueError, match="population size must be >= 1"):
        PopulationSpec(size=0)
    with pytest.raises(ValueError, match="gap_jitter_fraction"):
        PopulationSpec(gap_jitter_fraction=1.0)
    with pytest.raises(ValueError, match="batch must be >= 1"):
        PopulationSpec(batch=0)


def test_population_wrapper_is_transparent_at_size_one():
    """A size-1 population forwards draws 1:1 with the bare generator."""
    bare, wrapped = _generator(), ClientPopulation(_generator())
    assert wrapped.multiplicity == 1
    for _ in range(10):
        assert wrapped.next_blueprint() == bare.next_blueprint()
        assert wrapped.send_interval() == bare.send_interval()
    assert wrapped.messages_generated == bare.messages_generated == 10
    assert wrapped.reply_payload_bytes() == bare.reply_payload_bytes()


def test_population_jitter_requires_rng_and_stays_in_bounds():
    spec = PopulationSpec(size=10, gap_jitter_fraction=0.25)
    with pytest.raises(ValueError, match="requires a jitter_rng"):
        ClientPopulation(_generator(), spec)
    population = ClientPopulation(_generator(), spec,
                                  jitter_rng=np.random.default_rng(9))
    gap = _generator().send_interval()
    assert gap > 0
    for _ in range(200):
        jittered = population.send_interval()
        assert gap * 0.75 <= jittered <= gap * 1.25
