"""Chaos determinism: fault plans, schedules and cross-backend identity.

The fault-injection contract has three legs:

* ``faults=None`` and the inactive all-zero :class:`FaultPlan` are the
  exact pre-fault code path — byte-identical results (the golden-digest
  tests in test_determinism_matrix.py pin the absolute bytes; here we pin
  the None/inactive equivalence).
* An *active* plan is a pure function of ``(seed, plan, topology)``: the
  same chaos sweep is byte-identical across serial, process and thread
  backends, and each fault kind draws from its own derived stream so
  enabling one axis never shifts another's schedule.
* Faults degrade, they do not corrupt: runs complete, and with aggregate
  populations under consumer churn the logical fleet is conserved
  (at-least-once redelivery may duplicate, never lose).
"""

from __future__ import annotations

import json
import pickle
from dataclasses import replace

import pytest

from repro.architectures import TestbedConfig
from repro.faults import FAULT_AXES, FaultPlan, FaultSpec
from repro.harness import (
    Experiment,
    ExperimentConfig,
    ProcessPoolBackend,
    ScenarioSet,
    SerialBackend,
    ThreadPoolBackend,
    run_scenarios,
)
from repro.simkit import RandomStreams


def tiny_config(**overrides):
    params = dict(
        architecture="DTS",
        workload="Dstream",
        pattern="work_sharing",
        num_producers=2,
        num_consumers=2,
        messages_per_producer=4,
        max_sim_time_s=120.0,
        testbed=TestbedConfig(producer_nodes=4, consumer_nodes=4),
    )
    params.update(overrides)
    return ExperimentConfig(**params)


def _payloads(outcomes) -> list[str]:
    return [json.dumps(outcome.result.to_json_dict(), sort_keys=True)
            for outcome in outcomes]


# ---------------------------------------------------------------------------
# FaultPlan / FaultSpec basics
# ---------------------------------------------------------------------------

def test_default_plan_is_inactive():
    plan = FaultPlan()
    assert not plan.active
    assert plan.describe() == {}


def test_plan_validation():
    with pytest.raises(ValueError):
        FaultPlan(broker_kill_rate=-1.0)
    with pytest.raises(ValueError):
        FaultPlan(link_degradation=1.0)
    with pytest.raises(ValueError):
        FaultPlan(horizon_s=0.0)
    with pytest.raises(ValueError):
        FaultPlan(weather_window_s=0.5, weather_period_s=0.1)
    with pytest.raises(ValueError):
        FaultSpec("meteor_strike", 0.0)


def test_plan_json_and_pickle_round_trip_on_config():
    config = tiny_config(faults=FaultPlan(broker_kill_rate=1.5,
                                          horizon_s=0.1,
                                          slow_consumer=0.002))
    assert ExperimentConfig.from_json_dict(config.to_json_dict()) == config
    assert pickle.loads(pickle.dumps(config)) == config
    # And a None plan stays None through the round trip.
    bare = tiny_config()
    assert ExperimentConfig.from_json_dict(bare.to_json_dict()).faults is None


def test_describe_carries_fault_coordinates():
    config = tiny_config(faults=FaultPlan(consumer_churn=2.0))
    assert config.describe()["faults.consumer_churn"] == 2.0
    # Fault-free configs keep their historical columns exactly.
    assert not any(key.startswith("faults.")
                   for key in tiny_config().describe())


# ---------------------------------------------------------------------------
# Schedule expansion determinism
# ---------------------------------------------------------------------------

def _expand(plan, seed=7):
    return plan.expand(RandomStreams(seed), brokers=["rmqs1", "rmqs2"],
                       links=["l1", "l2", "l3"], consumers=4)


def test_expand_is_deterministic_and_sorted():
    plan = FaultPlan(broker_kill_rate=2.0, link_flap=1.0,
                     link_degradation=0.5, consumer_churn=1.0,
                     slow_consumer=0.001)
    first, second = _expand(plan), _expand(plan)
    assert first == second
    assert first == sorted(first, key=lambda s: (s.time_s, s.kind, s.target))
    assert _expand(plan, seed=8) != first


def test_expand_axes_are_independent_streams():
    """Enabling one axis must not shift another axis' draws."""
    alone = _expand(FaultPlan(broker_kill_rate=2.0))
    combined = _expand(FaultPlan(broker_kill_rate=2.0, link_flap=3.0,
                                 consumer_churn=1.0))
    assert [s for s in combined if s.kind == "broker_kill"] == alone


def test_expand_integer_rates_are_exact():
    for rate in (1.0, 2.0, 3.0):
        specs = _expand(FaultPlan(broker_kill_rate=rate))
        assert len(specs) == int(rate)
        assert all(0.0 <= s.time_s < FaultPlan().horizon_s for s in specs)


def test_inactive_plan_expands_to_nothing():
    assert _expand(FaultPlan()) == []


# ---------------------------------------------------------------------------
# faults=None <-> inactive plan identity
# ---------------------------------------------------------------------------

def test_inactive_plan_byte_identical_to_none():
    bare = Experiment(tiny_config()).run_single(0)
    inactive = Experiment(tiny_config(faults=FaultPlan())).run_single(0)
    assert (json.dumps(bare.to_json_dict(), sort_keys=True)
            == json.dumps(inactive.to_json_dict(), sort_keys=True))


def test_zero_rate_point_byte_identical_to_none():
    """A chaos sweep's rate-0 baseline is the pre-fault run, exactly."""
    bare = Experiment(tiny_config()).run_single(0)
    zero = Experiment(tiny_config(
        faults=FaultPlan())).run_single(0)
    swept = Experiment(replace(
        tiny_config(faults=FaultPlan()), faults=FaultPlan(
            broker_kill_rate=0.0))).run_single(0)
    payloads = {json.dumps(r.to_json_dict(), sort_keys=True)
                for r in (bare, zero, swept)}
    assert len(payloads) == 1


# ---------------------------------------------------------------------------
# Cross-backend byte identity of a chaos sweep
# ---------------------------------------------------------------------------

def _chaos_scenarios():
    base = tiny_config(faults=FaultPlan(), messages_per_producer=25,
                       num_producers=4, num_consumers=4)
    return ScenarioSet.product(base, {
        "architecture": ["DTS", "MSS"],
        "faults.broker_kill_rate": [0.0, 1.0],
        "faults.consumer_churn": [0.0, 1.0],
    })


@pytest.mark.parametrize("parallel_backend", [
    lambda: ProcessPoolBackend(2),
    lambda: ThreadPoolBackend(2),
], ids=["process", "thread"])
def test_chaos_sweep_byte_identical_across_backends(parallel_backend):
    scenarios = _chaos_scenarios()
    serial = run_scenarios(scenarios, backend=SerialBackend())
    parallel = run_scenarios(scenarios, backend=parallel_backend())
    assert _payloads(serial) == _payloads(parallel)
    assert ([o.point.cache_key() for o in serial]
            == [o.point.cache_key() for o in parallel])


def test_product_accepts_fault_axes_on_faults_none_base():
    """Sweeping faults.* from a fault-free base auto-attaches a plan."""
    scenarios = ScenarioSet.product(
        tiny_config(), {"faults.broker_kill_rate": [0.0, 1.0]})
    outcomes = run_scenarios(scenarios, backend=SerialBackend())
    assert len(outcomes) == 2
    assert [o.point.config.faults.broker_kill_rate for o in outcomes] == \
        [0.0, 1.0]
    assert all(o.result.feasible for o in outcomes)


# ---------------------------------------------------------------------------
# Failure rows carry the full point coordinates
# ---------------------------------------------------------------------------

def test_failure_rows_carry_fault_and_population_coordinates(monkeypatch):
    """A chaos sweep's dead points must be attributable: the failure row
    names the fault coordinates (and population) alongside the swept
    axes."""
    from repro.harness import ExecutionPolicy, sensitivity_sweep
    from repro.harness import runner as runner_module
    from repro.harness.runner import execute_point

    def crash_on_chaos(point):
        if point.config.faults is not None and point.config.faults.active:
            raise RuntimeError("injected chaos crash")
        return execute_point(point)

    monkeypatch.setattr(runner_module, "execute_point", crash_on_chaos)
    base = tiny_config(faults=FaultPlan(), population=3)
    sweep = sensitivity_sweep(
        base, {"faults.broker_kill_rate": [0.0, 1.0]},
        policy=ExecutionPolicy(on_error="record"))
    assert len(sweep.failures) == 1
    row = sweep.failures[0].as_row()
    assert row["faults.broker_kill_rate"] == 1.0
    assert row["population"] == 3
    assert "injected chaos crash" in row["error"]


# ---------------------------------------------------------------------------
# Every axis completes; populations conserve the fleet under churn
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("axis", FAULT_AXES)
def test_every_axis_runs_to_completion(axis):
    value = 0.5 if axis == "link_degradation" else 1.0
    config = tiny_config(faults=FaultPlan(**{axis: value}))
    result = Experiment(config).run_single(0)
    assert result.feasible and result.completed
    assert result.consumed >= config.total_messages
    snapshot = result.extra["faults"]
    assert snapshot["plan"] == {axis: value}
    assert snapshot["scheduled"] >= 1


def test_population_fleet_conserved_under_churn():
    """K>1 aggregate populations under consumer churn lose nothing:
    at-least-once redelivery may duplicate a logical message, never drop
    one."""
    config = tiny_config(population=3, num_producers=4, num_consumers=4,
                         messages_per_producer=10,
                         faults=FaultPlan(consumer_churn=2.0))
    result = Experiment(config).run_single(0)
    assert result.feasible and result.completed
    assert config.total_messages == 4 * 10 * 3
    assert result.consumed >= config.total_messages


def test_broker_kill_degrades_but_completes():
    base = tiny_config(num_producers=4, num_consumers=4,
                       messages_per_producer=25)
    calm = Experiment(base).run_single(0)
    chaotic = Experiment(replace(
        base, faults=FaultPlan(broker_kill_rate=1.0))).run_single(0)
    assert chaotic.completed
    assert chaotic.consumed == calm.consumed
    assert chaotic.extra["faults"]["fired"] == {"broker_kill": 1}
    # The outage stalls publishes (producer backoff), so the chaotic run
    # takes strictly longer in simulated time.
    assert chaotic.sim_time_s > calm.sim_time_s
