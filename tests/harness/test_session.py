"""Session API: construction, the named-backend registry, env/args
constructors, the legacy-kwarg deprecation shim, and cross-backend
byte-identity of the session vs legacy paths."""

from __future__ import annotations

import argparse
import json
import pickle
import warnings

import pytest

from repro.architectures import TestbedConfig
from repro.harness import (
    ConsumerSweep,
    ExecutionPolicy,
    ExperimentConfig,
    ProcessPoolBackend,
    ResultCache,
    ScenarioPoint,
    ScenarioSet,
    SerialBackend,
    Session,
    ThreadPoolBackend,
    backend_names,
    create_backend,
    register_backend,
    resolve_backend,
    run_scenarios,
    unregister_backend,
)
from repro.harness import session as session_module


@pytest.fixture(autouse=True)
def rearmed_legacy_warning():
    """Each test sees the once-per-process warning as if fresh."""
    session_module.reset_legacy_warning()
    yield
    session_module.reset_legacy_warning()


def tiny_config(**overrides):
    params = dict(
        architecture="DTS",
        workload="Dstream",
        pattern="work_sharing",
        num_producers=2,
        num_consumers=2,
        messages_per_producer=4,
        max_sim_time_s=120.0,
        testbed=TestbedConfig(producer_nodes=4, consumer_nodes=4),
    )
    params.update(overrides)
    return ExperimentConfig(**params)


def one_point():
    return ScenarioSet().add_config(tiny_config())


def sweep_json(sweep) -> str:
    payload = {
        architecture: {str(consumers): result.to_json_dict()
                       for consumers, result in by_consumers.items()}
        for architecture, by_consumers in sweep.results.items()
    }
    return json.dumps(payload, sort_keys=True)


# ---------------------------------------------------------------------------
# Construction and the named-backend registry
# ---------------------------------------------------------------------------

def test_named_backends_resolve():
    assert isinstance(Session(backend="serial").backend, SerialBackend)
    process = Session(backend="process", jobs=3)
    assert isinstance(process.backend, ProcessPoolBackend)
    assert process.backend.jobs == 3
    thread = Session(backend="thread", jobs=2)
    assert isinstance(thread.backend, ThreadPoolBackend)
    assert thread.backend.jobs == 2
    assert thread.backend_name == "thread"


def test_jobs_alone_picks_process_pool_else_serial():
    assert isinstance(Session(jobs=4).backend, ProcessPoolBackend)
    assert isinstance(Session(jobs=1).backend, SerialBackend)
    assert isinstance(Session().backend, SerialBackend)


def test_explicit_backend_instance_wins():
    backend = ThreadPoolBackend(2)
    session = Session(backend=backend, jobs=7)
    assert session.backend is backend
    assert session.backend_name is None


def test_session_validates_jobs_and_policy():
    with pytest.raises(ValueError, match="jobs"):
        Session(jobs=0)
    with pytest.raises(TypeError, match="ExecutionPolicy"):
        Session(policy={"retries": 2})


def test_serial_backend_with_multiple_jobs_warns():
    with pytest.warns(RuntimeWarning, match="no effect"):
        Session(backend="serial", jobs=8)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        Session(backend="serial", jobs=1)
        Session(backend="process", jobs=8)
    assert not [entry for entry in caught
                if issubclass(entry.category, RuntimeWarning)]


def test_unknown_backend_name_lists_registry():
    with pytest.raises(ValueError, match="unknown backend 'warp'"):
        Session(backend="warp")


def test_registry_round_trip_and_overwrite_guard():
    assert {"serial", "process", "thread"} <= set(backend_names())
    assert isinstance(resolve_backend("thread"), ThreadPoolBackend)

    class RecordingBackend(SerialBackend):
        def __init__(self, jobs=None):
            self.jobs = jobs

    try:
        register_backend("recording", lambda jobs=None: RecordingBackend(jobs))
        assert "recording" in backend_names()
        built = create_backend("recording", jobs=5)
        assert isinstance(built, RecordingBackend) and built.jobs == 5
        assert isinstance(Session(backend="recording").backend,
                          RecordingBackend)
        with pytest.raises(ValueError, match="already registered"):
            register_backend("recording", lambda jobs=None: RecordingBackend())
        register_backend("recording", lambda jobs=None: RecordingBackend(9),
                         overwrite=True)
        assert create_backend("recording").jobs == 9
    finally:
        unregister_backend("recording")
    assert "recording" not in backend_names()


def test_factory_must_return_an_execution_backend():
    try:
        register_backend("broken", lambda jobs=None: object())
        with pytest.raises(TypeError, match="ExecutionBackend"):
            create_backend("broken")
    finally:
        unregister_backend("broken")


def test_cache_path_is_opened_with_allow_stale(tmp_path):
    session = Session(cache=tmp_path / "cache", allow_stale=True)
    assert isinstance(session.cache, ResultCache)
    assert session.cache.allow_stale
    existing = ResultCache(str(tmp_path / "other"))
    assert Session(cache=existing).cache is existing
    assert Session().cache is None


def test_session_is_picklable():
    session = Session(backend="thread", jobs=2,
                      policy=ExecutionPolicy(retries=1, on_error="record"))
    clone = pickle.loads(pickle.dumps(session))
    assert isinstance(clone.backend, ThreadPoolBackend)
    assert clone.policy == session.policy
    assert clone.backend_name == "thread"


# ---------------------------------------------------------------------------
# Lifecycle: run, context manager, cache flush
# ---------------------------------------------------------------------------

def test_session_run_matches_run_scenarios():
    scenarios = one_point()
    [via_session] = Session().run(scenarios)
    [via_function] = run_scenarios(scenarios, session=Session())
    assert (json.dumps(via_session.result.to_json_dict(), sort_keys=True)
            == json.dumps(via_function.result.to_json_dict(), sort_keys=True))


def test_context_manager_flushes_cache_and_closes(tmp_path):
    path = tmp_path / "cache"
    with Session(cache=path) as session:
        [outcome] = session.run(one_point())
        assert outcome.ok and not outcome.cached
    assert session.closed
    with pytest.raises(RuntimeError, match="closed"):
        session.run(one_point())
    with pytest.raises(RuntimeError, match="closed"):
        run_scenarios(one_point(), session=session)
    with pytest.raises(RuntimeError, match="closed"):
        ConsumerSweep(tiny_config(), architectures=["DTS"],
                      consumer_counts=[2]).run(session=session)
    with pytest.raises(RuntimeError, match="closed"):
        with session:
            pass  # pragma: no cover - must not be reached

    # A fresh session over the same path serves the point from disk.
    with Session(cache=path) as reader:
        [cached] = reader.run(one_point())
    assert cached.cached


def test_session_progress_is_the_default_callback():
    seen = []
    session = Session(progress=lambda point: seen.append(point.label))
    session.run(one_point())
    assert seen == ["DTS"]
    # An explicit progress= per run overrides the session default.
    explicit = []
    session.run(one_point(), progress=lambda point: explicit.append(1))
    assert seen == ["DTS"] and explicit == [1]


def test_describe_is_flat_and_json_safe(tmp_path):
    session = Session(backend="process", jobs=2, cache=tmp_path / "c",
                      policy=ExecutionPolicy(retries=1))
    info = session.describe()
    assert info["backend"] == "process" and info["jobs"] == 2
    assert info["policy"]["retries"] == 1
    json.dumps(info)  # flat dict, no live objects


# ---------------------------------------------------------------------------
# from_env / from_args
# ---------------------------------------------------------------------------

def test_from_env_reads_every_variable(tmp_path):
    session = Session.from_env({
        "REPRO_JOBS": "2",
        "REPRO_BACKEND": "thread",
        "REPRO_CACHE": str(tmp_path / "cache"),
        "REPRO_ALLOW_STALE": "yes",
        "REPRO_TIMEOUT": "5.5",
        "REPRO_RETRIES": "3",
        "REPRO_BACKOFF": "0.25",
        "REPRO_ON_ERROR": "record",
    })
    assert isinstance(session.backend, ThreadPoolBackend)
    assert session.jobs == 2
    assert session.cache.allow_stale
    assert session.policy == ExecutionPolicy(timeout_s=5.5, retries=3,
                                             backoff_s=0.25,
                                             on_error="record")


def test_from_env_empty_is_default_session():
    session = Session.from_env({})
    assert isinstance(session.backend, SerialBackend)
    assert session.cache is None and session.policy is None


def test_from_env_rejects_bad_values():
    with pytest.raises(ValueError, match="REPRO_JOBS"):
        Session.from_env({"REPRO_JOBS": "many"})
    with pytest.raises(ValueError, match="REPRO_ON_ERROR"):
        Session.from_env({"REPRO_ON_ERROR": "explode"})


def test_from_args_overlays_cli_on_env(tmp_path):
    # None = "not given on the command line" (the parser's sentinels).
    args = argparse.Namespace(jobs=4, backend=None, cache=None,
                              allow_stale=False, timeout=None, retries=None,
                              on_error=None)
    session = Session.from_args(args, environ={
        "REPRO_JOBS": "2",
        "REPRO_CACHE": str(tmp_path / "env-cache"),
        "REPRO_ON_ERROR": "record",
    })
    # CLI --jobs wins; unset CLI options inherit the environment.
    assert session.jobs == 4
    assert session.cache is not None
    assert session.policy.on_error == "record"


def test_from_args_explicit_defaults_still_override_env():
    """`--retries 0 --on-error raise` must beat REPRO_RETRIES/REPRO_ON_ERROR
    even though the values equal the library defaults."""
    args = argparse.Namespace(jobs=None, backend=None, cache=None,
                              allow_stale=False, timeout=None, retries=0,
                              on_error="raise")
    session = Session.from_args(args, environ={"REPRO_RETRIES": "3",
                                               "REPRO_ON_ERROR": "record"})
    assert session.policy is None  # fail-fast, exactly as asked


def test_from_args_without_execution_attrs_is_default():
    session = Session.from_args(argparse.Namespace(), environ={})
    assert isinstance(session.backend, SerialBackend)
    assert session.cache is None and session.policy is None


# ---------------------------------------------------------------------------
# The legacy-kwarg deprecation shim
# ---------------------------------------------------------------------------

def test_legacy_kwargs_warn_exactly_once_per_process():
    scenarios = one_point()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        run_scenarios(scenarios, jobs=1)
        run_scenarios(scenarios, jobs=1)
        ConsumerSweep(tiny_config(), architectures=["DTS"],
                      consumer_counts=[2]).run(jobs=1)
    deprecations = [entry for entry in caught
                    if issubclass(entry.category, DeprecationWarning)]
    assert len(deprecations) == 1
    assert "session=" in str(deprecations[0].message)


def test_session_path_does_not_warn():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        Session().run(one_point())
        run_scenarios(one_point(), session=Session())
    assert not [entry for entry in caught
                if issubclass(entry.category, DeprecationWarning)]


def test_mixing_session_and_legacy_kwargs_raises():
    with pytest.raises(TypeError, match="session="):
        run_scenarios(one_point(), session=Session(), jobs=2)
    with pytest.raises(TypeError, match="jobs/policy"):
        ConsumerSweep(tiny_config(), architectures=["DTS"],
                      consumer_counts=[2]).run(
            session=Session(), jobs=2, policy=ExecutionPolicy(retries=1))


@pytest.mark.parametrize("backend_name", ["serial", "process", "thread"])
def test_legacy_and_session_sweeps_byte_identical(backend_name):
    """Acceptance: a legacy-kwarg call and the equivalent session= call
    produce byte-identical SweepResult JSON on every named backend."""
    base = tiny_config()
    sweep_kwargs = dict(architectures=["DTS", "MSS"], consumer_counts=[1, 2])
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        legacy = ConsumerSweep(base, **sweep_kwargs).run(
            backend=resolve_backend(backend_name, 2))
    with Session(backend=backend_name, jobs=2) as session:
        modern = ConsumerSweep(base, **sweep_kwargs).run(session=session)
    assert sweep_json(legacy) == sweep_json(modern)


# ---------------------------------------------------------------------------
# ThreadPoolBackend semantics
# ---------------------------------------------------------------------------

def test_thread_backend_preserves_submission_order():
    scenarios = ScenarioSet.grid(tiny_config(),
                                 architectures=["DTS", "MSS"],
                                 consumer_counts=[1, 2])
    serial = run_scenarios(scenarios, session=Session())
    threaded = run_scenarios(scenarios, session=Session(backend="thread",
                                                        jobs=4))
    assert ([outcome.point.cache_key() for outcome in serial]
            == [outcome.point.cache_key() for outcome in threaded])
    assert ([json.dumps(outcome.result.to_json_dict(), sort_keys=True)
             for outcome in serial]
            == [json.dumps(outcome.result.to_json_dict(), sort_keys=True)
                for outcome in threaded])


def test_thread_backend_records_failures_under_policy(monkeypatch):
    from repro.harness import runner as runner_module
    real = runner_module.execute_point

    def crash_on_marker(point):
        if point.axes.get("crash"):
            raise RuntimeError("injected crash")
        return real(point)

    monkeypatch.setattr(runner_module, "execute_point", crash_on_marker)
    points = [
        ScenarioPoint(config=tiny_config(), axes={"consumers": 2}),
        ScenarioPoint(config=tiny_config(seed=2), axes={"crash": True}),
        ScenarioPoint(config=tiny_config(seed=3), axes={"consumers": 2}),
    ]
    session = Session(backend="thread", jobs=2,
                      policy=ExecutionPolicy(retries=1, on_error="record"))
    outcomes = session.run(points)
    assert [outcome.ok for outcome in outcomes] == [True, False, True]
    assert outcomes[1].attempts == 2
    assert "injected crash" in outcomes[1].error


def test_thread_backend_single_job_falls_back_to_serial():
    backend = ThreadPoolBackend(1)
    results = backend.run(list(one_point()))
    assert len(results) == 1 and results[0][0] is True


def test_thread_backend_incremental_cache_persistence(tmp_path):
    path = tmp_path / "cache"
    scenarios = ScenarioSet.grid(tiny_config(), consumer_counts=[1, 2, 4])
    with Session(backend="thread", jobs=2, cache=path) as session:
        fresh = session.run(scenarios)
    assert all(not outcome.cached for outcome in fresh)
    with Session(cache=path) as session:
        again = session.run(scenarios)
    assert all(outcome.cached for outcome in again)
    assert ([json.dumps(a.result.to_json_dict(), sort_keys=True)
             for a in fresh]
            == [json.dumps(b.result.to_json_dict(), sort_keys=True)
                for b in again])
