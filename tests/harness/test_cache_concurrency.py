"""Concurrent-writer safety of the sharded result cache.

The flush path is read-merge-write per shard under a per-shard lock, so N
independent writer processes sharing one cache directory lose zero
completed points — the certification gate the ROADMAP asks for before the
distributed SSH backend.  Each ``ResultCache`` object holds an isolated
in-memory view of the directory, exactly like a separate process does, so
the deterministic interleavings below use two cache objects and the stress
test uses real ``multiprocessing`` workers.
"""

from __future__ import annotations

import glob
import json
import multiprocessing
import os

import pytest

from repro.architectures import TestbedConfig
from repro.harness import (
    ExperimentConfig,
    ResultCache,
    ScenarioPoint,
    code_fingerprint,
    shard_lock,
)
from repro.harness import cache as cache_module
from repro.harness.runner import execute_point


def tiny_config(**overrides):
    params = dict(
        architecture="DTS",
        workload="Dstream",
        pattern="work_sharing",
        num_producers=1,
        num_consumers=1,
        messages_per_producer=3,
        max_sim_time_s=120.0,
        testbed=TestbedConfig(producer_nodes=2, consumer_nodes=2),
    )
    params.update(overrides)
    return ExperimentConfig(**params)


def point_for_seed(seed: int) -> ScenarioPoint:
    return ScenarioPoint(config=tiny_config(seed=seed))


def same_shard_points(count: int = 2) -> list[ScenarioPoint]:
    """Points whose cache keys collide on the same two-hex shard prefix."""
    by_shard: dict[str, list[ScenarioPoint]] = {}
    seed = 1
    while True:
        point = point_for_seed(seed)
        bucket = by_shard.setdefault(point.cache_key()[:2], [])
        bucket.append(point)
        if len(bucket) >= count:
            return bucket[:count]
        seed += 1


def shard_files(path: str) -> list[str]:
    return sorted(glob.glob(os.path.join(path, "??.json")))


def disk_keys(path: str) -> set[str]:
    keys: set[str] = set()
    for shard in shard_files(path):
        keys.update(json.load(open(shard))["entries"])
    return keys


@pytest.fixture(scope="module")
def tiny_result():
    """One real result, shared by every store (its content is irrelevant
    to the lost-update property under test)."""
    return execute_point(point_for_seed(1))


# ---------------------------------------------------------------------------
# The lost-update bug: interleaved flushes to the same shard
# ---------------------------------------------------------------------------

def test_interleaved_flushes_to_same_shard_lose_nothing(tmp_path,
                                                        tiny_result):
    """Writer B opened the cache before writer A flushed; B's flush used
    to rewrite the shard from its own (older) view, dropping A's entry."""
    path = str(tmp_path / "cache")
    first, second = same_shard_points(2)
    assert first.cache_key()[:2] == second.cache_key()[:2]

    writer_a = ResultCache(path)
    writer_b = ResultCache(path)  # opened before A writes anything
    writer_a.store(first, tiny_result)
    writer_a.save()
    writer_b.store(second, tiny_result)
    writer_b.save()  # must merge A's on-disk entry, not clobber it

    assert disk_keys(path) == {first.cache_key(), second.cache_key()}
    # The merge also adopted A's entry into B's in-memory view.
    assert first in writer_b and second in writer_b


def test_interleaved_flushes_across_shards_lose_nothing(tmp_path,
                                                        tiny_result):
    path = str(tmp_path / "cache")
    points = [point_for_seed(seed) for seed in range(1, 7)]
    writers = [ResultCache(path) for _ in range(3)]
    for index, point in enumerate(points):
        writer = writers[index % len(writers)]
        writer.store(point, tiny_result)
        writer.save()
    assert disk_keys(path) == {point.cache_key() for point in points}
    reloaded = ResultCache(path)
    assert all(point in reloaded for point in points)


def test_same_key_conflict_resolves_last_writer_wins(tmp_path, tiny_result):
    path = str(tmp_path / "cache")
    [point] = same_shard_points(1)
    writer_a = ResultCache(path)
    writer_b = ResultCache(path)
    writer_a.store(point, tiny_result)
    writer_a.save()
    writer_b.store(point, tiny_result)
    writer_b.save()
    [shard] = shard_files(path)
    entries = json.load(open(shard))["entries"]
    assert list(entries) == [point.cache_key()]  # one entry, not two


# ---------------------------------------------------------------------------
# Deliberate evictions must not resurrect through the merge
# ---------------------------------------------------------------------------

def _age_fingerprints(path: str) -> None:
    for shard in shard_files(path):
        payload = json.load(open(shard))
        for entry in payload["entries"].values():
            entry["fingerprint"] = "0" * 16
        json.dump(payload, open(shard, "w"))


def test_stale_eviction_survives_merge_on_flush(tmp_path, tiny_result):
    """load() evicts a stale entry; the flush must delete it from disk
    instead of merging the on-disk copy straight back in."""
    path = str(tmp_path / "cache")
    [point] = same_shard_points(1)
    seeded = ResultCache(path)
    seeded.store(point, tiny_result)
    seeded.save()
    _age_fingerprints(path)

    cache = ResultCache(path)
    assert cache.load(point) is None
    assert cache.stale_evicted == 1
    cache.save()
    assert disk_keys(path) == set()


def test_membership_probe_evicts_stale_entry_like_load(tmp_path,
                                                       tiny_result):
    """`point in cache` and cache.load(point) must agree on stale entries:
    both evict, bump stale_evicted and dirty the shard."""
    path = str(tmp_path / "cache")
    [point] = same_shard_points(1)
    seeded = ResultCache(path)
    seeded.store(point, tiny_result)
    seeded.save()
    _age_fingerprints(path)

    cache = ResultCache(path)
    assert point not in cache
    assert cache.stale_evicted == 1
    assert cache.load(point) is None
    assert cache.stale_evicted == 1  # load() found nothing left to evict
    cache.save()
    assert disk_keys(path) == set()  # the probe's eviction reached disk

    # allow_stale still serves (and keeps) the entry on membership probes.
    seeded = ResultCache(path)
    seeded.store(point, tiny_result)
    seeded.save()
    _age_fingerprints(path)
    lenient = ResultCache(path, allow_stale=True)
    assert point in lenient
    assert lenient.stale_evicted == 0


# ---------------------------------------------------------------------------
# Multi-process stress: the distributed-backend certification gate
# ---------------------------------------------------------------------------

def _stress_writer(path: str, seeds: list, result_json: dict,
                   barrier) -> None:
    """One writer process: flush after every store to maximize shard
    contention with the other writers."""
    from repro.harness.results import ExperimentResult

    result = ExperimentResult.from_json_dict(result_json)
    cache = ResultCache(path, autosave_min_s=0.0)
    barrier.wait()
    for seed in seeds:
        cache.store(point_for_seed(seed), result)
        cache.save()


@pytest.mark.parametrize("writers,per_writer", [(4, 8)])
def test_multiprocess_writers_lose_zero_entries(tmp_path, tiny_result,
                                                writers, per_writer):
    """N independent writer processes x one cache directory: every
    completed point survives and every shard stays valid JSON."""
    path = str(tmp_path / "cache")
    context = multiprocessing.get_context("fork")
    barrier = context.Barrier(writers)
    result_json = tiny_result.to_json_dict()
    # Interleaved seed assignment so writers collide on shards.
    assignments = [list(range(writer + 1,
                              writers * per_writer + 1,
                              writers))
                   for writer in range(writers)]
    processes = [
        context.Process(target=_stress_writer,
                        args=(path, seeds, result_json, barrier))
        for seeds in assignments
    ]
    for process in processes:
        process.start()
    for process in processes:
        process.join(timeout=120)
        assert process.exitcode == 0

    all_seeds = [seed for seeds in assignments for seed in seeds]
    expected = {point_for_seed(seed).cache_key() for seed in all_seeds}
    assert disk_keys(path) == expected  # zero lost entries

    for shard in shard_files(path):
        payload = json.load(open(shard))  # valid JSON or this raises
        assert payload["version"] == 1
        for key, entry in payload["entries"].items():
            assert f"{key[:2]}.json" == os.path.basename(shard)
            assert entry["fingerprint"] == code_fingerprint()

    reloaded = ResultCache(path)
    assert len(reloaded) == len(expected)
    assert all(point_for_seed(seed) in reloaded for seed in all_seeds)


# ---------------------------------------------------------------------------
# The lock protocol itself
# ---------------------------------------------------------------------------

def test_shard_lock_fallback_is_exclusive(tmp_path, monkeypatch):
    """Without fcntl the lock degrades to exclusive-create: a second
    acquisition times out while the first is held."""
    monkeypatch.setattr(cache_module, "fcntl", None)
    target = str(tmp_path / "ab.json")
    with shard_lock(target):
        assert os.path.exists(f"{target}.lock")
        with pytest.raises(TimeoutError, match="shard lock"):
            with shard_lock(target, timeout_s=0.2):
                pass  # pragma: no cover - never acquired
    # Released: the fallback removes its lock file and re-acquiring works.
    assert not os.path.exists(f"{target}.lock")
    with shard_lock(target):
        pass


def test_shard_lock_fallback_breaks_stale_locks(tmp_path, monkeypatch):
    monkeypatch.setattr(cache_module, "fcntl", None)
    target = str(tmp_path / "ab.json")
    lock_path = f"{target}.lock"
    with open(lock_path, "w"):
        pass
    ancient = os.stat(lock_path).st_mtime - 3600
    os.utime(lock_path, (ancient, ancient))  # holder died an hour ago
    with shard_lock(target, timeout_s=5.0):
        pass  # acquired by breaking the stale lock, no TimeoutError


def test_flush_works_under_fallback_lock(tmp_path, monkeypatch,
                                         tiny_result):
    monkeypatch.setattr(cache_module, "fcntl", None)
    path = str(tmp_path / "cache")
    first, second = same_shard_points(2)
    writer_a = ResultCache(path)
    writer_b = ResultCache(path)
    writer_a.store(first, tiny_result)
    writer_a.save()
    writer_b.store(second, tiny_result)
    writer_b.save()
    assert disk_keys(path) == {first.cache_key(), second.cache_key()}
