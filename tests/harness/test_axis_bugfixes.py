"""Regression tests for the scenario-grid satellite fixes: options leaks,
empty axes, progress axes, jobs validation, run_seed bounds, thread
fallback."""

from __future__ import annotations

import threading

import pytest

from repro.architectures import TestbedConfig
from repro.cli import build_parser
from repro.harness import (
    ConsumerSweep,
    ExperimentConfig,
    ScenarioPoint,
    ScenarioSet,
    run_scenarios,
)
from repro.harness.runner import _call_with_timeout


def tiny_config(**overrides):
    params = dict(
        architecture="DTS",
        workload="Dstream",
        pattern="work_sharing",
        num_producers=2,
        num_consumers=2,
        messages_per_producer=4,
        max_sim_time_s=120.0,
        testbed=TestbedConfig(producer_nodes=4, consumer_nodes=4),
    )
    params.update(overrides)
    return ExperimentConfig(**params)


# ---------------------------------------------------------------------------
# grid: architecture_options must not leak across the architecture axis
# ---------------------------------------------------------------------------

def test_grid_does_not_leak_base_options_into_other_architectures():
    base = tiny_config(architecture="PRS(HAProxy)",
                       architecture_options={"num_connections": 2})
    scenarios = ScenarioSet.grid(base,
                                 architectures=["PRS(HAProxy)", "DTS", "MSS"])
    by_label = {p.label: p.config.architecture_options for p in scenarios}
    assert by_label["PRS(HAProxy)"] == {"num_connections": 2}
    assert by_label["DTS"] == {}
    assert by_label["MSS"] == {}
    # End to end: pre-fix, the leaked PRS option crashed the DTS factory
    # with an unexpected-keyword TypeError.
    outcomes = run_scenarios(scenarios)
    assert [o.point.label for o in outcomes] == ["PRS(HAProxy)", "DTS", "MSS"]
    assert all(o.ok for o in outcomes)


def test_grid_base_architecture_keeps_its_own_options():
    base = tiny_config(architecture="PRS(HAProxy)",
                       architecture_options={"num_connections": 4})
    [point] = ScenarioSet.grid(base)
    assert point.config.architecture_options == {"num_connections": 4}


def test_deployments_do_not_leak_base_options_either():
    base = ExperimentConfig(architecture="PRS(HAProxy)",
                            architecture_options={"num_connections": 2},
                            testbed=TestbedConfig(producer_nodes=2,
                                                  consumer_nodes=2))
    scenarios = ScenarioSet.deployments(["DTS", "MSS"], base)
    assert all(p.config.architecture_options == {} for p in scenarios)


# ---------------------------------------------------------------------------
# grid: explicitly empty axes fail loudly, None keeps the base value
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("axis", ["architectures", "workloads", "patterns",
                                  "consumer_counts", "seeds"])
def test_grid_rejects_explicitly_empty_axis(axis):
    with pytest.raises(ValueError, match=f"axis '{axis}'"):
        ScenarioSet.grid(tiny_config(), **{axis: []})


def test_grid_none_axis_still_keeps_base_value():
    [point] = ScenarioSet.grid(tiny_config(seed=9), seeds=None)
    assert point.config.seed == 9


# ---------------------------------------------------------------------------
# ConsumerSweep progress: axes dict, no KeyError on consumer-less points
# ---------------------------------------------------------------------------

def test_consumer_sweep_progress_receives_full_axes():
    seen = []
    sweep = ConsumerSweep(tiny_config(), architectures=["DTS"],
                          consumer_counts=[1, 2])
    sweep.run(progress=lambda label, consumers, axes:
              seen.append((label, consumers, axes)))
    assert [(label, consumers) for label, consumers, _ in seen] == [
        ("DTS", 1), ("DTS", 2)]
    for _, consumers, axes in seen:
        assert axes["consumers"] == consumers
        assert set(axes) == {"workload", "pattern", "consumers", "seed"}


def test_progress_tolerates_points_without_consumer_axis():
    # The sweep's own progress shim must not KeyError on foreign points;
    # simulate one by invoking the shim the way run_scenarios would.
    captured = []
    sweep = ConsumerSweep(tiny_config(), architectures=["DTS"],
                          consumer_counts=[1])

    def progress(label, consumers, axes):
        captured.append((label, consumers, axes))

    # Reach the internal shim through run(): patch the scenario set to
    # include a point with no "consumers" axis.
    scenarios = sweep.scenario_set()
    foreign = ScenarioPoint(config=tiny_config(), axes={"link_gbps": 1})
    scenarios.add(foreign)
    sweep.scenario_set = lambda: scenarios  # type: ignore[method-assign]
    sweep.run(progress=progress)
    assert captured[-1] == ("DTS", None, {"link_gbps": 1})


# ---------------------------------------------------------------------------
# run_seed: derivation bounds
# ---------------------------------------------------------------------------

def test_runs_at_or_above_1000_rejected():
    with pytest.raises(ValueError, match="1000"):
        tiny_config(runs=1000)
    config = tiny_config(runs=999)
    assert config.run_seed(998) == 1998
    # Root seeds own disjoint 1000-slot ranges: no collision is possible.
    assert tiny_config(seed=1).run_seed(999) < tiny_config(seed=2).run_seed(0)


# ---------------------------------------------------------------------------
# CLI: --jobs must be >= 1 everywhere
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("argv", [
    ["compare", "--jobs", "0"],
    ["sweep", "--jobs", "0"],
    ["figure", "fig4", "--jobs", "-2"],
    ["deployment", "--jobs", "0"],
    ["sensitivity", "--axis", "seed=1,2", "--jobs", "0"],
])
def test_cli_rejects_non_positive_jobs(argv, capsys):
    with pytest.raises(SystemExit):
        build_parser().parse_args(argv)
    assert "must be >= 1" in capsys.readouterr().err


def test_cli_accepts_positive_jobs():
    args = build_parser().parse_args(["sweep", "--jobs", "2"])
    assert args.jobs == 2


# ---------------------------------------------------------------------------
# _call_with_timeout: no-SIGALRM / worker-thread fallback
# ---------------------------------------------------------------------------

def test_call_with_timeout_runs_unbounded_off_the_main_thread():
    """Off the main thread SIGALRM cannot be armed: the attempt must run
    to completion (unbounded) instead of crashing or timing out."""
    point = ScenarioPoint(config=tiny_config(messages_per_producer=3))
    outcome: dict = {}

    def worker():
        try:
            # A timeout far below the run time: on the main thread this
            # would raise PointTimeout; in a worker thread it must not.
            outcome["result"] = _call_with_timeout(point, 1e-6)
        except BaseException as exc:  # noqa: BLE001 - recorded for assert
            outcome["error"] = exc

    thread = threading.Thread(target=worker)
    thread.start()
    thread.join(timeout=120)
    assert not thread.is_alive()
    assert "error" not in outcome, f"fallback raised: {outcome.get('error')}"
    assert outcome["result"].feasible
