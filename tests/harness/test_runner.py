"""Tests for the unified scenario runner, its backends and serialization."""

from __future__ import annotations

import json
import math
import pickle

import pytest

from repro.architectures import TestbedConfig
from repro.harness import (
    ConsumerSweep,
    ExperimentConfig,
    ExperimentResult,
    ProcessPoolBackend,
    ResultCache,
    ScenarioError,
    ScenarioPoint,
    ScenarioSet,
    SerialBackend,
    resolve_backend,
    run_scenarios,
)
from repro.harness.runner import execute_point


def same_value(a, b):
    if isinstance(a, float) and isinstance(b, float):
        return a == b or (math.isnan(a) and math.isnan(b))
    return a == b


def same_rows(rows_a, rows_b):
    """Row-list equality that treats NaN == NaN (infeasible/absent metrics)."""
    if len(rows_a) != len(rows_b):
        return False
    for row_a, row_b in zip(rows_a, rows_b):
        if row_a.keys() != row_b.keys():
            return False
        if not all(same_value(row_a[key], row_b[key]) for key in row_a):
            return False
    return True


def tiny_testbed():
    return TestbedConfig(producer_nodes=4, consumer_nodes=4)


def tiny_config(**overrides):
    params = dict(
        architecture="DTS",
        workload="Dstream",
        pattern="work_sharing",
        num_producers=2,
        num_consumers=2,
        messages_per_producer=4,
        max_sim_time_s=120.0,
        testbed=tiny_testbed(),
    )
    params.update(overrides)
    return ExperimentConfig(**params)


# ---------------------------------------------------------------------------
# ScenarioSet builders
# ---------------------------------------------------------------------------

def test_grid_orders_architecture_major():
    scenarios = ScenarioSet.grid(tiny_config(), architectures=["DTS", "MSS"],
                                 consumer_counts=[1, 2])
    coords = [(p.label, p.axes["consumers"]) for p in scenarios]
    assert coords == [("DTS", 1), ("DTS", 2), ("MSS", 1), ("MSS", 2)]


def test_grid_spans_workloads_patterns_and_seeds():
    scenarios = ScenarioSet.grid(
        tiny_config(), workloads=["Dstream", "Lstream"],
        patterns=["work_sharing", "work_sharing_feedback"], seeds=[1, 2])
    assert len(scenarios) == 8  # 2 workloads x 2 patterns x 2 seeds
    assert {p.config.workload for p in scenarios} == {"Dstream", "Lstream"}
    assert {p.config.seed for p in scenarios} == {1, 2}


def test_grid_equal_producers_scales_producers_with_consumers():
    scenarios = ScenarioSet.grid(tiny_config(), consumer_counts=[4])
    assert scenarios[0].config.num_producers == 4


def test_deployment_points_derive_distinct_seeds():
    scenarios = ScenarioSet.deployments(["DTS", "PRS(HAProxy)", "MSS"])
    seeds = [p.config.seed for p in scenarios]
    assert len(set(seeds)) == 3
    assert all(p.kind == "deployment" for p in scenarios)


def test_point_rejects_unknown_kind():
    with pytest.raises(ValueError):
        ScenarioPoint(config=tiny_config(), kind="nonsense")


def test_point_cache_key_tracks_config_content():
    a = ScenarioPoint(config=tiny_config())
    b = ScenarioPoint(config=tiny_config())
    c = ScenarioPoint(config=tiny_config(seed=7))
    assert a.cache_key() == b.cache_key()
    assert a.cache_key() != c.cache_key()


# ---------------------------------------------------------------------------
# Backends: determinism and error propagation
# ---------------------------------------------------------------------------

def test_scenario_points_are_picklable():
    point = ScenarioPoint(config=tiny_config(), axes={"consumers": 2})
    clone = pickle.loads(pickle.dumps(point))
    assert clone.config == point.config
    assert clone.axes == point.axes


def test_resolve_backend_prefers_explicit_then_jobs():
    serial = SerialBackend()
    assert resolve_backend(serial, jobs=8) is serial
    assert isinstance(resolve_backend(None, jobs=4), ProcessPoolBackend)
    assert isinstance(resolve_backend(None, jobs=1), SerialBackend)
    assert isinstance(resolve_backend(None, None), SerialBackend)


def test_pool_results_bit_identical_to_serial():
    sweep = ConsumerSweep(tiny_config(), architectures=["DTS", "MSS"],
                          consumer_counts=[1, 2])
    serial = sweep.run()
    pooled = sweep.run(jobs=2)
    assert serial.rows() == pooled.rows()
    assert same_rows(serial.rows("median_rtt_s"), pooled.rows("median_rtt_s"))


def test_pool_preserves_submission_order():
    scenarios = ScenarioSet.grid(tiny_config(), architectures=["DTS", "MSS"],
                                 consumer_counts=[1, 2])
    outcomes = run_scenarios(scenarios, backend=ProcessPoolBackend(2))
    coords = [(o.point.label, o.point.axes["consumers"]) for o in outcomes]
    assert coords == [("DTS", 1), ("DTS", 2), ("MSS", 1), ("MSS", 2)]


def test_infeasible_point_is_a_result_not_an_error():
    config = tiny_config(architecture="PRS(Stunnel)", num_producers=32,
                         num_consumers=32,
                         testbed=TestbedConfig(producer_nodes=16,
                                               consumer_nodes=16))
    [outcome] = run_scenarios([ScenarioPoint(config=config)])
    assert not outcome.result.feasible
    assert "16" in outcome.result.infeasible_reason


def _crashing_point():
    # An unknown architecture option blows up inside the worker (TypeError
    # from the factory), exercising error propagation rather than the
    # infeasibility path.
    config = tiny_config()
    config.architecture_options["no_such_option"] = True
    return ScenarioPoint(config=config)


def test_serial_backend_propagates_point_errors():
    with pytest.raises(ScenarioError, match="DTS"):
        run_scenarios([_crashing_point()])


def test_pool_backend_propagates_point_errors():
    points = [ScenarioPoint(config=tiny_config()), _crashing_point()]
    with pytest.raises(ScenarioError, match="DTS"):
        run_scenarios(points, backend=ProcessPoolBackend(2))


def test_execute_point_deployment_returns_report():
    point = ScenarioSet.deployments(["MSS"])[0]
    report = execute_point(point)
    assert report.architecture == "MSS"
    assert report.data_path_hops > 0


# ---------------------------------------------------------------------------
# Pickle / JSON round-trips
# ---------------------------------------------------------------------------

def test_config_json_round_trip_is_exact():
    config = tiny_config(architecture="PRS(HAProxy)", runs=2, seed=9)
    payload = json.loads(json.dumps(config.to_json_dict()))
    assert ExperimentConfig.from_json_dict(payload) == config


def test_config_pickle_round_trip_is_exact():
    config = tiny_config(seed=5)
    assert pickle.loads(pickle.dumps(config)) == config


def _one_result():
    [outcome] = run_scenarios(
        [ScenarioPoint(config=tiny_config(pattern="work_sharing_feedback",
                                          messages_per_producer=6))])
    return outcome.result


def test_experiment_result_json_round_trip_preserves_metrics():
    result = _one_result()
    payload = json.loads(json.dumps(result.to_json_dict()))
    clone = ExperimentResult.from_json_dict(payload)
    assert clone.throughput_msgs_per_s == result.throughput_msgs_per_s
    assert clone.median_rtt_s == result.median_rtt_s
    assert clone.rtt_samples.tolist() == result.rtt_samples.tolist()
    assert clone.as_row() == result.as_row()


def test_experiment_result_pickle_round_trip_preserves_metrics():
    result = _one_result()
    clone = pickle.loads(pickle.dumps(result))
    assert clone.throughput_msgs_per_s == result.throughput_msgs_per_s
    assert clone.as_row() == result.as_row()


def test_infeasible_result_json_round_trip():
    config = tiny_config(architecture="PRS(Stunnel)", num_producers=32,
                         num_consumers=32,
                         testbed=TestbedConfig(producer_nodes=16,
                                               consumer_nodes=16))
    [outcome] = run_scenarios([ScenarioPoint(config=config)])
    payload = json.loads(json.dumps(outcome.result.to_json_dict()))
    clone = ExperimentResult.from_json_dict(payload)
    assert not clone.feasible
    assert clone.infeasible_reason == outcome.result.infeasible_reason
    assert math.isnan(clone.throughput_msgs_per_s)


# ---------------------------------------------------------------------------
# Result cache
# ---------------------------------------------------------------------------

def test_cache_round_trip_and_reuse(tmp_path):
    path = str(tmp_path / "cache.json")
    point = ScenarioPoint(config=tiny_config())

    cache = ResultCache(path)
    [first] = run_scenarios([point], cache=cache)
    assert not first.cached
    assert point in cache

    reloaded = ResultCache(path)
    [second] = run_scenarios([point], cache=reloaded)
    assert second.cached
    assert same_rows([second.result.as_row()], [first.result.as_row()])


def test_cached_sweep_matches_fresh_sweep(tmp_path):
    path = str(tmp_path / "sweep.json")
    sweep = ConsumerSweep(tiny_config(), architectures=["DTS"],
                          consumer_counts=[1, 2])
    fresh = sweep.run(cache=ResultCache(path))
    cached = sweep.run(cache=ResultCache(path))
    assert fresh.rows() == cached.rows()


def test_cache_rejects_unknown_version(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"version": 99, "entries": {}}))
    with pytest.raises(ValueError, match="version"):
        ResultCache(str(path))
