"""Cache lifecycle subsystem: stats, GC, compaction, named profiles, CLI."""

from __future__ import annotations

import glob
import json
import os

import pytest

from repro.architectures import TestbedConfig
from repro.cli import main
from repro.harness import (
    CacheAdminError,
    ExperimentConfig,
    ResultCache,
    ScenarioPoint,
    Session,
    code_fingerprint,
    collect_stats,
    compact_cache,
    delete_profile,
    gc_cache,
    list_profiles,
    rollback_cache,
    snapshot_cache,
)
from repro.harness.cache_admin import PROFILES_DIR
from repro.harness.runner import execute_point


def tiny_config(**overrides):
    params = dict(
        architecture="DTS",
        workload="Dstream",
        pattern="work_sharing",
        num_producers=1,
        num_consumers=1,
        messages_per_producer=3,
        max_sim_time_s=120.0,
        testbed=TestbedConfig(producer_nodes=2, consumer_nodes=2),
    )
    params.update(overrides)
    return ExperimentConfig(**params)


def point_for_seed(seed: int) -> ScenarioPoint:
    return ScenarioPoint(config=tiny_config(seed=seed))


@pytest.fixture(scope="module")
def tiny_result():
    return execute_point(point_for_seed(1))


def populate(path: str, seeds, result) -> list[ScenarioPoint]:
    cache = ResultCache(path)
    points = [point_for_seed(seed) for seed in seeds]
    for point in points:
        cache.store(point, result)
    cache.save()
    return points


def shard_files(path: str) -> list[str]:
    return sorted(glob.glob(os.path.join(path, "??.json")))


def shard_bytes(path: str) -> dict[str, bytes]:
    return {os.path.basename(shard): open(shard, "rb").read()
            for shard in shard_files(path)}


def age_entries(path: str, *, keep: int = 0) -> int:
    """Rewrite all but ``keep`` entries as if older code produced them;
    returns how many were aged."""
    aged = 0
    spared = 0
    for shard in shard_files(path):
        payload = json.load(open(shard))
        for entry in payload["entries"].values():
            if spared < keep:
                spared += 1
                continue
            entry["fingerprint"] = "f" * 16
            aged += 1
        json.dump(payload, open(shard, "w"))
    return aged


def entry_payloads(path: str) -> dict[str, str]:
    """Every entry's own serialized bytes, keyed by cache key."""
    payloads: dict[str, str] = {}
    for shard in shard_files(path):
        for key, entry in json.load(open(shard))["entries"].items():
            payloads[key] = json.dumps(entry)
    return payloads


# ---------------------------------------------------------------------------
# Statistics
# ---------------------------------------------------------------------------

def test_stats_census_per_fingerprint(tmp_path, tiny_result):
    path = str(tmp_path / "cache")
    populate(path, (1, 2, 3), tiny_result)
    aged = age_entries(path, keep=1)
    assert aged == 2

    stats = collect_stats(path)
    assert stats.entries == 3
    assert stats.stale_entries == 2
    assert stats.stale_fraction == pytest.approx(2 / 3)
    assert stats.shards == len(shard_files(path))
    assert stats.total_bytes == sum(
        os.path.getsize(shard) for shard in shard_files(path))
    by_fp = stats.fingerprints
    assert by_fp[code_fingerprint()].entries == 1
    assert not by_fp[code_fingerprint()].stale
    assert by_fp["f" * 16].entries == 2
    assert by_fp["f" * 16].stale
    # Current fingerprint sorts first in the report rows.
    assert stats.rows()[0]["status"] == "current"


def test_stats_are_read_only_even_on_corruption(tmp_path, tiny_result):
    path = str(tmp_path / "cache")
    populate(path, (1, 2), tiny_result)
    victim = shard_files(path)[0]
    with open(victim, "w") as handle:
        handle.write("{truncated")
    quarantine = os.path.join(path, "zz.json.corrupt")
    with open(quarantine, "w") as handle:
        handle.write("old quarantined garbage")

    before = shard_bytes(path)
    stats = collect_stats(path)
    assert stats.corrupt_shards == 1
    assert stats.entries == 1  # the readable shard still counts
    assert stats.quarantined == 1
    assert stats.quarantined_bytes == os.path.getsize(quarantine)
    # Nothing moved, quarantined or evicted (unlike opening a ResultCache).
    assert shard_bytes(path) == before
    assert os.path.exists(victim) and os.path.exists(quarantine)


def test_stats_missing_directory_is_empty(tmp_path):
    stats = collect_stats(str(tmp_path / "nowhere"))
    assert stats.entries == 0 and stats.stale_fraction == 0.0


def test_admin_refuses_legacy_single_file(tmp_path):
    path = tmp_path / "cache.json"
    path.write_text(json.dumps({"version": 1, "entries": {}}))
    for operation in (collect_stats, gc_cache, compact_cache):
        with pytest.raises(CacheAdminError, match="single-file"):
            operation(str(path))


# ---------------------------------------------------------------------------
# Garbage collection
# ---------------------------------------------------------------------------

def test_gc_removes_every_stale_entry(tmp_path, tiny_result):
    path = str(tmp_path / "cache")
    points = populate(path, range(1, 7), tiny_result)
    aged = age_entries(path, keep=2)

    report = gc_cache(path)
    assert report.evicted == aged
    assert report.scanned_entries == len(points)
    assert report.bytes_reclaimed > 0
    assert report.deleted_shards + report.rewritten_shards > 0

    stats = collect_stats(path)
    assert stats.stale_entries == 0  # 100% of stale entries removed
    assert stats.entries == 2
    # Survivors still load through the normal cache path.
    cache = ResultCache(path)
    assert sum(point in cache for point in points) == 2


def test_gc_dry_run_writes_nothing(tmp_path, tiny_result):
    path = str(tmp_path / "cache")
    populate(path, (1, 2, 3), tiny_result)
    age_entries(path, keep=1)
    before = shard_bytes(path)

    report = gc_cache(path, dry_run=True)
    assert report.dry_run
    assert report.evicted == 2
    assert report.bytes_reclaimed > 0
    assert shard_bytes(path) == before  # untouched


def test_gc_purge_quarantine(tmp_path, tiny_result):
    path = str(tmp_path / "cache")
    populate(path, (1,), tiny_result)
    quarantine = os.path.join(path, "ab.json.corrupt-1")
    with open(quarantine, "w") as handle:
        handle.write("garbage")

    kept = gc_cache(path)
    assert kept.purged_quarantine == 0
    assert os.path.exists(quarantine)

    purged = gc_cache(path, purge_quarantine=True)
    assert purged.purged_quarantine == 1
    assert not os.path.exists(quarantine)


# ---------------------------------------------------------------------------
# Compaction
# ---------------------------------------------------------------------------

def _scramble_shard_order(path: str) -> None:
    """Simulate multi-writer arrival order: rewrite each shard with its
    entries reversed."""
    for shard in shard_files(path):
        payload = json.load(open(shard))
        reversed_entries = dict(reversed(list(payload["entries"].items())))
        json.dump({"version": payload["version"],
                   "entries": reversed_entries}, open(shard, "w"))


def test_compact_is_byte_identical_per_entry(tmp_path, tiny_result):
    path = str(tmp_path / "cache")
    points = populate(path, range(1, 9), tiny_result)
    _scramble_shard_order(path)
    before = entry_payloads(path)

    report = compact_cache(path)
    assert report.entries == len(points)
    after = entry_payloads(path)
    assert after == before  # every surviving entry byte-identical
    for shard in shard_files(path):
        keys = list(json.load(open(shard))["entries"])
        assert keys == sorted(keys)
    # And the compacted cache still serves every point.
    cache = ResultCache(path)
    assert all(point in cache for point in points)


def test_compact_clears_tmp_leftovers(tmp_path, tiny_result):
    path = str(tmp_path / "cache")
    populate(path, (1,), tiny_result)
    leftover = os.path.join(path, "ab.json.tmp")
    with open(leftover, "w") as handle:
        handle.write("crashed mid-flush")
    report = compact_cache(path)
    assert report.removed_tmp == 1
    assert not os.path.exists(leftover)


# ---------------------------------------------------------------------------
# Named profiles: snapshot / rollback
# ---------------------------------------------------------------------------

def test_snapshot_and_rollback_restore_exact_bytes(tmp_path, tiny_result):
    path = str(tmp_path / "cache")
    populate(path, (1, 2, 3), tiny_result)
    frozen = shard_bytes(path)

    info = snapshot_cache(path, "pre-change")
    assert info.entries == 3
    assert info.fingerprint == code_fingerprint()

    # Diverge: age everything, gc it away, add new points.
    age_entries(path)
    gc_cache(path)
    populate(path, (20, 21, 22, 23), tiny_result)
    assert shard_bytes(path) != frozen

    report = rollback_cache(path, "pre-change")
    assert report.restored_shards == len(frozen)
    assert shard_bytes(path) == frozen  # byte-identical restore
    cache = ResultCache(path)
    assert all(point_for_seed(seed) in cache for seed in (1, 2, 3))


def test_rollback_removes_shards_created_after_snapshot(tmp_path,
                                                        tiny_result):
    path = str(tmp_path / "cache")
    populate(path, (1,), tiny_result)
    snapshot_cache(path, "small")
    saved = set(shard_bytes(path))
    populate(path, range(2, 10), tiny_result)
    grown = set(shard_bytes(path))
    assert grown > saved

    report = rollback_cache(path, "small")
    assert set(shard_bytes(path)) == saved
    assert report.removed_shards == len(grown - saved)


def test_snapshot_name_collision_and_force(tmp_path, tiny_result):
    path = str(tmp_path / "cache")
    populate(path, (1,), tiny_result)
    snapshot_cache(path, "pre")
    with pytest.raises(CacheAdminError, match="already exists"):
        snapshot_cache(path, "pre")
    populate(path, (2,), tiny_result)
    info = snapshot_cache(path, "pre", force=True)
    assert info.entries == 2


@pytest.mark.parametrize("name", ["", ".hidden", "a/b", "a b", "../up"])
def test_profile_names_are_validated(tmp_path, tiny_result, name):
    path = str(tmp_path / "cache")
    populate(path, (1,), tiny_result)
    with pytest.raises(CacheAdminError, match="profile name"):
        snapshot_cache(path, name)


def test_rollback_unknown_profile_names_the_known_ones(tmp_path,
                                                       tiny_result):
    path = str(tmp_path / "cache")
    populate(path, (1,), tiny_result)
    snapshot_cache(path, "known")
    with pytest.raises(CacheAdminError, match="known"):
        rollback_cache(path, "missing")


def test_list_and_delete_profiles(tmp_path, tiny_result):
    path = str(tmp_path / "cache")
    populate(path, (1,), tiny_result)
    snapshot_cache(path, "alpha")
    snapshot_cache(path, "beta")
    assert [p.name for p in list_profiles(path)] == ["alpha", "beta"]
    delete_profile(path, "alpha")
    assert [p.name for p in list_profiles(path)] == ["beta"]
    with pytest.raises(CacheAdminError, match="unknown profile"):
        delete_profile(path, "alpha")
    # Profiles live under the dot-directory, invisible to shard loading.
    assert os.path.isdir(os.path.join(path, PROFILES_DIR, "beta"))
    assert len(ResultCache(path)) == 1


def test_profiles_do_not_pollute_stats_or_gc(tmp_path, tiny_result):
    path = str(tmp_path / "cache")
    populate(path, (1, 2), tiny_result)
    snapshot_cache(path, "keep")
    age_entries(path)
    gc_cache(path)
    # The cache emptied, but the profile's copies are untouched.
    assert collect_stats(path).entries == 0
    assert list_profiles(path)[0].entries == 2
    rollback_cache(path, "keep")
    assert collect_stats(path).entries == 2


# ---------------------------------------------------------------------------
# Session integration
# ---------------------------------------------------------------------------

def test_session_cache_stats(tmp_path):
    path = str(tmp_path / "cache")
    with Session(cache=path) as session:
        session.run([point_for_seed(1)])
        stats = session.cache_stats()  # flushes, then censuses
        assert stats.entries == 1
        assert stats.stale_entries == 0
    assert Session().cache_stats() is None


# ---------------------------------------------------------------------------
# CLI front end
# ---------------------------------------------------------------------------

def test_cli_cache_stats_and_gc(tmp_path, capsys, tiny_result):
    path = str(tmp_path / "cache")
    populate(path, (1, 2), tiny_result)
    age_entries(path, keep=1)

    assert main(["cache", "stats", path]) == 0
    out = capsys.readouterr().out
    assert code_fingerprint() in out
    assert "stale" in out

    assert main(["cache", "gc", path]) == 0
    assert "evicted 1" in capsys.readouterr().out
    assert collect_stats(path).stale_entries == 0


def test_cli_cache_snapshot_rollback_profiles(tmp_path, capsys,
                                              tiny_result):
    path = str(tmp_path / "cache")
    populate(path, (1, 2), tiny_result)
    frozen = shard_bytes(path)

    assert main(["cache", "snapshot", "pre", path]) == 0
    populate(path, (3, 4, 5), tiny_result)
    assert main(["cache", "compact", path]) == 0
    assert main(["cache", "rollback", "pre", path]) == 0
    assert shard_bytes(path) == frozen

    assert main(["cache", "profiles", path]) == 0
    assert "pre" in capsys.readouterr().out
    assert main(["cache", "profiles", path, "--delete", "pre"]) == 0
    assert list_profiles(path) == []


def test_cli_cache_path_falls_back_to_env(tmp_path, capsys, monkeypatch,
                                          tiny_result):
    path = str(tmp_path / "cache")
    populate(path, (1,), tiny_result)
    monkeypatch.setenv("REPRO_CACHE", path)
    assert main(["cache", "stats"]) == 0
    assert "1 entries" in capsys.readouterr().out

    monkeypatch.delenv("REPRO_CACHE")
    assert main(["cache", "stats"]) == 2
    assert "no cache path" in capsys.readouterr().err


def test_cli_cache_errors_are_clean_diagnostics(tmp_path, capsys,
                                                tiny_result):
    path = str(tmp_path / "cache")
    populate(path, (1,), tiny_result)
    assert main(["cache", "rollback", "nope", path]) == 2
    assert "unknown profile" in capsys.readouterr().err
