"""Integration-style tests for the three messaging patterns.

Each test runs a small end-to-end experiment through the harness on a tiny
testbed and checks the pattern's semantic invariants (who gets what, reply
routing, fan-out counts, RTT recording).
"""

from __future__ import annotations

import pytest

from repro.architectures import TestbedConfig
from repro.harness import Experiment, ExperimentConfig
from repro.patterns import (
    PATTERNS,
    BroadcastGatherPattern,
    BroadcastPattern,
    WorkSharingFeedbackPattern,
    WorkSharingPattern,
    make_pattern,
)


def tiny_config(**overrides):
    params = dict(
        architecture="DTS",
        workload="Dstream",
        pattern="work_sharing",
        num_producers=2,
        num_consumers=2,
        messages_per_producer=10,
        max_sim_time_s=120.0,
        testbed=TestbedConfig(producer_nodes=2, consumer_nodes=2),
    )
    params.update(overrides)
    return ExperimentConfig(**params)


# ---------------------------------------------------------------------------
# Registry / expected counts
# ---------------------------------------------------------------------------

def test_pattern_registry_and_factory():
    assert set(PATTERNS) == {"work_sharing", "work_sharing_feedback",
                             "broadcast", "broadcast_gather"}
    assert isinstance(make_pattern("work_sharing"), WorkSharingPattern)
    assert isinstance(make_pattern("broadcast_gather"), BroadcastGatherPattern)
    with pytest.raises(ValueError):
        make_pattern("ring")


def test_expected_counts_per_pattern():
    config = tiny_config()
    assert WorkSharingPattern().expected_consumed(config) == 20
    assert WorkSharingPattern().expected_replies(config) == 0
    assert WorkSharingFeedbackPattern().expected_consumed(config) == 20
    assert WorkSharingFeedbackPattern().expected_replies(config) == 20
    bcast_config = tiny_config(pattern="broadcast", num_producers=1)
    assert BroadcastPattern().expected_consumed(bcast_config) == 10 * 2
    assert BroadcastPattern().expected_replies(bcast_config) == 0
    bg_config = tiny_config(pattern="broadcast_gather", num_producers=1)
    assert BroadcastGatherPattern().expected_replies(bg_config) == 10 * 2


# ---------------------------------------------------------------------------
# Work sharing
# ---------------------------------------------------------------------------

def test_work_sharing_distributes_all_messages_once():
    result = Experiment(tiny_config()).run_single(0)
    assert result.completed
    assert result.consumed == 20
    assert result.published == 20
    assert result.replies == 0
    assert result.throughput_msgs_per_s > 0
    coordinator = result.extra["coordinator"]
    # Both consumers got a share of the work (round-robin work queues).
    assert set(coordinator["consumers"]) == {"cons-0", "cons-1"}
    assert sum(coordinator["consumers"].values()) == 20


def test_work_sharing_uses_two_shared_queues_by_default():
    config = tiny_config()
    assert config.work_queue_count == 2
    result = Experiment(config).run_single(0)
    assert result.completed


def test_work_sharing_single_queue_still_works():
    result = Experiment(tiny_config(work_queue_count=1)).run_single(0)
    assert result.completed
    assert result.consumed == 20


# ---------------------------------------------------------------------------
# Work sharing with feedback
# ---------------------------------------------------------------------------

def test_feedback_replies_return_to_originating_producer():
    config = tiny_config(pattern="work_sharing_feedback")
    result = Experiment(config).run_single(0)
    assert result.completed
    assert result.consumed == 20
    assert result.replies == 20
    # Every producer received exactly its own replies.
    replies_per_producer = result.extra["coordinator"]["producers_finished"]
    assert replies_per_producer == ["prod-0", "prod-1"]
    assert result.rtt is not None and result.rtt.count == 20
    assert result.median_rtt_s > 0


def test_feedback_rtt_larger_than_one_way_latency():
    config = tiny_config(pattern="work_sharing_feedback")
    result = Experiment(config).run_single(0)
    assert result.latency is not None
    # RTT must exceed the one-way producer->consumer latency on average.
    assert result.rtt.summary.mean > result.latency.summary.mean * 0.5


def test_feedback_respects_outstanding_window():
    config = tiny_config(pattern="work_sharing_feedback", max_outstanding_requests=1,
                         messages_per_producer=5)
    result = Experiment(config).run_single(0)
    assert result.completed
    assert result.replies == 10


# ---------------------------------------------------------------------------
# Broadcast / broadcast and gather
# ---------------------------------------------------------------------------

def test_broadcast_delivers_every_message_to_every_consumer():
    config = tiny_config(pattern="broadcast", num_producers=1, num_consumers=2,
                         workload="Generic", messages_per_producer=4)
    result = Experiment(config).run_single(0)
    assert result.completed
    assert result.published == 4
    assert result.consumed == 8      # 4 messages x 2 consumers
    counts = result.extra["coordinator"]["consumers"]
    assert counts == {"cons-0": 4, "cons-1": 4}


def test_broadcast_gather_collects_reply_per_consumer_per_message():
    config = tiny_config(pattern="broadcast_gather", num_producers=1,
                         num_consumers=2, workload="Generic",
                         messages_per_producer=3)
    result = Experiment(config).run_single(0)
    assert result.completed
    assert result.consumed == 6
    assert result.replies == 6
    assert result.rtt is not None and result.rtt.count == 6


def test_broadcast_gather_single_producer_enforced():
    with pytest.raises(ValueError):
        tiny_config(pattern="broadcast_gather", num_producers=2)
