"""Tests for the comparative-study API, tables, figures and the CLI."""

from __future__ import annotations

import math

import pytest

from repro.architectures import TestbedConfig
from repro.cli import build_parser, main
from repro.core import (
    architecture_comparison_rows,
    compare_architectures,
    deployment_comparison,
    figure4,
    figure5,
    figure7,
    table1_rows,
    table1_text,
)

TINY_TESTBED = TestbedConfig(producer_nodes=4, consumer_nodes=4)


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------

def test_table1_rows_match_paper_values():
    rows = {row["characteristic"]: row for row in table1_rows()}
    assert rows["Payload size"]["Deleria"] == "16.0 KiB"
    assert rows["Payload size"]["LCLS"] == "1.0 MiB"
    assert rows["Payload size"]["Generic"] == "4.0 MiB"
    assert rows["Payload format"]["LCLS"] == "HDF5"
    assert rows["Data packaging"]["Generic"] == "One item/msg"
    assert rows["Data rate"]["Deleria"] == "32 Gbps"
    assert rows["Data rate"]["LCLS"] == "30 Gbps"
    assert rows["Data rate"]["Generic"] == "25 Gbps"
    assert rows["Production parallelism"]["Deleria"] == "Parallel (non-MPI)"
    assert rows["Production parallelism"]["LCLS"] == "Parallel (MPI-based)"


def test_table1_text_renders():
    text = table1_text()
    assert "Table 1" in text
    assert "Deleria" in text and "LCLS" in text and "Generic" in text


# ---------------------------------------------------------------------------
# Deployment comparison
# ---------------------------------------------------------------------------

def test_deployment_comparison_reports_all_architectures():
    reports = deployment_comparison(["DTS", "PRS(HAProxy)", "MSS"],
                                    testbed_config=TINY_TESTBED)
    assert set(reports) == {"DTS", "PRS(HAProxy)", "MSS"}
    assert reports["DTS"].data_path_hops < reports["MSS"].data_path_hops
    assert reports["MSS"].multi_user_scalability > reports["DTS"].multi_user_scalability


def test_architecture_comparison_rows_have_axes():
    rows = architecture_comparison_rows(["DTS", "MSS"], testbed_config=TINY_TESTBED)
    assert len(rows) == 2
    assert all("firewall_rules" in row for row in rows)


# ---------------------------------------------------------------------------
# compare_architectures
# ---------------------------------------------------------------------------

def test_compare_architectures_overheads_relative_to_dts():
    comparison = compare_architectures(
        workload="Dstream", pattern="work_sharing", consumers=2,
        architectures=["DTS", "MSS"], messages_per_producer=8,
        testbed=TINY_TESTBED)
    assert set(comparison.results) == {"DTS", "MSS"}
    overheads = comparison.throughput_overheads()
    assert len(overheads) == 1
    assert overheads[0].architecture == "MSS"
    assert overheads[0].factor > 1.0
    rows = comparison.rows()
    dts_row = [r for r in rows if r["architecture"] == "DTS"][0]
    assert dts_row["throughput_overhead_vs_dts"] == 1.0


def test_compare_architectures_broadcast_uses_single_producer():
    comparison = compare_architectures(
        workload="Generic", pattern="broadcast_gather", consumers=2,
        architectures=["DTS"], messages_per_producer=3, testbed=TINY_TESTBED)
    assert comparison.config.num_producers == 1
    result = comparison.results["DTS"]
    assert result.feasible
    assert result.median_rtt_s > 0
    assert comparison.rtt_overheads() == []  # only the baseline present


# ---------------------------------------------------------------------------
# Figures (small instances)
# ---------------------------------------------------------------------------

def test_figure4_structure_and_ordering():
    data = figure4(workloads=("Dstream",), architectures=("DTS", "MSS"),
                   consumer_counts=(1, 2), messages_per_producer=6,
                   testbed=TINY_TESTBED)
    assert data.figure == "figure4"
    series_dts = data.series("Dstream", "DTS")
    series_mss = data.series("Dstream", "MSS")
    assert [c for c, _ in series_dts] == [1, 2]
    # DTS outperforms MSS at every measured point (paper Figure 4).
    for (c1, dts_value), (c2, mss_value) in zip(series_dts, series_mss):
        assert c1 == c2
        assert dts_value > mss_value
    assert len(data.rows) == 4


def test_figure5_produces_cdfs():
    data = figure5(workloads=("Dstream",), architectures=("DTS",),
                   consumer_counts=(1,), messages_per_producer=6,
                   testbed=TINY_TESTBED)
    cdfs = data.cdfs["Dstream"][1]
    assert "DTS" in cdfs
    x, p = cdfs["DTS"]
    assert len(x) == len(p) > 0
    assert p[-1] == pytest.approx(1.0)


def test_figure7_has_both_panels():
    data = figure7(architectures=("DTS",), consumer_counts=(1, 2),
                   messages_per_producer=3, testbed=TINY_TESTBED)
    assert "broadcast" in data.sweeps
    assert "broadcast_gather" in data.sweeps
    panels = {row["panel"] for row in data.rows}
    assert panels == {"a-throughput", "b-median-rtt"}


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_cli_parser_subcommands():
    parser = build_parser()
    args = parser.parse_args(["table1"])
    assert args.command == "table1"
    args = parser.parse_args(["figure", "fig4", "--messages", "5"])
    assert args.name == "fig4"


def test_cli_table1(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Payload size" in out


def test_cli_experiment_and_csv(tmp_path, capsys):
    csv_path = tmp_path / "result.csv"
    code = main(["experiment", "--architecture", "DTS", "--consumers", "1",
                 "--messages", "5", "--csv", str(csv_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "Experiment result" in out
    assert csv_path.exists()


def test_cli_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])
