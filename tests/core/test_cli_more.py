"""Additional CLI coverage: compare, figure and deployment subcommands."""

from __future__ import annotations

from repro.cli import main


def test_cli_compare_two_architectures(capsys, tmp_path):
    csv_path = tmp_path / "compare.csv"
    code = main(["compare", "--workload", "Dstream", "--pattern", "work_sharing",
                 "--consumers", "2", "--messages", "6",
                 "--architectures", "DTS", "MSS", "--csv", str(csv_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "DTS" in out and "MSS" in out
    assert "throughput_msgs_per_s" in out
    content = csv_path.read_text()
    assert content.count("\n") >= 3   # header + 2 rows


def test_cli_figure_fig7_small(capsys):
    code = main(["figure", "fig7", "--messages", "3", "--consumers", "1", "2"])
    assert code == 0
    out = capsys.readouterr().out
    assert "broadcast" in out


def test_cli_deployment(capsys):
    code = main(["deployment", "--architectures", "DTS", "MSS"])
    assert code == 0
    out = capsys.readouterr().out
    assert "multi_user_scalability" in out
    assert "DTS" in out and "MSS" in out
