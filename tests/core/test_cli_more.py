"""Additional CLI coverage: compare, figure, deployment and sensitivity
subcommands."""

from __future__ import annotations

import os

import pytest

from repro.cli import main


def test_cli_compare_two_architectures(capsys, tmp_path):
    csv_path = tmp_path / "compare.csv"
    code = main(["compare", "--workload", "Dstream", "--pattern", "work_sharing",
                 "--consumers", "2", "--messages", "6",
                 "--architectures", "DTS", "MSS", "--csv", str(csv_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "DTS" in out and "MSS" in out
    assert "throughput_msgs_per_s" in out
    content = csv_path.read_text()
    assert content.count("\n") >= 3   # header + 2 rows


def test_cli_figure_fig7_small(capsys):
    code = main(["figure", "fig7", "--messages", "3", "--consumers", "1", "2"])
    assert code == 0
    out = capsys.readouterr().out
    assert "broadcast" in out


def test_cli_deployment(capsys):
    code = main(["deployment", "--architectures", "DTS", "MSS"])
    assert code == 0
    out = capsys.readouterr().out
    assert "multi_user_scalability" in out
    assert "DTS" in out and "MSS" in out


SMALL_TESTBED_AXES = ["--axis", "testbed.producer_nodes=4",
                      "--axis", "testbed.consumer_nodes=4"]


def test_cli_sensitivity_bandwidth_axis_with_cache(capsys, tmp_path):
    """The acceptance scenario: a bandwidth axis produces a CSV, cached
    into the sharded layout, and a re-run serves every point from disk."""
    csv_path = tmp_path / "sensitivity.csv"
    cache_path = tmp_path / "cache"
    argv = ["sensitivity",
            "--axis", "testbed.link_bandwidth_bps=1e9,100e9",
            *SMALL_TESTBED_AXES,
            "--architectures", "DTS",
            "--consumers", "2", "--messages", "4", "--jobs", "2",
            "--cache", str(cache_path), "--csv", str(csv_path)]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "testbed.link_bandwidth_bps" in out
    content = csv_path.read_text()
    assert content.count("\n") >= 3  # header + 2 points
    assert os.path.isdir(cache_path)

    # Second run hits only the cache (and yields the same CSV).
    assert main(argv) == 0
    assert csv_path.read_text() == content


def test_cli_sensitivity_sweeps_ack_mode_and_dsn_count(capsys):
    code = main(["sensitivity",
                 "--axis", "testbed.ack_policy.mode=batch,per_message",
                 "--axis", "testbed.dsn_count=1,3",
                 *SMALL_TESTBED_AXES,
                 "--consumers", "2", "--messages", "4"])
    assert code == 0
    out = capsys.readouterr().out
    assert "per_message" in out
    assert "testbed.dsn_count" in out


def test_cli_sensitivity_rejects_unknown_axis(capsys):
    code = main(["sensitivity", "--axis", "testbed.link_bandwidth=1e9"])
    assert code == 2
    assert "unknown axis" in capsys.readouterr().err


def test_cli_sensitivity_rejects_duplicate_axis(capsys):
    code = main(["sensitivity", "--axis", "seed=1", "--axis", "seed=2"])
    assert code == 2
    assert "more than once" in capsys.readouterr().err


def test_cli_sensitivity_rejects_wrongly_typed_axis_value(capsys):
    code = main(["sensitivity", "--axis", "testbed.dsn_count=1,three"])
    assert code == 2
    assert "error:" in capsys.readouterr().err


def test_cli_sensitivity_rejects_scale_backbone_over_backbone_axis(capsys):
    code = main(["sensitivity", "--scale-backbone",
                 "--axis", "testbed.backbone_bandwidth_bps=1e9,4e9"])
    assert code == 2
    assert "--scale-backbone" in capsys.readouterr().err


def test_cli_sensitivity_requires_an_axis(capsys):
    code = main(["sensitivity"])
    assert code == 2
    assert "no axes" in capsys.readouterr().err


def test_cli_figure_bandwidth(capsys):
    code = main(["figure", "bandwidth", "--link-gbps", "1", "100",
                 "--consumers", "2", "--messages", "4"])
    assert code == 0
    out = capsys.readouterr().out
    assert "link_gbps" in out and "speedup_vs_1gbps" in out


# ---------------------------------------------------------------------------
# Execution sessions: the shared option block, --backend, and REPRO_* env
# ---------------------------------------------------------------------------

SMALL_SWEEP = ["sweep", "--workload", "Dstream", "--architectures", "DTS",
               "--consumers", "1", "2", "--messages", "4"]


def test_cli_backend_thread_matches_serial(capsys):
    assert main(SMALL_SWEEP) == 0
    serial_out = capsys.readouterr().out
    assert main([*SMALL_SWEEP, "--backend", "thread", "--jobs", "2"]) == 0
    assert capsys.readouterr().out == serial_out


def test_cli_every_runner_subcommand_shares_the_option_block(capsys):
    """The parent parser wires the same execution flags everywhere."""
    from repro.cli import build_parser
    parser = build_parser()
    for command in ("deployment", "compare", "experiment", "figure",
                    "sweep", "sensitivity"):
        with pytest.raises(SystemExit) as excinfo:
            parser.parse_args([command, "--backend", "warp"])
        assert excinfo.value.code == 2  # invalid choice, from one definition
    capsys.readouterr()  # swallow argparse usage noise


def test_cli_session_from_env(monkeypatch, tmp_path, capsys):
    """REPRO_JOBS/REPRO_CACHE configure the run with no CLI flags at all,
    and a second identical invocation is served from the cache."""
    cache_path = tmp_path / "env-cache"
    monkeypatch.setenv("REPRO_JOBS", "2")
    monkeypatch.setenv("REPRO_CACHE", str(cache_path))
    assert main(SMALL_SWEEP) == 0
    first = capsys.readouterr().out
    assert os.path.isdir(cache_path)
    assert main(SMALL_SWEEP) == 0
    assert capsys.readouterr().out == first


def test_cli_flags_override_env(monkeypatch, tmp_path, capsys):
    monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "env-cache"))
    monkeypatch.setenv("REPRO_JOBS", "2")
    assert main([*SMALL_SWEEP, "--cache", str(tmp_path / "flag-cache"),
                 "--jobs", "1"]) == 0
    capsys.readouterr()
    assert os.path.isdir(tmp_path / "flag-cache")
    assert not os.path.exists(tmp_path / "env-cache")


def test_cli_experiment_goes_through_the_session_cache(tmp_path, capsys):
    argv = ["experiment", "--architecture", "DTS", "--consumers", "2",
            "--messages", "4", "--cache", str(tmp_path / "cache")]
    assert main(argv) == 0
    first = capsys.readouterr().out
    assert os.path.isdir(tmp_path / "cache")
    assert main(argv) == 0  # second run is a pure cache hit
    assert capsys.readouterr().out == first


def test_cli_bad_env_value_is_a_clean_error(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_JOBS", "0")
    assert main(SMALL_SWEEP) == 2
    err = capsys.readouterr().err
    assert err.startswith("error:") and "jobs" in err

    monkeypatch.setenv("REPRO_JOBS", "many")
    assert main(SMALL_SWEEP) == 2
    assert "REPRO_JOBS" in capsys.readouterr().err


def test_cli_explicit_on_error_raise_overrides_env(monkeypatch, capsys):
    """--on-error raise / --retries 0 must beat REPRO_ON_ERROR/REPRO_RETRIES
    even though the values equal the defaults."""
    monkeypatch.setenv("REPRO_ON_ERROR", "record")
    monkeypatch.setenv("REPRO_RETRIES", "3")
    code = main(["experiment", "--architecture", "DTS", "--consumers", "2",
                 "--messages", "4", "--on-error", "raise", "--retries", "0"])
    assert code == 0
    capsys.readouterr()
