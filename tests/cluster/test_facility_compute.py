"""Unit tests for facilities, the WAN and the compute cluster/launcher."""

from __future__ import annotations

import pytest

from repro.simkit import Environment
from repro.netsim import Network
from repro.netsim import units
from repro.cluster import ComputeCluster, Facility, JobLauncher, WideAreaNetwork
from repro.cluster.specs import ANDES_SPEC, DSN_SPEC


def test_facility_add_host_and_membership():
    env = Environment()
    net = Network(env)
    olcf = Facility(env, "olcf", net)
    olcf.add_host("dsn1", DSN_SPEC, role="dsn")
    assert olcf.contains("dsn1")
    assert not olcf.contains("elsewhere")
    assert olcf.hosts == ["dsn1"]


def test_facility_adopt_host_requires_existing_node():
    env = Environment()
    net = Network(env)
    olcf = Facility(env, "olcf", net)
    net.add_node("shared")
    olcf.adopt_host("shared")
    olcf.adopt_host("shared")  # idempotent
    assert olcf.hosts == ["shared"]
    with pytest.raises(KeyError):
        olcf.adopt_host("missing")


def test_facility_border_and_wan_join():
    env = Environment()
    net = Network(env)
    exp = Facility(env, "slac", net)
    hpc = Facility(env, "olcf", net)
    exp.add_host("exp-gw")
    hpc.add_host("olcf-gw")
    exp.set_border("exp-gw")
    hpc.set_border("olcf-gw")
    wan = WideAreaNetwork(env, net, latency_s=0.03)
    wan.join(exp, hpc)
    assert net.has_link("exp-gw", "olcf-gw")
    assert net.has_link("olcf-gw", "exp-gw")
    assert wan.crosses_wan(exp, hpc)
    assert not wan.crosses_wan(exp, exp)
    assert net.link_between("exp-gw", "olcf-gw").latency_s == pytest.approx(0.03)


def test_facility_border_unset_raises():
    env = Environment()
    net = Network(env)
    fac = Facility(env, "x", net)
    with pytest.raises(RuntimeError):
        _ = fac.border
    fac.add_host("h")
    with pytest.raises(ValueError):
        fac.set_border("not-a-member")


def test_facility_firewall_and_burden_accounting():
    env = Environment()
    net = Network(env)
    olcf = Facility(env, "olcf", net)
    olcf.add_host("dsn1")
    olcf.open_ingress("198.51.100.0/24", "dsn1", 30671, description="AMQPS")
    assert olcf.permits_ingress("198.51.100.5", "dsn1", 30671)
    assert not olcf.permits_ingress("203.0.113.1", "dsn1", 30671)
    burden = olcf.administrative_burden()
    assert burden["firewall_rules"] == 1
    with pytest.raises(ValueError):
        olcf.open_ingress("any", "unknown-host", 443)


def test_compute_cluster_creates_named_nodes():
    env = Environment()
    net = Network(env)
    andes = ComputeCluster(env, "andes", net, node_count=5)
    assert len(andes.nodes) == 5
    assert andes.node_names[0] == "andes1"
    assert andes.node(7).name == "andes3"  # wraps around
    assert andes.nodes[0].spec == ANDES_SPEC


def test_compute_cluster_rejects_zero_nodes():
    env = Environment()
    net = Network(env)
    with pytest.raises(ValueError):
        ComputeCluster(env, "andes", net, node_count=0)


def test_partition_matches_paper_layout():
    env = Environment()
    net = Network(env)
    andes = ComputeCluster(env, "andes", net, node_count=33)
    pools = andes.partition(producers=16, consumers=16)
    assert len(pools["producers"]) == 16
    assert len(pools["consumers"]) == 16
    assert len(pools["coordinator"]) == 1
    all_names = {n.name for n in pools["producers"]} | {n.name for n in pools["consumers"]}
    assert pools["coordinator"][0].name not in all_names


def test_partition_small_cluster_without_coordinator():
    env = Environment()
    net = Network(env)
    andes = ComputeCluster(env, "andes", net, node_count=2)
    pools = andes.partition(1, 1, coordinator=False)
    assert "coordinator" not in pools
    assert pools["producers"] and pools["consumers"]


def test_partition_too_small_raises():
    env = Environment()
    net = Network(env)
    andes = ComputeCluster(env, "andes", net, node_count=1)
    with pytest.raises(ValueError):
        andes.partition(1, 1)


def test_job_launcher_mpi_vs_non_mpi_delays():
    env = Environment()
    net = Network(env)
    andes = ComputeCluster(env, "andes", net, node_count=4)
    launcher = JobLauncher(andes)
    pool = andes.nodes[:2]
    mpi = launcher.place("consumer", 4, pool, use_mpi=True)
    non_mpi = launcher.place("consumer", 4, pool, use_mpi=False)
    assert all(p.launch_delay_s == launcher.mpi_launch_overhead_s for p in mpi)
    assert non_mpi[0].launch_delay_s == 0.0
    assert non_mpi[3].launch_delay_s == pytest.approx(3 * launcher.non_mpi_stagger_s)
    # Round-robin over the pool.
    assert [p.node_name for p in mpi] == ["andes1", "andes2", "andes1", "andes2"]
    assert launcher.ranks_per_node(mpi) == {"andes1": 2, "andes2": 2}


def test_job_launcher_argument_validation():
    env = Environment()
    net = Network(env)
    andes = ComputeCluster(env, "andes", net, node_count=2)
    launcher = JobLauncher(andes)
    with pytest.raises(ValueError):
        launcher.place("producer", 0, andes.nodes, use_mpi=True)
    with pytest.raises(ValueError):
        launcher.place("producer", 1, [], use_mpi=True)
