"""Unit tests for OpenShift scheduling/NodePorts/ingress, the LB and S3M."""

from __future__ import annotations

import pytest

from repro.simkit import Environment
from repro.netsim import Endpoint, MessageFactory, Network
from repro.netsim import units
from repro.netsim.tls import DEFAULT_TLS
from repro.cluster import (
    HardwareLoadBalancer,
    IngressController,
    OpenShiftCluster,
    PodSpec,
    ProvisionRequest,
    S3MService,
)
from repro.cluster.specs import DSN_SPEC, INGRESS_SPEC, LOAD_BALANCER_SPEC


def build_olivine(env, n_dsn=3):
    net = Network(env, "olivine")
    workers = [net.add_node(f"dsn{i+1}", DSN_SPEC, role="dsn") for i in range(n_dsn)]
    ingress_host = net.add_node("ingress1", INGRESS_SPEC, role="ingress")
    ingress = IngressController(env, "router", ingress_host, tls=DEFAULT_TLS)
    cluster = OpenShiftCluster(env, "olivine", worker_nodes=workers, ingress=ingress)
    return net, cluster


def rabbit_pod_spec(i):
    return PodSpec(name=f"rabbitmq-{i}", app="rabbitmq", cpus=12,
                   memory_bytes=32 * units.GIB, ports=(5672, 5671),
                   anti_affinity_group="rabbitmq")


# ---------------------------------------------------------------------------
# OpenShift scheduling
# ---------------------------------------------------------------------------

def test_anti_affinity_spreads_rabbitmq_pods():
    env = Environment()
    _, cluster = build_olivine(env)
    pods = [cluster.schedule_pod("abc123", rabbit_pod_spec(i)) for i in range(3)]
    nodes = {pod.node.name for pod in pods}
    assert nodes == {"dsn1", "dsn2", "dsn3"}


def test_anti_affinity_unschedulable_when_nodes_exhausted():
    env = Environment()
    _, cluster = build_olivine(env, n_dsn=2)
    cluster.schedule_pod("abc123", rabbit_pod_spec(0))
    cluster.schedule_pod("abc123", rabbit_pod_spec(1))
    with pytest.raises(RuntimeError, match="unschedulable"):
        cluster.schedule_pod("abc123", rabbit_pod_spec(2))


def test_resource_requests_respected():
    env = Environment()
    _, cluster = build_olivine(env, n_dsn=1)
    # DSN has 64 cores; six 12-cpu pods would need 72.
    for i in range(5):
        cluster.schedule_pod("ns", PodSpec(name=f"p{i}", app="x", cpus=12))
    with pytest.raises(RuntimeError):
        cluster.schedule_pod("ns", PodSpec(name="p5", app="x", cpus=12))


def test_pods_listing_and_describe():
    env = Environment()
    _, cluster = build_olivine(env)
    cluster.schedule_pod("abc123", rabbit_pod_spec(0))
    assert len(cluster.pods("abc123")) == 1
    assert cluster.pods("otherns") == []
    described = cluster.describe()
    assert described["namespaces"]["abc123"] == ["rabbitmq-0"]
    assert described["has_ingress"] is True


def test_cluster_requires_workers():
    env = Environment()
    with pytest.raises(ValueError):
        OpenShiftCluster(env, "empty", worker_nodes=[])


# ---------------------------------------------------------------------------
# NodePort services
# ---------------------------------------------------------------------------

def test_expose_nodeport_maps_ports_in_range():
    env = Environment()
    _, cluster = build_olivine(env)
    pod = cluster.schedule_pod("abc123", rabbit_pod_spec(0))
    svc = cluster.expose_nodeport("rabbitmq", pod, [5672, 5671],
                                  preferred_ports=[30672, 30671])
    assert svc.node_ports == [30671, 30672]
    endpoint = svc.endpoint(5671, scheme="amqps")
    assert endpoint.port == 30671
    assert endpoint.host == pod.node.name
    with pytest.raises(KeyError):
        svc.endpoint(9999)


def test_expose_nodeport_duplicate_service_rejected():
    env = Environment()
    _, cluster = build_olivine(env)
    pod = cluster.schedule_pod("abc123", rabbit_pod_spec(0))
    cluster.expose_nodeport("svc", pod, [5672])
    with pytest.raises(ValueError):
        cluster.expose_nodeport("svc", pod, [5672])


# ---------------------------------------------------------------------------
# Ingress controller and load balancer data path
# ---------------------------------------------------------------------------

def test_ingress_route_and_traverse_records_hop():
    env = Environment()
    net, cluster = build_olivine(env)
    cluster.add_ingress_route("rmq.apps.olivine.ccs.ornl.gov",
                              [Endpoint("dsn1", 5672)])
    backend = cluster.ingress.route_controller.select_backend(
        "rmq.apps.olivine.ccs.ornl.gov")
    assert backend.host == "dsn1"
    message = MessageFactory("p").create(units.kib(16), now=0.0)

    def proc(env):
        yield from cluster.ingress.traverse(message)

    env.process(proc(env))
    env.run()
    assert message.hops[0].element == "ingress1"
    assert cluster.ingress.monitor.counter("messages").value == 1


def test_ingress_route_without_controller_raises():
    env = Environment()
    net = Network(env)
    workers = [net.add_node("dsn1", DSN_SPEC)]
    cluster = OpenShiftCluster(env, "olivine", worker_nodes=workers)
    with pytest.raises(RuntimeError):
        cluster.add_ingress_route("x", [Endpoint("dsn1", 5672)])


def test_load_balancer_round_robin_and_traverse():
    env = Environment()
    net = Network(env)
    host = net.add_node("lb1", LOAD_BALANCER_SPEC, role="lb")
    lb = HardwareLoadBalancer(env, "front", host)
    lb.add_backend(Endpoint("ingress1", 443))
    lb.add_backend(Endpoint("ingress2", 443))
    picks = [lb.next_backend().host for _ in range(4)]
    assert picks == ["ingress1", "ingress2", "ingress1", "ingress2"]
    assert lb.connections_assigned == 4

    message = MessageFactory("p").create(units.mib(1), now=0.0)

    def proc(env):
        yield from lb.traverse(message)

    env.process(proc(env))
    env.run()
    assert lb.monitor.counter("messages").value == 1
    assert message.hops[0].element == "lb1"


def test_load_balancer_without_backends_raises():
    env = Environment()
    net = Network(env)
    host = net.add_node("lb1", LOAD_BALANCER_SPEC)
    lb = HardwareLoadBalancer(env, "front", host)
    with pytest.raises(RuntimeError):
        lb.next_backend()


def test_load_balancer_inflight_limit_serializes():
    env = Environment()
    net = Network(env)
    host = net.add_node("lb1", LOAD_BALANCER_SPEC)
    lb = HardwareLoadBalancer(env, "front", host, max_inflight=1)
    finish = []

    def proc(env):
        message = MessageFactory("p").create(units.mib(4), now=env.now)

        def run():
            yield from lb.traverse(message)
            finish.append(env.now)
        return run()

    env.process(proc(env))
    env.process(proc(env))
    env.run()
    assert finish[1] > finish[0]


# ---------------------------------------------------------------------------
# S3M
# ---------------------------------------------------------------------------

def test_s3m_token_issue_and_validate():
    env = Environment()
    s3m = S3MService(env, allowed_projects={"abc123"})
    token = s3m.issue_token("abc123", lifetime_s=10.0)
    assert s3m.validate(token)
    with pytest.raises(PermissionError):
        s3m.issue_token("unknown-project")


def test_s3m_token_expiry():
    env = Environment()
    s3m = S3MService(env)
    token = s3m.issue_token("abc123", lifetime_s=1.0)

    def proc(env):
        yield env.timeout(2.0)
        return s3m.validate(token)

    assert env.run(until=env.process(proc(env))) is False


def test_s3m_provision_cluster_returns_fqdn_url():
    env = Environment()
    s3m = S3MService(env)
    token = s3m.issue_token("abc123")
    request = ProvisionRequest(nodes=3, cpus=12, ram_gbs=32)

    def proc(env):
        return (yield from s3m.provision_cluster(token, request))

    result = env.run(until=env.process(proc(env)))
    assert result.url.startswith("amqps://rabbitmq.abc123.")
    assert result.nodes == 3
    assert result.details["cpus"] == 12
    # Auth plus 3 nodes of provisioning latency.
    assert env.now == pytest.approx(s3m.auth_latency_s
                                    + 3 * s3m.provision_latency_per_node_s)


def test_s3m_provision_with_expired_token_rejected():
    env = Environment()
    s3m = S3MService(env)
    token = s3m.issue_token("abc123", lifetime_s=0.01)

    def proc(env):
        yield env.timeout(1.0)
        try:
            yield from s3m.provision_cluster(token, ProvisionRequest())
        except PermissionError:
            return "denied"
        return "allowed"

    assert env.run(until=env.process(proc(env))) == "denied"
    assert s3m.monitor.counter("rejected_requests").value == 1
