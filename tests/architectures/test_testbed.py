"""Unit tests for the shared emulated ACE testbed."""

from __future__ import annotations

import pytest

from repro.simkit import Environment
from repro.architectures import Testbed, TestbedConfig
from repro.netsim import units


def small_config(**overrides):
    params = dict(producer_nodes=2, consumer_nodes=2, dsn_count=3)
    params.update(overrides)
    return TestbedConfig(**params)


def test_testbed_builds_paper_topology_defaults():
    env = Environment()
    testbed = Testbed(env)
    assert len(testbed.producer_pool) == 16
    assert len(testbed.consumer_pool) == 16
    assert len(testbed.dsn_nodes) == 3
    assert testbed.broker_cluster.size == 3
    assert testbed.coordinator_node.name not in [n.name for n in testbed.producer_pool]


def test_testbed_links_every_host_to_core():
    env = Environment()
    testbed = Testbed(env, small_config())
    for name in ["dsn1", "dsn2", "dsn3", "gw-prod", "gw-cons", "lb1", "ingress1",
                 "andes1", "andes2"]:
        assert testbed.network.has_link(name, "olcf-core")
        assert testbed.network.has_link("olcf-core", name)
    # Dedicated gateway-to-gateway tunnel segment exists.
    assert testbed.network.has_link("gw-prod", "gw-cons")


def test_testbed_rabbitmq_pods_spread_across_dsns():
    env = Environment()
    testbed = Testbed(env, small_config())
    nodes = {pod.node.name for pod in testbed.rabbitmq_pods}
    assert nodes == {"dsn1", "dsn2", "dsn3"}


def test_testbed_host_helpers_wrap_around():
    env = Environment()
    testbed = Testbed(env, small_config())
    assert testbed.producer_host(0) == testbed.producer_pool[0].name
    assert testbed.producer_host(2) == testbed.producer_pool[0].name
    assert testbed.consumer_host(1) == testbed.consumer_pool[1].name


def test_testbed_declare_work_queue_uses_bounded_policy():
    env = Environment()
    testbed = Testbed(env, small_config(queue_max_length=123))
    queue = testbed.declare_work_queue("workq")
    assert queue.policy.max_length == 123
    assert "workq" in testbed.broker_cluster.queues()


def test_testbed_config_validation():
    with pytest.raises(ValueError):
        TestbedConfig(producer_nodes=0)
    with pytest.raises(ValueError):
        TestbedConfig(dsn_count=0)
    with pytest.raises(ValueError):
        TestbedConfig(link_bandwidth_bps=0)


def test_testbed_custom_bandwidth_applied():
    env = Environment()
    testbed = Testbed(env, small_config(link_bandwidth_bps=units.gbps(100)))
    link = testbed.network.link_between("andes1", "olcf-core")
    assert link.bandwidth_bps == units.gbps(100)


def test_testbed_describe_contains_key_elements():
    env = Environment()
    testbed = Testbed(env, small_config())
    description = testbed.describe()
    assert description["dsns"] == ["dsn1", "dsn2", "dsn3"]
    assert len(description["producer_nodes"]) == 2
    assert description["coordinator"].startswith("andes")
